//! The daemon: listener, submission queue, scheduler slots, per-model
//! circuit breakers, graceful drain, and crash recovery.
//!
//! # Supervision model
//!
//! * Every job runs on one of a fixed pool of *slots* (worker threads).
//!   A panicking run is contained by the slot — the panic is caught, the
//!   job fails with a typed message, and the slot keeps serving.
//! * Each model has a consecutive-failure circuit breaker. A tripped
//!   breaker sheds new submissions for that model with a typed
//!   [`Backpressure::BreakerOpen`] reply (never a silent drop), then
//!   half-opens after a fixed number of sheds and admits one probe.
//! * Admission control is per-tenant ([`TenantQuota`]): active-job count,
//!   evaluation budget, and deadline are all checked before anything is
//!   queued, each with its own typed refusal.
//!
//! # Crash recovery
//!
//! All authority lives in the state directory, never in memory. On
//! startup the daemon scans `jobs/`, re-adopts every job with a spec but
//! no result record, and re-queues it; the engine's checkpoint discipline
//! makes the resumed search replay bit-for-bit. A SIGKILL at any moment
//! therefore loses at most wall-clock time. Graceful drain (SIGTERM or a
//! [`Request::Drain`] frame) is the cheap version: it stops admissions,
//! raises every running run's cancel flag, and waits for each to park at
//! a generation boundary with a final checkpoint before exiting.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fs;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use nautilus::{DurableIo, Nautilus};
use nautilus_ga::fault_label;
use nautilus_obs::{EdgeTally, SearchEvent, SearchObserver, ServiceTally};

use crate::job::{JobDir, JobPhase, JobSpec};
use crate::proto::{Frame, ProtoError, Reply, Request};
use crate::quota::{Backpressure, TenantQuota};
use crate::registry::{Strategy, MODELS};
use crate::runner::{self, EventLog, FaultClass, RunFault};

/// Daemon tuning knobs.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Root of the daemon's durable state (`endpoint`, `jobs/`,
    /// `service.jsonl`).
    pub state_dir: PathBuf,
    /// Scheduler slots: searches that may run concurrently.
    pub slots: usize,
    /// Per-tenant admission limits.
    pub quota: TenantQuota,
    /// Consecutive failures that trip a model's breaker.
    pub breaker_trip: u32,
    /// Shed submissions an open breaker absorbs before half-opening.
    pub breaker_cooldown: u32,
    /// Durable-write handle every piece of daemon state (endpoint file,
    /// job dirs, event logs, checkpoints) writes through. Real
    /// filesystem by default; the disk-fault battery arms it with a
    /// deterministic [`nautilus_ga::IoFaultPlan`].
    pub io: DurableIo,
    /// Concurrent connections served at once; arrivals beyond the cap
    /// are shed with a typed [`Backpressure::TooManyConnections`] reply.
    pub max_connections: usize,
    /// How long a connection may take to deliver its request frame
    /// before being closed (a stalled client must not pin a thread).
    pub conn_read_timeout: Duration,
    /// How long a reply write may block before the connection is closed.
    pub conn_write_timeout: Duration,
    /// In-incarnation retries a job gets after a *recoverable* durable
    /// fault (failed checkpoint or result write) before it is parked for
    /// the next incarnation.
    pub env_requeue_limit: u32,
}

impl DaemonConfig {
    /// Defaults rooted at `state_dir`: 2 slots, default quota, trip after
    /// 3 consecutive failures, half-open after 2 sheds, 64 connections,
    /// 10-second connection deadlines, 2 durable-fault requeues.
    #[must_use]
    pub fn new(state_dir: impl Into<PathBuf>) -> DaemonConfig {
        DaemonConfig {
            state_dir: state_dir.into(),
            slots: 2,
            quota: TenantQuota::default(),
            breaker_trip: 3,
            breaker_cooldown: 2,
            io: DurableIo::real(),
            max_connections: 64,
            conn_read_timeout: Duration::from_secs(10),
            conn_write_timeout: Duration::from_secs(10),
            env_requeue_limit: 2,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BreakerState {
    Closed,
    Open { sheds: u32 },
    HalfOpen,
}

#[derive(Debug)]
struct Breaker {
    consecutive_failures: u32,
    state: BreakerState,
}

impl Default for Breaker {
    fn default() -> Self {
        Breaker { consecutive_failures: 0, state: BreakerState::Closed }
    }
}

struct JobEntry {
    spec: JobSpec,
    phase: JobPhase,
    detail: String,
    cancel: Arc<AtomicBool>,
    user_cancel: bool,
    dir: JobDir,
    /// Recoverable durable faults absorbed by requeueing this job in
    /// this incarnation.
    env_requeues: u32,
}

struct State {
    jobs: BTreeMap<u64, JobEntry>,
    queue: VecDeque<u64>,
    next_id: u64,
    breakers: HashMap<String, Breaker>,
    tally: ServiceTally,
    edge: EdgeTally,
}

struct Shared {
    cfg: DaemonConfig,
    state: Mutex<State>,
    work: Condvar,
    drain: AtomicBool,
    shutdown: AtomicBool,
    /// Connections currently being served (accept-side admission gate).
    conns: AtomicUsize,
    /// Daemon-lifecycle event log, appended across incarnations.
    events: EventLog,
}

impl Shared {
    fn emit(&self, event: &SearchEvent) {
        self.events.on_event(event);
    }
}

/// A running daemon instance (in-process API; the `nautilus-serve` binary
/// is a thin wrapper).
pub struct Daemon {
    shared: Arc<Shared>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Daemon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Daemon").field("addr", &self.addr).finish()
    }
}

impl Daemon {
    /// Creates the state directory if needed, re-adopts orphaned jobs,
    /// binds a localhost listener, publishes the endpoint file, and
    /// starts the scheduler slots.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures preparing state or binding the socket.
    pub fn start(cfg: DaemonConfig) -> std::io::Result<Daemon> {
        let jobs_root = cfg.state_dir.join("jobs");
        fs::create_dir_all(&jobs_root)?;
        let events = EventLog::append(&cfg.state_dir.join("service.jsonl"))?;

        let mut state = State {
            jobs: BTreeMap::new(),
            queue: VecDeque::new(),
            next_id: 1,
            breakers: HashMap::new(),
            tally: ServiceTally::default(),
            edge: EdgeTally::default(),
        };
        let mut adopted: Vec<SearchEvent> = Vec::new();
        recover(&jobs_root, &cfg.io, &mut state, &mut adopted)?;

        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        publish_endpoint(&cfg.state_dir, &addr, &cfg.io)?;

        let slots = cfg.slots.max(1);
        let shared = Arc::new(Shared {
            cfg,
            state: Mutex::new(state),
            work: Condvar::new(),
            drain: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            conns: AtomicUsize::new(0),
            events,
        });
        for event in &adopted {
            shared.emit(event);
        }

        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("serve-accept".into())
                .spawn(move || accept_loop(&listener, &shared))?
        };
        let mut workers = Vec::with_capacity(slots);
        for slot in 0..slots {
            let shared = Arc::clone(&shared);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("serve-slot-{slot}"))
                    .spawn(move || worker_loop(&shared))?,
            );
        }
        Ok(Daemon { shared, addr, acceptor: Some(acceptor), workers })
    }

    /// The bound listener address (also published in the `endpoint` file).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// True once a drain was requested (signal, frame, or API).
    #[must_use]
    pub fn is_draining(&self) -> bool {
        self.shared.drain.load(Ordering::Acquire)
    }

    /// Snapshot of the job-lifecycle tally for this incarnation.
    #[must_use]
    pub fn service_tally(&self) -> ServiceTally {
        self.shared.state.lock().expect("daemon state lock").tally.clone()
    }

    /// Snapshot of the hostile-environment tally (durable-write
    /// failures, shed connections, stalls, dedupe hits) for this
    /// incarnation.
    #[must_use]
    pub fn edge_tally(&self) -> EdgeTally {
        self.shared.state.lock().expect("daemon state lock").edge.clone()
    }

    /// Initiates a graceful drain: admissions stop, running jobs halt at
    /// their next generation boundary (final checkpoint on disk), queued
    /// jobs stay queued for the next incarnation.
    pub fn drain(&self) {
        initiate_drain(&self.shared);
    }

    /// [`Daemon::drain`] then blocks until every slot has parked and the
    /// listener has closed; removes the endpoint file on the way out.
    pub fn drain_and_join(mut self) {
        self.drain();
        self.join_threads();
        let _ = fs::remove_file(self.shared.cfg.state_dir.join("endpoint"));
    }

    fn join_threads(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.work.notify_all();
        // Unblock the acceptor with a no-op connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

fn publish_endpoint(
    state_dir: &std::path::Path,
    addr: &SocketAddr,
    io: &DurableIo,
) -> std::io::Result<()> {
    io.write_atomic(state_dir, "endpoint", addr.to_string().as_bytes(), "daemon.endpoint")
}

/// Scans `jobs/` and rebuilds the in-memory table: terminal jobs from
/// their result records, orphans re-adopted into the queue. Residue of
/// atomic writes interrupted by the previous incarnation's death (stray
/// dot-tmp files) is swept first, so a torn write never survives as a
/// half-file next to the intact state.
fn recover(
    jobs_root: &std::path::Path,
    io: &DurableIo,
    state: &mut State,
    events: &mut Vec<SearchEvent>,
) -> std::io::Result<()> {
    let mut ids: Vec<u64> = fs::read_dir(jobs_root)?
        .flatten()
        .filter_map(|e| e.file_name().to_str().and_then(|n| n.parse::<u64>().ok()))
        .collect();
    ids.sort_unstable();
    for id in ids {
        let dir = JobDir::open(jobs_root.join(format!("{id:08}"))).with_io(io.clone());
        dir.clean_stray_tmps();
        let Ok(spec) = dir.read_spec() else {
            // A corrupt spec is unrunnable and unreportable; leave the
            // directory for post-mortem but keep it out of the table.
            continue;
        };
        state.next_id = state.next_id.max(id + 1);
        let (phase, detail) = match dir.read_result() {
            Ok(Some(Reply::Result { phase, .. })) => (phase, String::new()),
            Ok(Some(_)) | Ok(None) | Err(_) => {
                // No (intact) result: unfinished work. A durable cancel
                // marker means the user already decided its fate.
                if dir.cancel_requested() {
                    let reply = Reply::Result {
                        job: id,
                        phase: JobPhase::Cancelled,
                        outcome_json: String::new(),
                        report_json: String::new(),
                        events_jsonl: String::new(),
                    };
                    let _ = dir.write_result(&reply);
                    events.push(SearchEvent::JobCancelled { job: id });
                    state.tally.cancelled += 1;
                    (JobPhase::Cancelled, "cancelled before completion".to_owned())
                } else {
                    let resumable = Nautilus::has_resumable_checkpoint(dir.checkpoint_dir());
                    events.push(SearchEvent::JobAdopted { job: id, resumable });
                    state.tally.adopted += 1;
                    state.queue.push_back(id);
                    (JobPhase::Queued, String::new())
                }
            }
        };
        state.jobs.insert(
            id,
            JobEntry {
                spec,
                phase,
                detail,
                cancel: Arc::new(AtomicBool::new(false)),
                user_cancel: false,
                dir,
                env_requeues: 0,
            },
        );
    }
    Ok(())
}

fn initiate_drain(shared: &Arc<Shared>) {
    if shared.drain.swap(true, Ordering::AcqRel) {
        return;
    }
    let state = shared.state.lock().expect("daemon state lock");
    for entry in state.jobs.values() {
        if entry.phase == JobPhase::Running {
            entry.cancel.store(true, Ordering::Release);
        }
    }
    drop(state);
    shared.work.notify_all();
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    let mut consecutive_errors: u32 = 0;
    for conn in listener.incoming() {
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let stream = match conn {
            Ok(stream) => {
                consecutive_errors = 0;
                stream
            }
            Err(_) => {
                // accept(2) errors like EMFILE tend to persist; spinning
                // on them burns the core the searches need. Back off
                // exponentially, capped at a second, and say so.
                consecutive_errors = consecutive_errors.saturating_add(1);
                let backoff_ms = (10u64 << consecutive_errors.min(7).saturating_sub(1)).min(1000);
                {
                    let mut state = shared.state.lock().expect("daemon state lock");
                    state.edge.accept_backoffs += 1;
                }
                shared.emit(&SearchEvent::AcceptBackoff {
                    errors: u64::from(consecutive_errors),
                    backoff_ms,
                });
                std::thread::sleep(Duration::from_millis(backoff_ms));
                continue;
            }
        };
        let active = shared.conns.load(Ordering::Acquire);
        if active >= shared.cfg.max_connections {
            shed_connection(stream, shared, active);
            continue;
        }
        shared.conns.fetch_add(1, Ordering::AcqRel);
        let conn_shared = Arc::clone(shared);
        let spawned = std::thread::Builder::new().name("serve-conn".into()).spawn(move || {
            handle_connection(stream, &conn_shared);
            conn_shared.conns.fetch_sub(1, Ordering::AcqRel);
        });
        if spawned.is_err() {
            shared.conns.fetch_sub(1, Ordering::AcqRel);
        }
    }
}

/// Refuses a connection over the cap with a typed reply. The write uses
/// a short fixed timeout (not the configured one): this runs on the
/// accept thread, and a peer that won't read a 50-byte reply must not
/// stall admission for everyone else.
fn shed_connection(mut stream: TcpStream, shared: &Arc<Shared>, active: usize) {
    let limit = shared.cfg.max_connections as u64;
    {
        let mut state = shared.state.lock().expect("daemon state lock");
        state.edge.conns_shed += 1;
    }
    shared.emit(&SearchEvent::ConnShed { active: active as u64, limit });
    let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
    let reply = Reply::Rejected {
        reason: Backpressure::TooManyConnections { active: active as u64, limit },
    };
    let _ = Frame::Reply(reply).write_to(&mut stream);
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(e.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut)
}

fn note_stall(shared: &Arc<Shared>, phase: &str) {
    {
        let mut state = shared.state.lock().expect("daemon state lock");
        state.edge.conn_stalls += 1;
    }
    shared.emit(&SearchEvent::ConnStalled { phase: phase.to_owned() });
}

fn handle_connection(mut stream: TcpStream, shared: &Arc<Shared>) {
    // Deadlines on both directions: a client that connects and goes
    // silent (or stops reading its reply) is closed, not serviced
    // forever.
    let _ = stream.set_read_timeout(Some(shared.cfg.conn_read_timeout));
    let _ = stream.set_write_timeout(Some(shared.cfg.conn_write_timeout));
    let request = match Frame::read_from(&mut stream) {
        Ok(Frame::Request(req)) => req,
        Ok(Frame::Reply(_)) => {
            let reply = Reply::Error { message: "expected a request frame".into() };
            let _ = Frame::Reply(reply).write_to(&mut stream);
            return;
        }
        Err(ProtoError::CleanEof) => return,
        Err(ProtoError::Io(e)) if is_timeout(&e) => {
            note_stall(shared, "read");
            let reply = Reply::Error { message: "connection deadline exceeded".into() };
            let _ = Frame::Reply(reply).write_to(&mut stream);
            return;
        }
        Err(err) => {
            // Framing faults still get a typed reply when the socket is
            // writable; a garbage-spewing client just sees the close.
            let reply = Reply::Error { message: format!("protocol error: {err}") };
            let _ = Frame::Reply(reply).write_to(&mut stream);
            return;
        }
    };
    let reply = serve_request(shared, request);
    if let Err(ProtoError::Io(e)) = Frame::Reply(reply).write_to(&mut stream) {
        if is_timeout(&e) {
            note_stall(shared, "write");
        }
    }
}

fn serve_request(shared: &Arc<Shared>, request: Request) -> Reply {
    match request {
        Request::Ping => {
            let state = shared.state.lock().expect("daemon state lock");
            Reply::Pong { jobs: state.jobs.len() as u64 }
        }
        Request::Submit { spec } => submit(shared, spec),
        Request::Status { job } => {
            let state = shared.state.lock().expect("daemon state lock");
            match state.jobs.get(&job) {
                Some(entry) => {
                    Reply::Status { job, phase: entry.phase, detail: entry.detail.clone() }
                }
                None => Reply::Error { message: format!("unknown job {job}") },
            }
        }
        Request::Result { job } => {
            let state = shared.state.lock().expect("daemon state lock");
            let Some(entry) = state.jobs.get(&job) else {
                return Reply::Error { message: format!("unknown job {job}") };
            };
            match entry.dir.read_result() {
                Ok(Some(reply)) => reply,
                // Not finished yet: answer with a status frame so pollers
                // can tell "pending" apart from a real fault.
                Ok(None) => Reply::Status { job, phase: entry.phase, detail: entry.detail.clone() },
                Err(err) => Reply::Error { message: format!("result record unreadable: {err}") },
            }
        }
        Request::Cancel { job } => cancel(shared, job),
        Request::Drain => {
            initiate_drain(shared);
            let state = shared.state.lock().expect("daemon state lock");
            let pending = state
                .jobs
                .values()
                .filter(|e| matches!(e.phase, JobPhase::Queued | JobPhase::Running))
                .count() as u64;
            Reply::Draining { pending }
        }
    }
}

/// Counts the refusal, emits the lifecycle event, and builds the reply.
fn reject(shared: &Arc<Shared>, tenant: &str, reason: Backpressure) -> Reply {
    {
        let mut state = shared.state.lock().expect("daemon state lock");
        state.tally.rejected += 1;
    }
    shared.emit(&SearchEvent::JobRejected {
        tenant: tenant.to_owned(),
        reason: reason.label().to_owned(),
    });
    Reply::Rejected { reason }
}

/// Bumps the durable-failure counters and returns the deterministic
/// fault label for the telemetry event. Caller still holds the state
/// lock; emit after dropping it.
fn note_durable_failure(state: &mut State, message: &str) -> String {
    let label = fault_label(message).to_owned();
    state.edge.durable_write_failures += 1;
    if label.contains("sync") {
        state.edge.fsync_failures += 1;
    }
    label
}

fn submit(shared: &Arc<Shared>, mut spec: JobSpec) -> Reply {
    // Idempotent resubmission first, even while draining: a client that
    // lost its `Submitted` reply retries with the same dedupe key and
    // must get the original id back — the work was already accepted.
    if !spec.dedupe_key.is_empty() {
        let mut state = shared.state.lock().expect("daemon state lock");
        let original = state
            .jobs
            .iter()
            .find(|(_, e)| e.spec.tenant == spec.tenant && e.spec.dedupe_key == spec.dedupe_key)
            .map(|(&id, _)| id);
        if let Some(id) = original {
            state.edge.dedupe_hits += 1;
            drop(state);
            shared.emit(&SearchEvent::DuplicateSubmit { job: id, tenant: spec.tenant.clone() });
            return Reply::Submitted { job: id };
        }
    }
    if shared.drain.load(Ordering::Acquire) {
        return reject(shared, &spec.tenant, Backpressure::Draining);
    }
    if let Err(reason) = Strategy::parse(&spec.strategy) {
        return reject(shared, &spec.tenant, reason);
    }
    if !MODELS.contains(&spec.model.as_str()) {
        let tenant = spec.tenant.clone();
        return reject(shared, &tenant, Backpressure::UnknownModel { name: spec.model });
    }
    let quota = shared.cfg.quota;
    if spec.max_evals > quota.max_evals {
        return reject(
            shared,
            &spec.tenant,
            Backpressure::EvalBudgetTooLarge { requested: spec.max_evals, limit: quota.max_evals },
        );
    }
    if spec.max_evals == 0 {
        // "Unlimited" admits as the tenant's ceiling; the clamped value is
        // what gets persisted, so recovery replays the same budget.
        spec.max_evals = quota.max_evals;
    }
    if spec.deadline_ms > quota.max_deadline_ms {
        return reject(
            shared,
            &spec.tenant,
            Backpressure::DeadlineTooLong {
                requested_ms: spec.deadline_ms,
                limit_ms: quota.max_deadline_ms,
            },
        );
    }

    let mut state = shared.state.lock().expect("daemon state lock");
    let active = state
        .jobs
        .values()
        .filter(|e| e.spec.tenant == spec.tenant && !e.phase.is_terminal())
        .count();
    if active >= quota.max_active {
        state.tally.rejected += 1;
        drop(state);
        let reason =
            Backpressure::QueueFull { queued: active as u64, limit: quota.max_active as u64 };
        shared.emit(&SearchEvent::JobRejected {
            tenant: spec.tenant.clone(),
            reason: reason.label().to_owned(),
        });
        return Reply::Rejected { reason };
    }
    let shed = {
        let breaker = state.breakers.entry(spec.model.clone()).or_default();
        match breaker.state {
            BreakerState::Closed => false,
            BreakerState::HalfOpen => true,
            BreakerState::Open { sheds } => {
                if sheds + 1 >= shared.cfg.breaker_cooldown {
                    // This submission is the probe: admit it half-open.
                    breaker.state = BreakerState::HalfOpen;
                    false
                } else {
                    breaker.state = BreakerState::Open { sheds: sheds + 1 };
                    true
                }
            }
        }
    };
    if shed {
        state.tally.rejected += 1;
        drop(state);
        let reason = Backpressure::BreakerOpen { model: spec.model.clone() };
        shared.emit(&SearchEvent::JobRejected {
            tenant: spec.tenant.clone(),
            reason: reason.label().to_owned(),
        });
        return Reply::Rejected { reason };
    }

    let id = state.next_id;
    state.next_id += 1;
    let jobs_root = shared.cfg.state_dir.join("jobs");
    let dir = match JobDir::create(&jobs_root, id) {
        Ok(dir) => dir.with_io(shared.cfg.io.clone()),
        Err(e) => return Reply::Error { message: format!("cannot create job dir: {e}") },
    };
    if let Err(e) = dir.write_spec(&spec) {
        // An unrecorded job must not exist: remove the directory so the
        // next incarnation never adopts a spec-less orphan.
        let _ = fs::remove_dir_all(dir.path());
        let label = note_durable_failure(&mut state, &e.to_string());
        drop(state);
        shared.emit(&SearchEvent::DurableWriteFailed { site: "job.spec".into(), detail: label });
        return Reply::Error { message: format!("cannot persist job spec: {e}") };
    }
    let tenant = spec.tenant.clone();
    state.jobs.insert(
        id,
        JobEntry {
            spec,
            phase: JobPhase::Queued,
            detail: String::new(),
            cancel: Arc::new(AtomicBool::new(false)),
            user_cancel: false,
            dir,
            env_requeues: 0,
        },
    );
    state.queue.push_back(id);
    state.tally.queued += 1;
    drop(state);
    shared.emit(&SearchEvent::JobQueued { job: id, tenant });
    shared.work.notify_all();
    Reply::Submitted { job: id }
}

fn cancel(shared: &Arc<Shared>, job: u64) -> Reply {
    let mut state = shared.state.lock().expect("daemon state lock");
    let Some(entry) = state.jobs.get_mut(&job) else {
        return Reply::Error { message: format!("unknown job {job}") };
    };
    if entry.phase.is_terminal() {
        return Reply::Cancelled { job };
    }
    let marker = entry.dir.mark_cancel_requested();
    if let Err(e) = marker {
        // Without a durable marker a crash would resurrect the job; a
        // cancel the daemon cannot prove later is a cancel it must not
        // half-apply in memory.
        let label = note_durable_failure(&mut state, &e.to_string());
        drop(state);
        shared.emit(&SearchEvent::DurableWriteFailed { site: "job.cancel".into(), detail: label });
        return Reply::Error { message: format!("cannot persist cancel marker: {e}") };
    }
    let entry = state.jobs.get_mut(&job).expect("entry present above");
    entry.user_cancel = true;
    entry.cancel.store(true, Ordering::Release);
    if entry.phase == JobPhase::Queued {
        let reply = Reply::Result {
            job,
            phase: JobPhase::Cancelled,
            outcome_json: String::new(),
            report_json: String::new(),
            events_jsonl: String::new(),
        };
        let _ = entry.dir.write_result(&reply);
        entry.phase = JobPhase::Cancelled;
        entry.detail = "cancelled while queued".into();
        state.queue.retain(|&id| id != job);
        state.tally.cancelled += 1;
        drop(state);
        shared.emit(&SearchEvent::JobCancelled { job });
    }
    Reply::Cancelled { job }
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let claimed = {
            let mut state = shared.state.lock().expect("daemon state lock");
            loop {
                if shared.shutdown.load(Ordering::Acquire) || shared.drain.load(Ordering::Acquire) {
                    return;
                }
                if let Some(id) = state.queue.pop_front() {
                    let Some(entry) = state.jobs.get_mut(&id) else { continue };
                    if entry.phase != JobPhase::Queued {
                        continue;
                    }
                    entry.phase = JobPhase::Running;
                    let claim =
                        (id, entry.spec.clone(), entry.dir.clone(), Arc::clone(&entry.cancel));
                    state.tally.started += 1;
                    break Some(claim);
                }
                state = shared.work.wait(state).expect("daemon state lock");
            }
        };
        let Some((id, spec, dir, cancel)) = claimed else { return };
        shared.emit(&SearchEvent::JobStarted { job: id });
        let result = catch_unwind(AssertUnwindSafe(|| runner::execute(&spec, &dir, &cancel)));
        finish_job(shared, id, &spec, &dir, result);
    }
}

type RunResult = std::thread::Result<Result<runner::RunArtifacts, RunFault>>;

fn finish_job(shared: &Arc<Shared>, id: u64, spec: &JobSpec, dir: &JobDir, result: RunResult) {
    let verdict = match result {
        Ok(Ok(artifacts)) => {
            if artifacts.stop == nautilus::StopReason::Cancelled {
                let user = dir.cancel_requested();
                if user {
                    Verdict::Cancelled
                } else {
                    // Drain stop: the final checkpoint is on disk; park the
                    // job for the next incarnation to re-adopt.
                    Verdict::Parked
                }
            } else {
                Verdict::Done(artifacts)
            }
        }
        Ok(Err(fault)) => match fault.class {
            FaultClass::Model => Verdict::Failed(fault.message),
            FaultClass::Durable => Verdict::EnvFault(fault),
        },
        Err(panic) => {
            let message = panic
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic payload".to_owned());
            Verdict::Failed(format!("panicked: {message}"))
        }
    };

    let mut state = shared.state.lock().expect("daemon state lock");
    let mut events: Vec<SearchEvent> = Vec::new();
    let mut requeued = false;
    match verdict {
        Verdict::Done(artifacts) => {
            let reply = Reply::Result {
                job: id,
                phase: JobPhase::Done,
                outcome_json: artifacts.outcome_json,
                report_json: artifacts.report_json,
                events_jsonl: artifacts.events_jsonl,
            };
            let mut write_err = None;
            if let Some(entry) = state.jobs.get_mut(&id) {
                match entry.dir.write_result(&reply) {
                    Ok(()) => {
                        entry.phase = JobPhase::Done;
                        entry.detail = format!("stop: {}", artifacts.stop.as_str());
                    }
                    Err(e) => write_err = Some(e),
                }
            }
            match write_err {
                None => {
                    state.tally.finished += 1;
                    events.push(SearchEvent::JobFinished { job: id, outcome: "done".into() });
                    breaker_success(&mut state, &spec.model);
                }
                Some(e) => {
                    // The run finished but its artifacts are not durable.
                    // Requeue (the resume replays from the terminal
                    // checkpoint and rewrites the result) or, when out of
                    // retries, park adoptable rather than lie.
                    let label = note_durable_failure(&mut state, &e.to_string());
                    events.push(SearchEvent::DurableWriteFailed {
                        site: "job.result".into(),
                        detail: label,
                    });
                    requeued = requeue_or_park(
                        &mut state,
                        &mut events,
                        shared.cfg.env_requeue_limit,
                        id,
                        &format!("result persist failed: {e}"),
                    );
                }
            }
        }
        Verdict::EnvFault(fault) => {
            let label = note_durable_failure(&mut state, &fault.message);
            events
                .push(SearchEvent::DurableWriteFailed { site: fault.site.clone(), detail: label });
            if fault.recoverable {
                requeued = requeue_or_park(
                    &mut state,
                    &mut events,
                    shared.cfg.env_requeue_limit,
                    id,
                    &fault.to_string(),
                );
            } else {
                // Terminal typed failure that does NOT trip the model's
                // breaker: the environment broke, not the search.
                let reply = Reply::Result {
                    job: id,
                    phase: JobPhase::Failed,
                    outcome_json: format!("{{\"error\":{:?}}}", fault.to_string()),
                    report_json: String::new(),
                    events_jsonl: String::new(),
                };
                let mut second = None;
                if let Some(entry) = state.jobs.get_mut(&id) {
                    if let Err(e) = entry.dir.write_result(&reply) {
                        second = Some(e);
                    }
                    entry.phase = JobPhase::Failed;
                    entry.detail = fault.to_string();
                }
                if let Some(e) = second {
                    let label = note_durable_failure(&mut state, &e.to_string());
                    events.push(SearchEvent::DurableWriteFailed {
                        site: "job.result".into(),
                        detail: label,
                    });
                }
                state.tally.finished += 1;
                events.push(SearchEvent::JobFinished { job: id, outcome: "failed".into() });
            }
        }
        Verdict::Failed(message) => {
            let reply = Reply::Result {
                job: id,
                phase: JobPhase::Failed,
                outcome_json: format!("{{\"error\":{:?}}}", message),
                report_json: String::new(),
                events_jsonl: String::new(),
            };
            let mut present = false;
            if let Some(entry) = state.jobs.get_mut(&id) {
                let _ = entry.dir.write_result(&reply);
                entry.phase = JobPhase::Failed;
                entry.detail = message;
                present = true;
            }
            if present {
                state.tally.finished += 1;
                events.push(SearchEvent::JobFinished { job: id, outcome: "failed".into() });
                breaker_failure(&mut state, &spec.model, shared.cfg.breaker_trip);
            }
        }
        Verdict::Cancelled => {
            let reply = Reply::Result {
                job: id,
                phase: JobPhase::Cancelled,
                outcome_json: String::new(),
                report_json: String::new(),
                events_jsonl: String::new(),
            };
            let mut present = false;
            if let Some(entry) = state.jobs.get_mut(&id) {
                let _ = entry.dir.write_result(&reply);
                entry.phase = JobPhase::Cancelled;
                entry.detail = "cancelled while running".into();
                present = true;
            }
            if present {
                state.tally.cancelled += 1;
                events.push(SearchEvent::JobCancelled { job: id });
            }
        }
        Verdict::Parked => {
            if let Some(entry) = state.jobs.get_mut(&id) {
                entry.phase = JobPhase::Queued;
                entry.detail = "parked by drain".into();
            }
        }
    }
    drop(state);
    for event in &events {
        shared.emit(event);
    }
    if requeued {
        shared.work.notify_all();
    }
}

/// After a recoverable durable fault: requeue the job for another
/// in-incarnation attempt while it has retries left, otherwise park it
/// `Queued`-but-not-enqueued so the *next* incarnation re-adopts it.
/// Returns true when the job went back on the live queue.
fn requeue_or_park(
    state: &mut State,
    events: &mut Vec<SearchEvent>,
    limit: u32,
    id: u64,
    detail: &str,
) -> bool {
    let retry = state.jobs.get(&id).is_some_and(|e| e.env_requeues < limit);
    let mut resumable = false;
    {
        let Some(entry) = state.jobs.get_mut(&id) else { return false };
        entry.phase = JobPhase::Queued;
        if retry {
            entry.env_requeues += 1;
            entry.detail = format!("requeued after durable fault: {detail}");
            resumable = Nautilus::has_resumable_checkpoint(entry.dir.checkpoint_dir());
        } else {
            entry.detail = format!("parked after durable fault: {detail}");
        }
    }
    if retry {
        state.queue.push_back(id);
        // Accounting-wise a requeue is a re-adoption: `started` will be
        // bumped again on the next claim, and `queued + adopted` must
        // keep pace for the tally to reconcile.
        state.tally.adopted += 1;
        events.push(SearchEvent::JobAdopted { job: id, resumable });
    }
    retry
}

enum Verdict {
    Done(runner::RunArtifacts),
    Failed(String),
    EnvFault(RunFault),
    Cancelled,
    Parked,
}

fn breaker_success(state: &mut State, model: &str) {
    let breaker = state.breakers.entry(model.to_owned()).or_default();
    breaker.consecutive_failures = 0;
    breaker.state = BreakerState::Closed;
}

fn breaker_failure(state: &mut State, model: &str, trip: u32) {
    let breaker = state.breakers.entry(model.to_owned()).or_default();
    breaker.consecutive_failures += 1;
    if breaker.state == BreakerState::HalfOpen || breaker.consecutive_failures >= trip {
        breaker.state = BreakerState::Open { sheds: 0 };
    }
}
