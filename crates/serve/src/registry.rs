//! The daemon's model registry: every model a [`crate::job::JobSpec`] may
//! name, each with its canonical query and non-expert hint set.
//!
//! A spec names *what* to search; this module decides what that means, so
//! two tenants (or two daemon incarnations) resolving the same spec always
//! build the identical search. That invariant is what makes crash recovery
//! provable: the re-adopting daemon reconstructs the engine purely from
//! the persisted spec.

use std::thread;
use std::time::Duration;

use nautilus::{Confidence, HintSet, Query};
use nautilus_ga::{GeneRows, Genome, ParamSpace, ParamValue};
use nautilus_noc::hints::fmax_hints;
use nautilus_noc::router::RouterModel;
use nautilus_synth::{CostModel, MetricCatalog, MetricExpr, MetricSet};

use crate::quota::Backpressure;

/// A resolved job: the model to search, the query over its catalog, and
/// the hint set its guided strategies use.
pub struct ResolvedModel {
    /// The cost model (possibly wrapped in an artificial-latency shim).
    pub model: Box<dyn CostModel>,
    /// The model's canonical query.
    pub query: Query,
    /// Non-expert hints for the canonical query's metric.
    pub hints: HintSet,
}

impl std::fmt::Debug for ResolvedModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResolvedModel").field("model", &self.model.name()).finish()
    }
}

/// Guidance configuration a strategy string resolves to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// The oblivious baseline GA.
    Baseline,
    /// Hint-guided search at [`Confidence::WEAK`].
    GuidedWeak,
    /// Hint-guided search at [`Confidence::STRONG`].
    GuidedStrong,
}

impl Strategy {
    /// Parses a spec's strategy string.
    ///
    /// # Errors
    ///
    /// [`Backpressure::UnknownStrategy`] for anything unrecognized.
    pub fn parse(name: &str) -> Result<Strategy, Backpressure> {
        match name {
            "baseline" => Ok(Strategy::Baseline),
            "guided-weak" => Ok(Strategy::GuidedWeak),
            "guided-strong" => Ok(Strategy::GuidedStrong),
            other => Err(Backpressure::UnknownStrategy { name: other.to_owned() }),
        }
    }

    /// The confidence this strategy passes to guided runs; `None` means
    /// baseline (no guidance at all).
    #[must_use]
    pub fn confidence(self) -> Option<Confidence> {
        match self {
            Strategy::Baseline => None,
            Strategy::GuidedWeak => Some(Confidence::WEAK),
            Strategy::GuidedStrong => Some(Confidence::STRONG),
        }
    }
}

/// Model names the registry resolves, in stable order.
pub const MODELS: &[&str] = &["bowl", "ridge", "router", "barren", "poison"];

/// Resolves `name` into a model + query + hints, applying an artificial
/// per-evaluation latency of `eval_delay_us` microseconds when nonzero.
///
/// # Errors
///
/// [`Backpressure::UnknownModel`] for anything not in [`MODELS`].
pub fn resolve(name: &str, eval_delay_us: u64) -> Result<ResolvedModel, Backpressure> {
    let resolved = match name {
        "bowl" => bowl(),
        "ridge" => ridge(),
        "router" => router(),
        "barren" => barren(),
        "poison" => poison(),
        other => return Err(Backpressure::UnknownModel { name: other.to_owned() }),
    };
    if eval_delay_us == 0 {
        return Ok(resolved);
    }
    Ok(ResolvedModel {
        model: Box::new(SlowModel {
            inner: resolved.model,
            delay: Duration::from_micros(eval_delay_us),
        }),
        query: resolved.query,
        hints: resolved.hints,
    })
}

fn minimize_cost(catalog: &MetricCatalog) -> Query {
    Query::minimize(
        "cost",
        MetricExpr::metric(catalog.require("cost").expect("registry models define `cost`")),
    )
}

/// Quadratic bowl over a 3-D integer space: smooth, unimodal, fast — the
/// workhorse for daemon tests and latency probes.
fn bowl() -> ResolvedModel {
    #[derive(Debug)]
    struct Bowl {
        space: ParamSpace,
        catalog: MetricCatalog,
    }
    impl CostModel for Bowl {
        fn name(&self) -> &str {
            "bowl"
        }
        fn space(&self) -> &ParamSpace {
            &self.space
        }
        fn catalog(&self) -> &MetricCatalog {
            &self.catalog
        }
        fn evaluate(&self, g: &Genome) -> Option<MetricSet> {
            let x = f64::from(g.gene_at(0));
            let y = f64::from(g.gene_at(1));
            let z = f64::from(g.gene_at(2));
            let cost = (x - 5.0).powi(2) + (y - 9.0).powi(2) + (z - 2.0).powi(2) + 1.0;
            Some(self.catalog.set(vec![cost]).expect("one metric"))
        }
    }
    let model = Bowl {
        space: ParamSpace::builder()
            .int("x", 0, 31, 1)
            .int("y", 0, 31, 1)
            .int("z", 0, 31, 1)
            .build()
            .expect("static space"),
        catalog: MetricCatalog::new([("cost", "units")]).expect("static catalog"),
    };
    let query = minimize_cost(&model.catalog);
    let hints = HintSet::for_metric("cost")
        .importance("x", 70)
        .expect("static hint")
        .bias("x", -0.5)
        .expect("static hint")
        .importance("y", 60)
        .expect("static hint")
        .bias("y", -0.3)
        .expect("static hint")
        .build();
    ResolvedModel { model: Box::new(model), query, hints }
}

/// Ridge with a categorical mode switch — exercises symbolic parameters
/// and target hints.
fn ridge() -> ResolvedModel {
    #[derive(Debug)]
    struct Ridge {
        space: ParamSpace,
        catalog: MetricCatalog,
    }
    impl CostModel for Ridge {
        fn name(&self) -> &str {
            "ridge"
        }
        fn space(&self) -> &ParamSpace {
            &self.space
        }
        fn catalog(&self) -> &MetricCatalog {
            &self.catalog
        }
        fn evaluate(&self, g: &Genome) -> Option<MetricSet> {
            let x = f64::from(g.gene_at(0));
            let y = f64::from(g.gene_at(1));
            let mode = if g.gene_at(2) == 0 { 25.0 } else { 0.0 };
            let cost = (x - 3.0).powi(2) + y * 2.0 + mode + 1.0;
            Some(self.catalog.set(vec![cost]).expect("one metric"))
        }
    }
    let model = Ridge {
        space: ParamSpace::builder()
            .int("x", 0, 15, 1)
            .int("y", 0, 15, 1)
            .choices("mode", ["slow", "fast"])
            .build()
            .expect("static space"),
        catalog: MetricCatalog::new([("cost", "units")]).expect("static catalog"),
    };
    let query = minimize_cost(&model.catalog);
    let hints = HintSet::for_metric("cost")
        .importance("x", 90)
        .expect("static hint")
        .bias("x", 0.3)
        .expect("static hint")
        .target("mode", ParamValue::Sym("fast".into()))
        .expect("static hint")
        .importance("mode", 80)
        .expect("static hint")
        .build();
    ResolvedModel { model: Box::new(model), query, hints }
}

/// The paper's VC router over its swept 9-parameter sub-space, searched
/// for maximum Fmax with the NoC crate's non-expert hints.
fn router() -> ResolvedModel {
    let model = RouterModel::swept();
    let query = Query::maximize(
        "fmax",
        MetricExpr::metric(model.catalog().require("fmax").expect("router defines fmax")),
    );
    ResolvedModel { model: Box::new(model), query, hints: fmax_hints() }
}

/// Every point infeasible: jobs against it fail cleanly with
/// `NoFeasibleGenome`, exercising the failure path and the breaker.
fn barren() -> ResolvedModel {
    #[derive(Debug)]
    struct Barren {
        space: ParamSpace,
        catalog: MetricCatalog,
    }
    impl CostModel for Barren {
        fn name(&self) -> &str {
            "barren"
        }
        fn space(&self) -> &ParamSpace {
            &self.space
        }
        fn catalog(&self) -> &MetricCatalog {
            &self.catalog
        }
        fn evaluate(&self, _g: &Genome) -> Option<MetricSet> {
            None
        }
    }
    let model = Barren {
        space: ParamSpace::builder().int("x", 0, 7, 1).build().expect("static space"),
        catalog: MetricCatalog::new([("cost", "units")]).expect("static catalog"),
    };
    let query = minimize_cost(&model.catalog);
    let hints = HintSet::for_metric("cost").build();
    ResolvedModel { model: Box::new(model), query, hints }
}

/// Panics on every evaluation — the scheduler's panic-containment tests
/// submit it (with one eval worker, so the panic unwinds through the
/// runner) and assert the slot survives.
fn poison() -> ResolvedModel {
    #[derive(Debug)]
    struct Poison {
        space: ParamSpace,
        catalog: MetricCatalog,
    }
    impl CostModel for Poison {
        fn name(&self) -> &str {
            "poison"
        }
        fn space(&self) -> &ParamSpace {
            &self.space
        }
        fn catalog(&self) -> &MetricCatalog {
            &self.catalog
        }
        fn evaluate(&self, _g: &Genome) -> Option<MetricSet> {
            panic!("poison model evaluated")
        }
    }
    let model = Poison {
        space: ParamSpace::builder().int("x", 0, 7, 1).build().expect("static space"),
        catalog: MetricCatalog::new([("cost", "units")]).expect("static catalog"),
    };
    let query = minimize_cost(&model.catalog);
    let hints = HintSet::for_metric("cost").build();
    ResolvedModel { model: Box::new(model), query, hints }
}

/// Wraps a model with a fixed per-evaluation sleep: a stand-in for slow
/// EDA tools, so interruption and chaos tests reliably land mid-run.
/// Results (including simulated tool time) are bit-identical to the
/// wrapped model's — only wall-clock changes.
struct SlowModel {
    inner: Box<dyn CostModel>,
    delay: Duration,
}

impl CostModel for SlowModel {
    fn name(&self) -> &str {
        self.inner.name()
    }
    fn space(&self) -> &ParamSpace {
        self.inner.space()
    }
    fn catalog(&self) -> &MetricCatalog {
        self.inner.catalog()
    }
    fn evaluate(&self, genome: &Genome) -> Option<MetricSet> {
        thread::sleep(self.delay);
        self.inner.evaluate(genome)
    }
    fn evaluate_rows(&self, rows: GeneRows<'_>, out: &mut Vec<Option<MetricSet>>) {
        thread::sleep(self.delay.saturating_mul(rows.len() as u32));
        self.inner.evaluate_rows(rows, out);
    }
    fn synth_time(&self, genome: &Genome) -> Duration {
        self.inner.synth_time(genome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_model_resolves() {
        for name in MODELS {
            let resolved = resolve(name, 0).expect("listed models resolve");
            // Registry keys are service-facing; the underlying cost model
            // may carry its own name (e.g. `router` -> "vc-router").
            assert!(!resolved.model.name().is_empty());
        }
        assert!(matches!(resolve("warp-core", 0), Err(Backpressure::UnknownModel { .. })));
    }

    #[test]
    fn strategies_parse_and_unknowns_are_typed() {
        assert_eq!(Strategy::parse("baseline").unwrap(), Strategy::Baseline);
        assert_eq!(Strategy::parse("guided-weak").unwrap(), Strategy::GuidedWeak);
        assert_eq!(Strategy::parse("guided-strong").unwrap(), Strategy::GuidedStrong);
        assert!(Strategy::Baseline.confidence().is_none());
        assert!(Strategy::GuidedStrong.confidence().is_some());
        assert!(matches!(Strategy::parse("psychic"), Err(Backpressure::UnknownStrategy { .. })));
    }

    #[test]
    fn slow_wrapper_changes_wall_clock_not_results() {
        let plain = resolve("bowl", 0).unwrap();
        let slow = resolve("bowl", 100).unwrap();
        let g = Genome::from_genes(vec![5, 9, 2]);
        assert_eq!(
            plain.model.evaluate(&g).unwrap().values(),
            slow.model.evaluate(&g).unwrap().values()
        );
        assert_eq!(plain.model.synth_time(&g), slow.model.synth_time(&g));
    }
}
