//! The `NAUTSRVC` wire protocol: length-prefixed, CRC-trailed frames over
//! a localhost TCP connection to the search daemon.
//!
//! Every frame is one self-delimiting record mirroring the `NAUTPROC` /
//! `NAUTCKPT` discipline:
//!
//! ```text
//! | MAGIC(8) | version u32 LE | body_len u64 LE | body | crc32 u32 LE |
//! ```
//!
//! * `MAGIC` is the fixed tag `b"NAUTSRVC"`.
//! * `version` is [`VERSION`]; readers reject anything else outright,
//!   *before* checking the CRC, so a version bump that moves the trailer
//!   still yields a precise error.
//! * `body` opens with a one-byte frame kind followed by the kind's
//!   [`WireWriter`]-encoded fields.
//! * The CRC-32 trailer covers everything before it using the checkpoint
//!   crate's [`crc32`].
//!
//! The conversation is one request / one reply per connection. The daemon
//! keeps no per-connection state, which is what lets a client retry any
//! request verbatim against a *restarted* daemon: job identity lives in
//! the daemon's state directory, not in the socket.
//!
//! ```text
//! client -> daemon   Request::Submit { spec }
//! daemon -> client   Reply::Submitted { job }   (or Reply::Rejected)
//! ...                (connection closes; later queries open fresh ones)
//! ```

use std::io::{Read, Write};

use nautilus_ga::checkpoint::crc32;
use nautilus_obs::{WireReader, WireWriter};

use crate::job::{JobPhase, JobSpec};
use crate::quota::Backpressure;

/// Fixed 8-byte tag opening every protocol frame.
pub const MAGIC: &[u8; 8] = b"NAUTSRVC";

/// Current protocol version. Bump on any layout change; readers reject
/// unknown versions outright rather than guessing.
///
/// * v1 — initial protocol.
/// * v2 — [`JobSpec`] grew a trailing `dedupe_key` string (idempotent
///   resubmission).
pub const VERSION: u32 = 2;

/// Upper bound on a frame body, enforced *before* allocation so a
/// corrupted length prefix cannot drive an OOM. Result frames carry full
/// event streams, so the cap matches `NAUTPROC`'s.
pub const MAX_BODY_LEN: u64 = 16 * 1024 * 1024;

const KIND_PING: u8 = 0;
const KIND_SUBMIT: u8 = 1;
const KIND_STATUS: u8 = 2;
const KIND_RESULT: u8 = 3;
const KIND_CANCEL: u8 = 4;
const KIND_DRAIN: u8 = 5;

const KIND_PONG: u8 = 0x80;
const KIND_SUBMITTED: u8 = 0x81;
const KIND_REJECTED: u8 = 0x82;
const KIND_STATUS_REPLY: u8 = 0x83;
const KIND_RESULT_REPLY: u8 = 0x84;
const KIND_CANCELLED: u8 = 0x85;
const KIND_DRAINING: u8 = 0x86;
const KIND_ERROR: u8 = 0x87;

/// Errors from framing, checksum validation, or structural decoding.
#[derive(Debug)]
#[non_exhaustive]
pub enum ProtoError {
    /// The stream ended cleanly on a frame boundary (zero bytes of the
    /// next frame were read): the peer closed the connection.
    CleanEof,
    /// The stream ended mid-frame.
    Truncated,
    /// The frame does not start with [`MAGIC`].
    BadMagic,
    /// The frame's protocol version is not one this build understands.
    UnsupportedVersion(u32),
    /// The declared body length exceeds [`MAX_BODY_LEN`].
    Oversized(u64),
    /// The CRC-32 over the frame does not match its trailer.
    BadCrc {
        /// Checksum recomputed from the received bytes.
        computed: u32,
        /// Checksum stored in the frame trailer.
        stored: u32,
    },
    /// The body failed structural decoding despite a valid checksum.
    Malformed(String),
    /// An I/O failure other than end-of-stream.
    Io(std::io::Error),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::CleanEof => write!(f, "clean end of stream"),
            ProtoError::Truncated => write!(f, "truncated frame"),
            ProtoError::BadMagic => write!(f, "not a NAUTSRVC frame (bad magic)"),
            ProtoError::UnsupportedVersion(v) => {
                write!(f, "unsupported protocol version {v}")
            }
            ProtoError::Oversized(n) => write!(f, "frame body of {n} bytes exceeds cap"),
            ProtoError::BadCrc { computed, stored } => {
                write!(f, "checksum mismatch: computed {computed:#010x}, stored {stored:#010x}")
            }
            ProtoError::Malformed(reason) => write!(f, "malformed frame body: {reason}"),
            ProtoError::Io(e) => write!(f, "i/o failure: {e}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<std::io::Error> for ProtoError {
    fn from(e: std::io::Error) -> ProtoError {
        ProtoError::Io(e)
    }
}

impl ProtoError {
    /// Short, deterministic label for telemetry payloads — no byte counts
    /// or OS error text, so event streams stay byte-identical run to run.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            ProtoError::CleanEof => "clean_eof",
            ProtoError::Truncated => "truncated",
            ProtoError::BadMagic => "bad_magic",
            ProtoError::UnsupportedVersion(_) => "unsupported_version",
            ProtoError::Oversized(_) => "oversized",
            ProtoError::BadCrc { .. } => "bad_crc",
            ProtoError::Malformed(_) => "malformed",
            ProtoError::Io(_) => "io",
        }
    }
}

/// Client -> daemon request frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe; answered with [`Reply::Pong`].
    Ping,
    /// Queue a new search job.
    Submit {
        /// Full job description.
        spec: JobSpec,
    },
    /// Query one job's lifecycle phase.
    Status {
        /// Job id from [`Reply::Submitted`].
        job: u64,
    },
    /// Fetch a finished job's artifacts.
    Result {
        /// Job id from [`Reply::Submitted`].
        job: u64,
    },
    /// Cancel a queued or running job.
    Cancel {
        /// Job id from [`Reply::Submitted`].
        job: u64,
    },
    /// Stop accepting work, checkpoint every in-flight run, and exit.
    Drain,
}

/// Daemon -> client reply frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// Answer to [`Request::Ping`].
    Pong {
        /// Number of jobs the daemon currently knows about.
        jobs: u64,
    },
    /// The submission was accepted and queued.
    Submitted {
        /// Daemon-assigned job id, stable across daemon restarts.
        job: u64,
    },
    /// The submission was refused. Always a *typed* reason — quota and
    /// breaker pressure never silently drop a job.
    Rejected {
        /// Why the daemon refused the work.
        reason: Backpressure,
    },
    /// Answer to [`Request::Status`].
    Status {
        /// Echo of the queried job id.
        job: u64,
        /// Current lifecycle phase.
        phase: JobPhase,
        /// Phase detail (failure message, stop reason, ...); empty when
        /// there is nothing to add.
        detail: String,
    },
    /// Answer to [`Request::Result`] for a finished job.
    Result {
        /// Echo of the queried job id.
        job: u64,
        /// Terminal phase (`Done`, `Failed`, or `Cancelled`).
        phase: JobPhase,
        /// Deterministic outcome digest (empty unless `Done`).
        outcome_json: String,
        /// Normalized [`nautilus::RunReport`] JSON (empty unless `Done`).
        report_json: String,
        /// Normalized event stream, one JSON object per line (empty
        /// unless `Done`).
        events_jsonl: String,
    },
    /// The cancel request was recorded.
    Cancelled {
        /// Echo of the cancelled job id.
        job: u64,
    },
    /// The daemon is now draining.
    Draining {
        /// Jobs still queued or running at the time of the request.
        pending: u64,
    },
    /// The request could not be served (unknown job id, job not finished,
    /// ...). Protocol-level faults close the connection instead.
    Error {
        /// Human-readable reason.
        message: String,
    },
}

/// One protocol frame, request or reply.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Client -> daemon.
    Request(Request),
    /// Daemon -> client.
    Reply(Reply),
}

impl Frame {
    /// Encodes this frame as one complete wire record.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut body = WireWriter::new();
        match self {
            Frame::Request(req) => encode_request(&mut body, req),
            Frame::Reply(rep) => encode_reply(&mut body, rep),
        }
        let body = body.into_bytes();
        let mut record = Vec::with_capacity(MAGIC.len() + 12 + body.len() + 4);
        record.extend_from_slice(MAGIC);
        record.extend_from_slice(&VERSION.to_le_bytes());
        record.extend_from_slice(&(body.len() as u64).to_le_bytes());
        record.extend_from_slice(&body);
        let crc = crc32(&record);
        record.extend_from_slice(&crc.to_le_bytes());
        record
    }

    /// Decodes one complete wire record.
    ///
    /// # Errors
    ///
    /// Every framing violation maps to a distinct [`ProtoError`]; a valid
    /// checksum over a structurally broken body is [`ProtoError::Malformed`].
    pub fn decode(record: &[u8]) -> Result<Frame, ProtoError> {
        let header = MAGIC.len() + 4 + 8;
        if record.len() < header + 4 {
            return Err(if record.len() >= MAGIC.len() && &record[..MAGIC.len()] != MAGIC {
                ProtoError::BadMagic
            } else {
                ProtoError::Truncated
            });
        }
        if &record[..MAGIC.len()] != MAGIC {
            return Err(ProtoError::BadMagic);
        }
        let version = u32::from_le_bytes(record[8..12].try_into().expect("4 bytes"));
        if version != VERSION {
            return Err(ProtoError::UnsupportedVersion(version));
        }
        let body_len = u64::from_le_bytes(record[12..20].try_into().expect("8 bytes"));
        if body_len > MAX_BODY_LEN {
            return Err(ProtoError::Oversized(body_len));
        }
        let body_len = usize::try_from(body_len).map_err(|_| ProtoError::Oversized(u64::MAX))?;
        let crc_offset = header.checked_add(body_len).ok_or(ProtoError::Oversized(u64::MAX))?;
        match record.len() {
            n if n < crc_offset + 4 => return Err(ProtoError::Truncated),
            n if n > crc_offset + 4 => {
                return Err(ProtoError::Malformed("trailing bytes after crc".into()))
            }
            _ => {}
        }
        let computed = crc32(&record[..crc_offset]);
        let stored = u32::from_le_bytes(record[crc_offset..crc_offset + 4].try_into().expect("4"));
        if computed != stored {
            return Err(ProtoError::BadCrc { computed, stored });
        }
        decode_body(&record[header..crc_offset])
    }

    /// Writes this frame to `w` and flushes.
    ///
    /// # Errors
    ///
    /// [`ProtoError::Io`] on any write failure.
    pub fn write_to(&self, w: &mut impl Write) -> Result<(), ProtoError> {
        w.write_all(&self.encode()).map_err(ProtoError::Io)?;
        w.flush().map_err(ProtoError::Io)
    }

    /// Reads exactly one frame from `r`.
    ///
    /// EOF before the first byte is [`ProtoError::CleanEof`]; EOF anywhere
    /// later is [`ProtoError::Truncated`]. The header is validated before
    /// the body is allocated, so garbage lengths fail fast.
    ///
    /// # Errors
    ///
    /// As [`Frame::decode`], plus [`ProtoError::Io`].
    pub fn read_from(r: &mut impl Read) -> Result<Frame, ProtoError> {
        let mut header = [0u8; 20];
        read_exact_or(r, &mut header, ProtoError::CleanEof)?;
        if &header[..MAGIC.len()] != MAGIC {
            return Err(ProtoError::BadMagic);
        }
        let version = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes"));
        if version != VERSION {
            return Err(ProtoError::UnsupportedVersion(version));
        }
        let body_len = u64::from_le_bytes(header[12..20].try_into().expect("8 bytes"));
        if body_len > MAX_BODY_LEN {
            return Err(ProtoError::Oversized(body_len));
        }
        let body_len = usize::try_from(body_len).map_err(|_| ProtoError::Oversized(u64::MAX))?;
        let mut rest = vec![0u8; body_len + 4];
        read_exact_or(r, &mut rest, ProtoError::Truncated)?;
        let mut record = Vec::with_capacity(20 + rest.len());
        record.extend_from_slice(&header);
        record.extend_from_slice(&rest);
        Frame::decode(&record)
    }
}

/// `read_exact` that maps a zero-progress EOF to `on_empty_eof` and a
/// partial-read EOF to [`ProtoError::Truncated`].
fn read_exact_or(
    r: &mut impl Read,
    buf: &mut [u8],
    on_empty_eof: ProtoError,
) -> Result<(), ProtoError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(if filled == 0 { on_empty_eof } else { ProtoError::Truncated });
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(ProtoError::Io(e)),
        }
    }
    Ok(())
}

fn encode_request(w: &mut WireWriter, req: &Request) {
    match req {
        Request::Ping => w.u8(KIND_PING),
        Request::Submit { spec } => {
            w.u8(KIND_SUBMIT);
            spec.encode_into(w);
        }
        Request::Status { job } => {
            w.u8(KIND_STATUS);
            w.u64(*job);
        }
        Request::Result { job } => {
            w.u8(KIND_RESULT);
            w.u64(*job);
        }
        Request::Cancel { job } => {
            w.u8(KIND_CANCEL);
            w.u64(*job);
        }
        Request::Drain => w.u8(KIND_DRAIN),
    }
}

fn encode_reply(w: &mut WireWriter, rep: &Reply) {
    match rep {
        Reply::Pong { jobs } => {
            w.u8(KIND_PONG);
            w.u64(*jobs);
        }
        Reply::Submitted { job } => {
            w.u8(KIND_SUBMITTED);
            w.u64(*job);
        }
        Reply::Rejected { reason } => {
            w.u8(KIND_REJECTED);
            reason.encode_into(w);
        }
        Reply::Status { job, phase, detail } => {
            w.u8(KIND_STATUS_REPLY);
            w.u64(*job);
            w.u8(phase.code());
            w.str(detail);
        }
        Reply::Result { job, phase, outcome_json, report_json, events_jsonl } => {
            w.u8(KIND_RESULT_REPLY);
            w.u64(*job);
            w.u8(phase.code());
            w.str(outcome_json);
            w.str(report_json);
            w.str(events_jsonl);
        }
        Reply::Cancelled { job } => {
            w.u8(KIND_CANCELLED);
            w.u64(*job);
        }
        Reply::Draining { pending } => {
            w.u8(KIND_DRAINING);
            w.u64(*pending);
        }
        Reply::Error { message } => {
            w.u8(KIND_ERROR);
            w.str(message);
        }
    }
}

fn decode_body(body: &[u8]) -> Result<Frame, ProtoError> {
    let mut r = WireReader::new(body);
    let frame = (|| -> Result<Frame, nautilus_obs::WireError> {
        let kind = r.u8()?;
        let frame = match kind {
            KIND_PING => Frame::Request(Request::Ping),
            KIND_SUBMIT => Frame::Request(Request::Submit { spec: JobSpec::decode_from(&mut r)? }),
            KIND_STATUS => Frame::Request(Request::Status { job: r.u64()? }),
            KIND_RESULT => Frame::Request(Request::Result { job: r.u64()? }),
            KIND_CANCEL => Frame::Request(Request::Cancel { job: r.u64()? }),
            KIND_DRAIN => Frame::Request(Request::Drain),
            KIND_PONG => Frame::Reply(Reply::Pong { jobs: r.u64()? }),
            KIND_SUBMITTED => Frame::Reply(Reply::Submitted { job: r.u64()? }),
            KIND_REJECTED => {
                Frame::Reply(Reply::Rejected { reason: Backpressure::decode_from(&mut r)? })
            }
            KIND_STATUS_REPLY => Frame::Reply(Reply::Status {
                job: r.u64()?,
                phase: JobPhase::from_code(r.u8()?)?,
                detail: r.str()?,
            }),
            KIND_RESULT_REPLY => Frame::Reply(Reply::Result {
                job: r.u64()?,
                phase: JobPhase::from_code(r.u8()?)?,
                outcome_json: r.str()?,
                report_json: r.str()?,
                events_jsonl: r.str()?,
            }),
            KIND_CANCELLED => Frame::Reply(Reply::Cancelled { job: r.u64()? }),
            KIND_DRAINING => Frame::Reply(Reply::Draining { pending: r.u64()? }),
            KIND_ERROR => Frame::Reply(Reply::Error { message: r.str()? }),
            other => return Err(nautilus_obs::WireError(format!("unknown frame kind {other}"))),
        };
        r.finish()?;
        Ok(frame)
    })();
    frame.map_err(|e| ProtoError::Malformed(e.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_spec() -> JobSpec {
        JobSpec {
            tenant: "acme".into(),
            model: "bowl".into(),
            strategy: "guided-strong".into(),
            seed: 0xBEEF,
            generations: 12,
            eval_workers: 2,
            max_evals: 500,
            deadline_ms: 0,
            eval_delay_us: 250,
            dedupe_key: "retry-42".into(),
        }
    }

    fn samples() -> Vec<Frame> {
        vec![
            Frame::Request(Request::Ping),
            Frame::Request(Request::Submit { spec: sample_spec() }),
            Frame::Request(Request::Status { job: 7 }),
            Frame::Request(Request::Result { job: 7 }),
            Frame::Request(Request::Cancel { job: 9 }),
            Frame::Request(Request::Drain),
            Frame::Reply(Reply::Pong { jobs: 3 }),
            Frame::Reply(Reply::Submitted { job: 7 }),
            Frame::Reply(Reply::Rejected {
                reason: Backpressure::QueueFull { queued: 8, limit: 8 },
            }),
            Frame::Reply(Reply::Rejected {
                reason: Backpressure::UnknownModel { name: "warp-core".into() },
            }),
            Frame::Reply(Reply::Status { job: 7, phase: JobPhase::Running, detail: String::new() }),
            Frame::Reply(Reply::Result {
                job: 7,
                phase: JobPhase::Done,
                outcome_json: "{\"stop\":\"completed\"}".into(),
                report_json: "{}".into(),
                events_jsonl: "{\"type\":\"run_start\"}\n".into(),
            }),
            Frame::Reply(Reply::Cancelled { job: 9 }),
            Frame::Reply(Reply::Draining { pending: 2 }),
            Frame::Reply(Reply::Error { message: "unknown job 42".into() }),
        ]
    }

    #[test]
    fn every_frame_round_trips() {
        for frame in samples() {
            let record = frame.encode();
            let decoded = Frame::decode(&record).expect("round trip");
            assert_eq!(decoded, frame);
            let mut cursor = std::io::Cursor::new(record);
            let read = Frame::read_from(&mut cursor).expect("stream round trip");
            assert_eq!(read, frame);
        }
    }

    #[test]
    fn golden_ping_bytes_are_stable() {
        // Layout freeze: magic, version 2, one-byte body, CRC trailer.
        let record = Frame::Request(Request::Ping).encode();
        assert_eq!(&record[..8], b"NAUTSRVC");
        assert_eq!(&record[8..12], &2u32.to_le_bytes());
        assert_eq!(&record[12..20], &1u64.to_le_bytes());
        assert_eq!(record[20], KIND_PING);
        let crc = crc32(&record[..21]);
        assert_eq!(&record[21..], &crc.to_le_bytes());
        assert_eq!(record.len(), 25);
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let record = Frame::Request(Request::Submit { spec: sample_spec() }).encode();
        for byte in 0..record.len() {
            for bit in 0..8 {
                let mut corrupt = record.clone();
                corrupt[byte] ^= 1 << bit;
                assert!(
                    Frame::decode(&corrupt).is_err(),
                    "bit {bit} of byte {byte}/{} flipped without detection",
                    record.len()
                );
            }
        }
    }

    #[test]
    fn every_prefix_truncation_is_detected() {
        let record = Frame::Reply(Reply::Submitted { job: 1 }).encode();
        for cut in 0..record.len() {
            assert!(
                Frame::decode(&record[..cut]).is_err(),
                "truncation at {cut}/{} silently accepted",
                record.len()
            );
        }
    }

    #[test]
    fn unknown_version_is_rejected_before_crc() {
        let mut record = Frame::Request(Request::Ping).encode();
        record[8..12].copy_from_slice(&99u32.to_le_bytes());
        // No CRC fixup: the version check must fire first.
        assert!(matches!(Frame::decode(&record), Err(ProtoError::UnsupportedVersion(99))));
        let mut cursor = std::io::Cursor::new(record);
        assert!(matches!(Frame::read_from(&mut cursor), Err(ProtoError::UnsupportedVersion(99))));
    }

    #[test]
    fn oversized_and_eof_classification() {
        let mut record = Frame::Request(Request::Ping).encode();
        record[12..20].copy_from_slice(&(MAX_BODY_LEN + 1).to_le_bytes());
        assert!(matches!(Frame::decode(&record), Err(ProtoError::Oversized(_))));

        let mut empty = std::io::Cursor::new(Vec::<u8>::new());
        assert!(matches!(Frame::read_from(&mut empty), Err(ProtoError::CleanEof)));
        let full = Frame::Request(Request::Ping).encode();
        let mut partial = std::io::Cursor::new(full[..10].to_vec());
        assert!(matches!(Frame::read_from(&mut partial), Err(ProtoError::Truncated)));
    }

    #[test]
    fn error_labels_are_stable() {
        let cases: Vec<(ProtoError, &str)> = vec![
            (ProtoError::CleanEof, "clean_eof"),
            (ProtoError::Truncated, "truncated"),
            (ProtoError::BadMagic, "bad_magic"),
            (ProtoError::UnsupportedVersion(9), "unsupported_version"),
            (ProtoError::Oversized(1), "oversized"),
            (ProtoError::BadCrc { computed: 1, stored: 2 }, "bad_crc"),
            (ProtoError::Malformed("x".into()), "malformed"),
        ];
        for (err, label) in cases {
            assert_eq!(err.label(), label);
        }
    }
}
