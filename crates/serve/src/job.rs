//! Job descriptions, lifecycle phases, and their on-disk records.
//!
//! Everything a daemon restart must reconstruct lives under the job's own
//! directory (`<state>/jobs/<id>/`) as CRC-trailed `NAUTSRVC` frames —
//! the same records that travel the wire:
//!
//! * `spec` — the submitted [`JobSpec`], encoded as its `Submit` frame.
//! * `result` — the terminal [`crate::proto::Reply::Result`] frame, written
//!   atomically once the job reaches `Done` / `Failed` / `Cancelled`.
//! * `cancel` — empty marker recording a user cancel request, so a cancel
//!   that raced a daemon crash is honoured after restart.
//! * `ckpt/` — the engine's own `NAUTCKPT` checkpoint store.
//! * `events-NNN.jsonl` — one raw event log per daemon incarnation that
//!   executed (part of) the run; spliced by [`crate::runner`].
//!
//! A job with a `spec` but no `result` is *orphaned* work: the recovery
//! scan re-adopts it, and the engine's checkpoint discipline guarantees
//! the resumed search replays bit-for-bit.

use std::fs;
use std::path::{Path, PathBuf};

use nautilus_ga::DurableIo;
use nautilus_obs::{WireError, WireReader, WireWriter};

use crate::proto::{Frame, ProtoError, Reply, Request};

/// Full description of one search job, as submitted by a client.
///
/// The daemon derives the query, hint set, and GA settings from the model
/// registry ([`crate::registry`]) — a spec names *what* to search and how
/// much budget it gets, never raw engine configuration, so two tenants
/// submitting the same spec always run the same search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Tenant identity the submission is accounted against.
    pub tenant: String,
    /// Registry model name (`bowl`, `ridge`, `router`, ...).
    pub model: String,
    /// Search strategy: `baseline`, `guided-weak`, or `guided-strong`.
    pub strategy: String,
    /// GA seed; identical specs with identical seeds reproduce exactly.
    pub seed: u64,
    /// Generations to run.
    pub generations: u32,
    /// Evaluation worker threads (0 = engine default). Never affects
    /// results, only wall-clock.
    pub eval_workers: u32,
    /// Distinct-evaluation budget; 0 = unlimited (subject to quota).
    pub max_evals: u64,
    /// Wall-clock deadline in milliseconds; 0 = none.
    pub deadline_ms: u64,
    /// Artificial per-evaluation latency in microseconds — stands in for
    /// a slow EDA tool so interruption tests can land mid-run.
    pub eval_delay_us: u64,
    /// Client-supplied idempotency key (empty = none). A resubmission
    /// carrying the same `(tenant, dedupe_key)` as an already-accepted
    /// job returns the original job id instead of enqueueing a
    /// duplicate — so a client that lost a `Submitted` reply can safely
    /// retry. Persisted in the spec record, so dedupe survives daemon
    /// restarts.
    pub dedupe_key: String,
}

impl JobSpec {
    pub(crate) fn encode_into(&self, w: &mut WireWriter) {
        w.str(&self.tenant);
        w.str(&self.model);
        w.str(&self.strategy);
        w.u64(self.seed);
        w.u32(self.generations);
        w.u32(self.eval_workers);
        w.u64(self.max_evals);
        w.u64(self.deadline_ms);
        w.u64(self.eval_delay_us);
        w.str(&self.dedupe_key);
    }

    pub(crate) fn decode_from(r: &mut WireReader<'_>) -> Result<JobSpec, WireError> {
        Ok(JobSpec {
            tenant: r.str()?,
            model: r.str()?,
            strategy: r.str()?,
            seed: r.u64()?,
            generations: r.u32()?,
            eval_workers: r.u32()?,
            max_evals: r.u64()?,
            deadline_ms: r.u64()?,
            eval_delay_us: r.u64()?,
            dedupe_key: r.str()?,
        })
    }
}

/// Lifecycle phase of a job, as reported over the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobPhase {
    /// Accepted and waiting for a scheduler slot.
    Queued,
    /// Executing on a slot right now.
    Running,
    /// Finished successfully; artifacts are available.
    Done,
    /// Finished with an error (model fault, panic, checkpoint failure).
    Failed,
    /// Terminated by a user cancel request.
    Cancelled,
}

impl JobPhase {
    /// Stable one-byte wire code.
    #[must_use]
    pub fn code(self) -> u8 {
        match self {
            JobPhase::Queued => 0,
            JobPhase::Running => 1,
            JobPhase::Done => 2,
            JobPhase::Failed => 3,
            JobPhase::Cancelled => 4,
        }
    }

    /// Inverse of [`JobPhase::code`].
    pub(crate) fn from_code(code: u8) -> Result<JobPhase, WireError> {
        Ok(match code {
            0 => JobPhase::Queued,
            1 => JobPhase::Running,
            2 => JobPhase::Done,
            3 => JobPhase::Failed,
            4 => JobPhase::Cancelled,
            other => return Err(WireError(format!("unknown job phase {other}"))),
        })
    }

    /// Stable lowercase label used in status output and telemetry.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            JobPhase::Queued => "queued",
            JobPhase::Running => "running",
            JobPhase::Done => "done",
            JobPhase::Failed => "failed",
            JobPhase::Cancelled => "cancelled",
        }
    }

    /// True for phases no scheduler will ever move a job out of.
    #[must_use]
    pub fn is_terminal(self) -> bool {
        matches!(self, JobPhase::Done | JobPhase::Failed | JobPhase::Cancelled)
    }
}

/// On-disk layout of one job's directory.
#[derive(Debug, Clone)]
pub struct JobDir {
    root: PathBuf,
    io: DurableIo,
}

impl JobDir {
    /// Directory for job `id` under `jobs_root`, created on demand.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn create(jobs_root: &Path, id: u64) -> std::io::Result<JobDir> {
        let root = jobs_root.join(format!("{id:08}"));
        fs::create_dir_all(&root)?;
        Ok(JobDir { root, io: DurableIo::real() })
    }

    /// Opens an existing job directory without creating anything.
    #[must_use]
    pub fn open(root: PathBuf) -> JobDir {
        JobDir { root, io: DurableIo::real() }
    }

    /// Routes this job's durable writes (spec, result, cancel marker,
    /// event logs, checkpoints) through `io` — the fault-injection /
    /// census handle of [`nautilus_ga::durable`].
    #[must_use]
    pub fn with_io(mut self, io: DurableIo) -> JobDir {
        self.io = io;
        self
    }

    /// The durable-write handle this job was opened with.
    #[must_use]
    pub fn io(&self) -> &DurableIo {
        &self.io
    }

    /// Sweeps residue of interrupted atomic writes (stray dot-`.tmp`
    /// files) out of the job directory; returns how many were removed.
    pub fn clean_stray_tmps(&self) -> usize {
        DurableIo::clean_stray_tmps(&self.root).len()
    }

    /// The job directory itself.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.root
    }

    /// The engine's checkpoint directory for this job.
    #[must_use]
    pub fn checkpoint_dir(&self) -> PathBuf {
        self.root.join("ckpt")
    }

    /// Persists the spec record (atomically; survives any crash).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; a failed write leaves no partial file.
    pub fn write_spec(&self, spec: &JobSpec) -> std::io::Result<()> {
        let record = Frame::Request(Request::Submit { spec: spec.clone() }).encode();
        self.io.write_atomic(&self.root, "spec", &record, "job.spec")
    }

    /// Loads and validates the spec record.
    ///
    /// # Errors
    ///
    /// I/O failures plus every framing/CRC violation from decode.
    pub fn read_spec(&self) -> Result<JobSpec, ProtoError> {
        let record = fs::read(self.root.join("spec")).map_err(ProtoError::Io)?;
        match Frame::decode(&record)? {
            Frame::Request(Request::Submit { spec }) => Ok(spec),
            other => Err(ProtoError::Malformed(format!("spec file holds {other:?}"))),
        }
    }

    /// Persists the terminal result reply (atomically). Presence of this
    /// record is what marks a job finished across restarts.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; a failed write leaves no partial file.
    pub fn write_result(&self, reply: &Reply) -> std::io::Result<()> {
        let record = Frame::Reply(reply.clone()).encode();
        self.io.write_atomic(&self.root, "result", &record, "job.result")
    }

    /// Loads the terminal result reply, if the job has one.
    ///
    /// # Errors
    ///
    /// I/O failures plus every framing/CRC violation from decode.
    pub fn read_result(&self) -> Result<Option<Reply>, ProtoError> {
        let path = self.root.join("result");
        if !path.exists() {
            return Ok(None);
        }
        let record = fs::read(path).map_err(ProtoError::Io)?;
        match Frame::decode(&record)? {
            Frame::Reply(reply @ Reply::Result { .. }) => Ok(Some(reply)),
            other => Err(ProtoError::Malformed(format!("result file holds {other:?}"))),
        }
    }

    /// Records a user cancel request durably.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn mark_cancel_requested(&self) -> std::io::Result<()> {
        self.io.write_atomic(&self.root, "cancel", b"", "job.cancel")
    }

    /// True when a user cancel was recorded (possibly by a previous
    /// daemon incarnation).
    #[must_use]
    pub fn cancel_requested(&self) -> bool {
        self.root.join("cancel").exists()
    }

    /// Path for this incarnation's raw event log: the first unused
    /// `events-NNN.jsonl` name.
    #[must_use]
    pub fn next_event_log(&self) -> PathBuf {
        let n = self.event_logs().len();
        self.root.join(format!("events-{n:03}.jsonl"))
    }

    /// All incarnation event logs, oldest first.
    #[must_use]
    pub fn event_logs(&self) -> Vec<PathBuf> {
        let mut logs: Vec<PathBuf> = fs::read_dir(&self.root)
            .into_iter()
            .flatten()
            .flatten()
            .map(|e| e.path())
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("events-") && n.ends_with(".jsonl"))
            })
            .collect();
        logs.sort();
        logs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tempdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("nautilus-serve-job-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn job_dir_records_round_trip() {
        let root = tempdir("roundtrip");
        let dir = JobDir::create(&root, 3).unwrap();
        assert!(dir.path().ends_with("00000003"));

        let spec = JobSpec {
            tenant: "t".into(),
            model: "bowl".into(),
            strategy: "baseline".into(),
            seed: 1,
            generations: 4,
            eval_workers: 1,
            max_evals: 0,
            deadline_ms: 0,
            eval_delay_us: 0,
            dedupe_key: String::new(),
        };
        dir.write_spec(&spec).unwrap();
        assert_eq!(dir.read_spec().unwrap(), spec);

        assert!(dir.read_result().unwrap().is_none());
        let reply = Reply::Result {
            job: 3,
            phase: JobPhase::Done,
            outcome_json: "{}".into(),
            report_json: "{}".into(),
            events_jsonl: String::new(),
        };
        dir.write_result(&reply).unwrap();
        assert_eq!(dir.read_result().unwrap(), Some(reply));

        assert!(!dir.cancel_requested());
        dir.mark_cancel_requested().unwrap();
        assert!(dir.cancel_requested());

        assert_eq!(dir.next_event_log().file_name().unwrap(), "events-000.jsonl");
        fs::write(dir.next_event_log(), "x\n").unwrap();
        assert_eq!(dir.next_event_log().file_name().unwrap(), "events-001.jsonl");
        assert_eq!(dir.event_logs().len(), 1);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupt_spec_is_rejected_not_misread() {
        let root = tempdir("corrupt");
        let dir = JobDir::create(&root, 1).unwrap();
        let spec = JobSpec {
            tenant: "t".into(),
            model: "bowl".into(),
            strategy: "baseline".into(),
            seed: 1,
            generations: 4,
            eval_workers: 1,
            max_evals: 0,
            deadline_ms: 0,
            eval_delay_us: 0,
            dedupe_key: String::new(),
        };
        dir.write_spec(&spec).unwrap();
        let path = dir.path().join("spec");
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        assert!(dir.read_spec().is_err(), "flipped bit must not decode");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn phase_codes_round_trip_and_labels_are_stable() {
        for phase in [
            JobPhase::Queued,
            JobPhase::Running,
            JobPhase::Done,
            JobPhase::Failed,
            JobPhase::Cancelled,
        ] {
            assert_eq!(JobPhase::from_code(phase.code()).unwrap(), phase);
        }
        assert!(JobPhase::from_code(9).is_err());
        assert_eq!(JobPhase::Done.label(), "done");
        assert!(JobPhase::Failed.is_terminal());
        assert!(!JobPhase::Running.is_terminal());
    }
}
