//! The nautilus search daemon.
//!
//! ```text
//! nautilus-serve --dir /var/lib/nautilus [--slots N]
//! ```
//!
//! Listens on an ephemeral localhost port (published to `<dir>/endpoint`),
//! recovers any jobs a previous incarnation left behind, and serves
//! submissions until SIGTERM or SIGINT, either of which triggers a
//! graceful drain: running jobs checkpoint and park, queued jobs stay
//! queued, and the next incarnation re-adopts everything.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use nautilus_serve::{Daemon, DaemonConfig};

/// SIGINT's POSIX signal number.
const SIGINT: i32 = 2;
/// SIGTERM's POSIX signal number.
const SIGTERM: i32 = 15;

static STOP: AtomicBool = AtomicBool::new(false);

extern "C" fn on_stop_signal(_signum: i32) {
    STOP.store(true, Ordering::Release);
}

fn install_stop_signals() {
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    unsafe {
        signal(SIGINT, on_stop_signal);
        signal(SIGTERM, on_stop_signal);
    }
}

fn usage() -> ! {
    eprintln!("usage: nautilus-serve --dir PATH [--slots N]");
    std::process::exit(2);
}

fn main() {
    let mut dir: Option<PathBuf> = None;
    let mut slots: usize = 2;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--dir" => match args.next() {
                Some(v) => dir = Some(PathBuf::from(v)),
                None => usage(),
            },
            "--slots" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) if v > 0 => slots = v,
                _ => usage(),
            },
            _ => usage(),
        }
    }
    let Some(dir) = dir else { usage() };
    std::fs::create_dir_all(&dir).expect("create state directory");

    install_stop_signals();

    let mut cfg = DaemonConfig::new(&dir);
    cfg.slots = slots;
    let daemon = Daemon::start(cfg).expect("start daemon");
    println!("nautilus-serve listening on {} (state: {})", daemon.addr(), dir.display());

    while !STOP.load(Ordering::Acquire) {
        std::thread::sleep(Duration::from_millis(25));
    }
    eprintln!("nautilus-serve: draining");
    daemon.drain_and_join();
    eprintln!("nautilus-serve: drained, exiting");
}
