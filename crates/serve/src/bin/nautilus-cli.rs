//! Command-line client for `nautilus-serve`.
//!
//! ```text
//! nautilus-cli ping     --dir PATH
//! nautilus-cli submit   --dir PATH --model M --strategy S [spec flags]
//! nautilus-cli status   --dir PATH --job ID
//! nautilus-cli result   --dir PATH --job ID [--wait SECS]
//! nautilus-cli cancel   --dir PATH --job ID
//! nautilus-cli drain    --dir PATH
//! nautilus-cli straight --model M --strategy S [spec flags]
//! ```
//!
//! `result` and `straight` print the same three-part digest — outcome
//! JSON, normalized report JSON, then the normalized event stream — so a
//! daemon-recovered run can be `diff`ed against an uninterrupted
//! in-process run of the same spec.

use std::path::PathBuf;
use std::time::Duration;

use nautilus_serve::job::JobSpec;
use nautilus_serve::proto::Reply;
use nautilus_serve::{runner, ServeClient};

fn usage() -> ! {
    eprintln!(
        "usage: nautilus-cli <ping|submit|status|result|cancel|drain|straight> \
         [--dir PATH] [--job ID] [--wait SECS] [--tenant T] [--model M] \
         [--strategy S] [--seed N] [--generations N] [--workers N] \
         [--max-evals N] [--deadline-ms N] [--eval-delay-us N] [--dedupe-key K]"
    );
    std::process::exit(2);
}

fn fail(message: impl std::fmt::Display) -> ! {
    eprintln!("nautilus-cli: {message}");
    std::process::exit(1);
}

struct Cli {
    command: String,
    dir: Option<PathBuf>,
    job: Option<u64>,
    wait_secs: u64,
    spec: JobSpec,
}

fn parse_cli() -> Cli {
    let mut args = std::env::args().skip(1);
    let Some(command) = args.next() else { usage() };
    let mut cli = Cli {
        command,
        dir: None,
        job: None,
        wait_secs: 120,
        spec: JobSpec {
            tenant: "default".into(),
            model: String::new(),
            strategy: "guided-strong".into(),
            seed: 1,
            generations: 8,
            eval_workers: 1,
            max_evals: 0,
            deadline_ms: 0,
            eval_delay_us: 0,
            dedupe_key: String::new(),
        },
    };
    while let Some(arg) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match arg.as_str() {
            "--dir" => cli.dir = Some(PathBuf::from(value())),
            "--job" => cli.job = value().parse().ok().or_else(|| usage()),
            "--wait" => cli.wait_secs = value().parse().unwrap_or_else(|_| usage()),
            "--tenant" => cli.spec.tenant = value(),
            "--model" => cli.spec.model = value(),
            "--strategy" => cli.spec.strategy = value(),
            "--seed" => cli.spec.seed = value().parse().unwrap_or_else(|_| usage()),
            "--generations" => {
                cli.spec.generations = value().parse().unwrap_or_else(|_| usage());
            }
            "--workers" => {
                cli.spec.eval_workers = value().parse().unwrap_or_else(|_| usage());
            }
            "--max-evals" => cli.spec.max_evals = value().parse().unwrap_or_else(|_| usage()),
            "--dedupe-key" => cli.spec.dedupe_key = value(),
            "--deadline-ms" => {
                cli.spec.deadline_ms = value().parse().unwrap_or_else(|_| usage());
            }
            "--eval-delay-us" => {
                cli.spec.eval_delay_us = value().parse().unwrap_or_else(|_| usage());
            }
            _ => usage(),
        }
    }
    cli
}

fn client_for(cli: &Cli) -> ServeClient {
    let Some(dir) = &cli.dir else { usage() };
    ServeClient::from_state_dir(dir).unwrap_or_else(|e| fail(e))
}

fn job_for(cli: &Cli) -> u64 {
    cli.job.unwrap_or_else(|| usage())
}

fn print_digest(outcome_json: &str, report_json: &str, events_jsonl: &str) {
    println!("{outcome_json}");
    println!("{report_json}");
    print!("{events_jsonl}");
}

fn main() {
    let cli = parse_cli();
    match cli.command.as_str() {
        "ping" => {
            let jobs = client_for(&cli).ping().unwrap_or_else(|e| fail(e));
            println!("pong: {jobs} jobs");
        }
        "submit" => {
            if cli.spec.model.is_empty() {
                usage();
            }
            match client_for(&cli).submit(&cli.spec).unwrap_or_else(|e| fail(e)) {
                Ok(job) => println!("{job}"),
                Err(bp) => fail(format!("rejected: {bp}")),
            }
        }
        "status" => {
            let (phase, detail) =
                client_for(&cli).status(job_for(&cli)).unwrap_or_else(|e| fail(e));
            println!("{}: {detail}", phase.label());
        }
        "result" => {
            let reply = client_for(&cli)
                .wait_result(job_for(&cli), Duration::from_secs(cli.wait_secs))
                .unwrap_or_else(|e| fail(e));
            let Reply::Result { phase, outcome_json, report_json, events_jsonl, .. } = reply else {
                fail("daemon returned a non-result reply");
            };
            if !phase.is_terminal() {
                fail(format!("job still {}", phase.label()));
            }
            print_digest(&outcome_json, &report_json, &events_jsonl);
        }
        "cancel" => {
            client_for(&cli).cancel(job_for(&cli)).unwrap_or_else(|e| fail(e));
            println!("cancel requested");
        }
        "drain" => {
            let pending = client_for(&cli).drain().unwrap_or_else(|e| fail(e));
            println!("draining, {pending} jobs pending");
        }
        "straight" => {
            if cli.spec.model.is_empty() {
                usage();
            }
            let artifacts = runner::straight(&cli.spec).unwrap_or_else(|e| fail(e));
            print_digest(&artifacts.outcome_json, &artifacts.report_json, &artifacts.events_jsonl);
        }
        _ => usage(),
    }
}
