//! Per-tenant budgets and the typed backpressure taxonomy.
//!
//! The daemon never silently drops a submission: every refusal is a
//! [`Backpressure`] value that crosses the wire intact, so a client can
//! distinguish "your queue is full, retry later" from "this model's
//! breaker is open" from "your deadline exceeds policy" and react
//! appropriately.

use nautilus_obs::{WireError, WireReader, WireWriter};

/// Admission limits applied to each tenant independently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantQuota {
    /// Maximum jobs a tenant may have queued or running at once.
    pub max_active: usize,
    /// Largest distinct-evaluation budget a single job may request; a
    /// spec with `max_evals == 0` (unlimited) is clamped to this.
    pub max_evals: u64,
    /// Longest deadline a single job may request, milliseconds.
    pub max_deadline_ms: u64,
}

impl Default for TenantQuota {
    fn default() -> Self {
        TenantQuota { max_active: 8, max_evals: 2_000_000, max_deadline_ms: 3_600_000 }
    }
}

/// Why the daemon refused a submission. Every variant carries enough to
/// act on; [`Backpressure::label`] is the stable telemetry key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Backpressure {
    /// The tenant already has `limit` jobs queued or running.
    QueueFull {
        /// Jobs currently held by this tenant.
        queued: u64,
        /// The tenant's `max_active` quota.
        limit: u64,
    },
    /// The requested evaluation budget exceeds tenant policy.
    EvalBudgetTooLarge {
        /// Budget the spec asked for (0 = unlimited).
        requested: u64,
        /// The tenant's `max_evals` quota.
        limit: u64,
    },
    /// The requested deadline exceeds tenant policy.
    DeadlineTooLong {
        /// Deadline the spec asked for, ms.
        requested_ms: u64,
        /// The tenant's `max_deadline_ms` quota.
        limit_ms: u64,
    },
    /// The model's circuit breaker is open after repeated failures.
    BreakerOpen {
        /// Model whose breaker tripped.
        model: String,
    },
    /// The daemon is draining and accepts no new work.
    Draining,
    /// The spec names a model the registry does not know.
    UnknownModel {
        /// The unrecognized name.
        name: String,
    },
    /// The spec names a strategy the registry does not know.
    UnknownStrategy {
        /// The unrecognized name.
        name: String,
    },
    /// The daemon is already serving its configured maximum of
    /// concurrent connections; overload is shed at accept time instead
    /// of queueing unboundedly.
    TooManyConnections {
        /// Connections being served when this one arrived.
        active: u64,
        /// The daemon's `max_connections` cap.
        limit: u64,
    },
}

const BP_QUEUE_FULL: u8 = 0;
const BP_EVAL_BUDGET: u8 = 1;
const BP_DEADLINE: u8 = 2;
const BP_BREAKER: u8 = 3;
const BP_DRAINING: u8 = 4;
const BP_UNKNOWN_MODEL: u8 = 5;
const BP_UNKNOWN_STRATEGY: u8 = 6;
const BP_TOO_MANY_CONNS: u8 = 7;

impl Backpressure {
    /// Short, stable label for telemetry and event payloads.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Backpressure::QueueFull { .. } => "queue_full",
            Backpressure::EvalBudgetTooLarge { .. } => "eval_budget_too_large",
            Backpressure::DeadlineTooLong { .. } => "deadline_too_long",
            Backpressure::BreakerOpen { .. } => "breaker_open",
            Backpressure::Draining => "draining",
            Backpressure::UnknownModel { .. } => "unknown_model",
            Backpressure::UnknownStrategy { .. } => "unknown_strategy",
            Backpressure::TooManyConnections { .. } => "too_many_connections",
        }
    }

    /// Human-readable refusal message.
    #[must_use]
    pub fn detail(&self) -> String {
        match self {
            Backpressure::QueueFull { queued, limit } => {
                format!("tenant already holds {queued} of {limit} active jobs")
            }
            Backpressure::EvalBudgetTooLarge { requested, limit } => {
                format!("evaluation budget {requested} exceeds tenant limit {limit}")
            }
            Backpressure::DeadlineTooLong { requested_ms, limit_ms } => {
                format!("deadline {requested_ms}ms exceeds tenant limit {limit_ms}ms")
            }
            Backpressure::BreakerOpen { model } => {
                format!("circuit breaker for model `{model}` is open")
            }
            Backpressure::Draining => "daemon is draining".to_owned(),
            Backpressure::UnknownModel { name } => format!("unknown model `{name}`"),
            Backpressure::UnknownStrategy { name } => format!("unknown strategy `{name}`"),
            Backpressure::TooManyConnections { active, limit } => {
                format!("daemon already serving {active} of {limit} connections")
            }
        }
    }

    pub(crate) fn encode_into(&self, w: &mut WireWriter) {
        match self {
            Backpressure::QueueFull { queued, limit } => {
                w.u8(BP_QUEUE_FULL);
                w.u64(*queued);
                w.u64(*limit);
            }
            Backpressure::EvalBudgetTooLarge { requested, limit } => {
                w.u8(BP_EVAL_BUDGET);
                w.u64(*requested);
                w.u64(*limit);
            }
            Backpressure::DeadlineTooLong { requested_ms, limit_ms } => {
                w.u8(BP_DEADLINE);
                w.u64(*requested_ms);
                w.u64(*limit_ms);
            }
            Backpressure::BreakerOpen { model } => {
                w.u8(BP_BREAKER);
                w.str(model);
            }
            Backpressure::Draining => w.u8(BP_DRAINING),
            Backpressure::UnknownModel { name } => {
                w.u8(BP_UNKNOWN_MODEL);
                w.str(name);
            }
            Backpressure::UnknownStrategy { name } => {
                w.u8(BP_UNKNOWN_STRATEGY);
                w.str(name);
            }
            Backpressure::TooManyConnections { active, limit } => {
                w.u8(BP_TOO_MANY_CONNS);
                w.u64(*active);
                w.u64(*limit);
            }
        }
    }

    pub(crate) fn decode_from(r: &mut WireReader<'_>) -> Result<Backpressure, WireError> {
        Ok(match r.u8()? {
            BP_QUEUE_FULL => Backpressure::QueueFull { queued: r.u64()?, limit: r.u64()? },
            BP_EVAL_BUDGET => {
                Backpressure::EvalBudgetTooLarge { requested: r.u64()?, limit: r.u64()? }
            }
            BP_DEADLINE => {
                Backpressure::DeadlineTooLong { requested_ms: r.u64()?, limit_ms: r.u64()? }
            }
            BP_BREAKER => Backpressure::BreakerOpen { model: r.str()? },
            BP_DRAINING => Backpressure::Draining,
            BP_UNKNOWN_MODEL => Backpressure::UnknownModel { name: r.str()? },
            BP_UNKNOWN_STRATEGY => Backpressure::UnknownStrategy { name: r.str()? },
            BP_TOO_MANY_CONNS => {
                Backpressure::TooManyConnections { active: r.u64()?, limit: r.u64()? }
            }
            other => return Err(WireError(format!("unknown backpressure kind {other}"))),
        })
    }
}

impl std::fmt::Display for Backpressure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.label(), self.detail())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Backpressure> {
        vec![
            Backpressure::QueueFull { queued: 8, limit: 8 },
            Backpressure::EvalBudgetTooLarge { requested: 0, limit: 100 },
            Backpressure::DeadlineTooLong { requested_ms: 7_200_000, limit_ms: 3_600_000 },
            Backpressure::BreakerOpen { model: "poison".into() },
            Backpressure::Draining,
            Backpressure::UnknownModel { name: "warp".into() },
            Backpressure::UnknownStrategy { name: "psychic".into() },
            Backpressure::TooManyConnections { active: 64, limit: 64 },
        ]
    }

    #[test]
    fn every_variant_round_trips() {
        for bp in samples() {
            let mut w = WireWriter::new();
            bp.encode_into(&mut w);
            let bytes = w.into_bytes();
            let mut r = WireReader::new(&bytes);
            let decoded = Backpressure::decode_from(&mut r).unwrap();
            r.finish().unwrap();
            assert_eq!(decoded, bp);
        }
    }

    #[test]
    fn labels_are_stable_and_details_informative() {
        let expected = [
            "queue_full",
            "eval_budget_too_large",
            "deadline_too_long",
            "breaker_open",
            "draining",
            "unknown_model",
            "unknown_strategy",
            "too_many_connections",
        ];
        for (bp, label) in samples().iter().zip(expected) {
            assert_eq!(bp.label(), label);
            assert!(!bp.detail().is_empty());
            assert!(bp.to_string().starts_with(label));
        }
    }
}
