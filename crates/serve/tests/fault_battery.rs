//! The disk-fault battery: enumerate every durable write point in a
//! daemon job's lifetime with a census run, then fail each in turn and
//! prove the daemon either surfaces a typed error or recovers to a
//! byte-identical result.
//!
//! A census [`DurableIo`] records the `(index, site)` of every durable
//! operation an uninterrupted lifecycle performs. The battery then
//! replays the same lifecycle under one-shot [`IoFaultPlan`]s aimed at
//! those indices. Expected outcomes per site:
//!
//! * `daemon.endpoint` — startup fails with a typed error; no daemon.
//! * `job.spec` — submission gets a typed `Error` reply, the half-born
//!   job dir is removed, and the daemon keeps serving.
//! * `ckpt.*`, `job.result`, and the `job.events` log *creation* —
//!   recoverable: the job is requeued in-incarnation and finishes with
//!   artifacts byte-identical to an uninterrupted run.
//! * `job.events` appends and the final sync — terminal: replaying
//!   would silently drop already-logged lines, so the job fails typed,
//!   without tripping the model's circuit breaker.

use std::path::{Path, PathBuf};
use std::time::Duration;

use nautilus::{DurableIo, IoFaultKind, IoFaultPlan, WritePoint};
use nautilus_serve::job::{JobDir, JobPhase, JobSpec};
use nautilus_serve::proto::{Reply, Request};
use nautilus_serve::quota::TenantQuota;
use nautilus_serve::{runner, Daemon, DaemonConfig, ServeClient};

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nautilus-fault-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn spec(workers: u32) -> JobSpec {
    JobSpec {
        tenant: "acme".into(),
        model: "bowl".into(),
        strategy: "guided-strong".into(),
        seed: 11,
        generations: 8,
        eval_workers: workers,
        max_evals: 0,
        deadline_ms: 0,
        eval_delay_us: 0,
        dedupe_key: String::new(),
    }
}

fn cfg(dir: &Path, io: DurableIo) -> DaemonConfig {
    let mut cfg = DaemonConfig::new(dir);
    cfg.slots = 1;
    // Trip on the first model failure, so "submission still admitted
    // after a durable failure" proves the breaker was NOT touched.
    cfg.breaker_trip = 1;
    cfg.io = io;
    cfg
}

fn digest(reply: &Reply) -> (String, String, String) {
    match reply {
        Reply::Result { outcome_json, report_json, events_jsonl, phase, .. } => {
            assert_eq!(*phase, JobPhase::Done);
            (outcome_json.clone(), report_json.clone(), events_jsonl.clone())
        }
        other => panic!("expected a Done result, got {other:?}"),
    }
}

/// The straight-run artifacts an undisturbed daemon must reproduce.
fn baseline(workers: u32) -> (String, String, String) {
    let mut clamped = spec(workers);
    clamped.max_evals = TenantQuota::default().max_evals;
    let run = runner::straight(&clamped).unwrap();
    (run.outcome_json, run.report_json, run.events_jsonl)
}

/// Run one uninterrupted lifecycle under a census handle and return the
/// ordered write points it recorded.
fn census(workers: u32) -> Vec<WritePoint> {
    let dir = tempdir(&format!("census-w{workers}"));
    let io = DurableIo::census();
    let daemon = Daemon::start(cfg(&dir, io.clone())).unwrap();
    let client = ServeClient::from_state_dir(&dir).unwrap();
    let job = client.submit(&spec(workers)).unwrap().expect("admitted");
    let reply = client.wait_result(job, Duration::from_secs(60)).unwrap();
    assert_eq!(digest(&reply), baseline(workers), "census run must match the straight run");
    daemon.drain_and_join();
    let _ = std::fs::remove_dir_all(&dir);
    let points = io.write_points();
    assert!(!points.is_empty(), "census recorded nothing");
    points
}

/// Indices of every point at `site`, in lifecycle order.
fn site_indices(points: &[WritePoint], site: &str) -> Vec<u64> {
    points.iter().filter(|p| p.site == site).map(|p| p.index).collect()
}

/// What one faulted lifecycle is expected to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Expect {
    /// `Daemon::start` itself returns the injected error.
    StartFails,
    /// Submission gets a typed `Error` reply; no job dir survives.
    SubmitRefused,
    /// The job is requeued and completes byte-identically.
    Survives,
    /// The job fails typed, terminal, breaker untouched.
    TerminalFailed,
}

/// Replay the lifecycle with one write point failed and check `expect`.
fn run_faulted(tag: &str, workers: u32, index: u64, kind: IoFaultKind, expect: Expect) {
    let dir = tempdir(tag);
    let io = DurableIo::with_plan(IoFaultPlan::new().fail_at(index, kind));
    let started = Daemon::start(cfg(&dir, io.clone()));
    if expect == Expect::StartFails {
        let err = started.err().unwrap_or_else(|| panic!("{tag}: start should fail"));
        assert!(err.to_string().contains("injected"), "{tag}: {err}");
        let _ = std::fs::remove_dir_all(&dir);
        return;
    }
    let daemon = started.unwrap_or_else(|e| panic!("{tag}: start failed: {e}"));
    let client = ServeClient::from_state_dir(&dir).unwrap();

    match expect {
        Expect::StartFails => unreachable!(),
        Expect::SubmitRefused => {
            let reply = client.call(Request::Submit { spec: spec(workers) }).unwrap();
            match reply {
                Reply::Error { message } => {
                    assert!(message.contains("injected"), "{tag}: {message}")
                }
                other => panic!("{tag}: expected a typed Error reply, got {other:?}"),
            }
            // No spec-less orphan for the next incarnation to adopt.
            let orphans = std::fs::read_dir(dir.join("jobs")).unwrap().count();
            assert_eq!(orphans, 0, "{tag}: refused submission left a job dir");
            assert_eq!(daemon.edge_tally().durable_write_failures, 1, "{tag}");
            // The daemon is still healthy: the retried submission lands
            // (the one-shot fault is spent) and runs to completion.
            let job = client.submit(&spec(workers)).unwrap().expect("retry admitted");
            let reply = client.wait_result(job, Duration::from_secs(60)).unwrap();
            assert_eq!(digest(&reply), baseline(workers), "{tag}: retry result");
        }
        Expect::Survives => {
            let job = client.submit(&spec(workers)).unwrap().expect("admitted");
            let reply = client.wait_result(job, Duration::from_secs(60)).unwrap();
            assert_eq!(digest(&reply), baseline(workers), "{tag}: recovered result");
            let edge = daemon.edge_tally();
            assert!(edge.durable_write_failures >= 1, "{tag}: {edge:?}");
            assert!(io.injected_faults() >= 1, "{tag}: fault never fired");
            let tally = daemon.service_tally();
            assert!(tally.reconciles(), "{tag}: {tally:?}");
        }
        Expect::TerminalFailed => {
            let job = client.submit(&spec(workers)).unwrap().expect("admitted");
            let reply = client.wait_result(job, Duration::from_secs(60)).unwrap();
            match reply {
                Reply::Result { phase, outcome_json, .. } => {
                    assert_eq!(phase, JobPhase::Failed, "{tag}");
                    assert!(outcome_json.contains("injected"), "{tag}: {outcome_json}");
                }
                other => panic!("{tag}: expected failed result, got {other:?}"),
            }
            // An environment fault must not trip the model breaker: with
            // breaker_trip=1, the very next submission of the same model
            // is admitted only if the breaker stayed closed.
            let next = client.submit(&spec(workers)).unwrap().expect("breaker stayed closed");
            let reply = client.wait_result(next, Duration::from_secs(60)).unwrap();
            assert_eq!(digest(&reply), baseline(workers), "{tag}: post-fault run");
            let tally = daemon.service_tally();
            assert!(tally.reconciles(), "{tag}: {tally:?}");
        }
    }
    daemon.drain_and_join();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A fault kind valid for the durable op a site performs, plus where in
/// the site's occurrence list the terminal/recoverable boundary lies.
fn scenarios_for(site: &str, indices: &[u64]) -> Vec<(u64, IoFaultKind, Expect)> {
    let first = indices[0];
    let last = *indices.last().unwrap();
    match site {
        "daemon.endpoint" => vec![(first, IoFaultKind::WriteEnospc, Expect::StartFails)],
        "job.spec" => vec![(first, IoFaultKind::WriteEnospc, Expect::SubmitRefused)],
        // Checkpoints and the result record are written with the full
        // atomic discipline; any failure there is recoverable.
        "ckpt.gen" => vec![
            (first, IoFaultKind::SyncFail, Expect::Survives),
            (last, IoFaultKind::RenameFail, Expect::Survives),
        ],
        "ckpt.best" => vec![(first, IoFaultKind::RenameFail, Expect::Survives)],
        "job.result" => vec![(first, IoFaultKind::RenameFail, Expect::Survives)],
        // occurrence 0 is the log file creation (recoverable: the engine
        // has not run), the middle ones are line appends, the last is
        // the final fsync — both of those poison the log terminally.
        "job.events" => {
            assert!(indices.len() >= 3, "expected create+appends+sync, got {indices:?}");
            vec![
                (first, IoFaultKind::WriteEnospc, Expect::Survives),
                (indices[1], IoFaultKind::Torn, Expect::TerminalFailed),
                (last, IoFaultKind::SyncFail, Expect::TerminalFailed),
            ]
        }
        other => panic!("unexpected durable site in census: {other}"),
    }
}

#[test]
fn every_first_write_point_fault_is_survived_or_typed() {
    let workers = 1;
    let points = census(workers);
    let mut sites: Vec<String> = points.iter().map(|p| p.site.clone()).collect();
    sites.dedup();
    sites.sort();
    sites.dedup();
    // The census must see every durable surface of a job's lifetime.
    for required in ["daemon.endpoint", "job.spec", "job.events", "ckpt.gen", "job.result"] {
        assert!(sites.iter().any(|s| s == required), "census missed {required}: {sites:?}");
    }
    for site in &sites {
        let indices = site_indices(&points, site);
        // Lean battery: first occurrence per site (plus the fixed
        // append/sync cases for the event log).
        let scenarios = scenarios_for(site, &indices);
        let lean: Vec<_> =
            if site == "job.events" { scenarios } else { scenarios.into_iter().take(1).collect() };
        for (n, (index, kind, expect)) in lean.into_iter().enumerate() {
            let tag = format!("lean-{}-{n}", site.replace('.', "_"));
            run_faulted(&tag, workers, index, kind, expect);
        }
    }
}

/// Full battery: first AND last occurrence per site, at every supported
/// eval-worker count. Slow; run by `check.sh` with `--ignored`.
#[test]
#[ignore = "multi-minute full battery; exercised by check.sh"]
fn full_battery_first_and_last_write_points_all_worker_counts() {
    for workers in [1u32, 2, 8] {
        let points = census(workers);
        let mut sites: Vec<String> = points.iter().map(|p| p.site.clone()).collect();
        sites.sort();
        sites.dedup();
        for site in &sites {
            let indices = site_indices(&points, site);
            for (n, (index, kind, expect)) in scenarios_for(site, &indices).into_iter().enumerate()
            {
                let tag = format!("full-w{workers}-{}-{n}", site.replace('.', "_"));
                run_faulted(&tag, workers, index, kind, expect);
            }
        }
    }
}

#[test]
fn exhausted_requeues_park_the_job_for_the_next_incarnation() {
    let workers = 1;
    let points = census(workers);
    let ckpt = site_indices(&points, "ckpt.gen");

    // Incarnation one: zero requeue budget, so the first checkpoint
    // fault parks the job Queued-but-not-enqueued instead of retrying.
    let dir = tempdir("park");
    let io = DurableIo::with_plan(IoFaultPlan::new().fail_at(ckpt[0], IoFaultKind::SyncFail));
    let mut one = cfg(&dir, io);
    one.env_requeue_limit = 0;
    let daemon = Daemon::start(one).unwrap();
    let client = ServeClient::from_state_dir(&dir).unwrap();
    let job = client.submit(&spec(workers)).unwrap().expect("admitted");
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        let (phase, detail) = client.status(job).unwrap();
        if phase == JobPhase::Queued && detail.contains("parked after durable fault") {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "job never parked: {phase:?} {detail}");
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(daemon.edge_tally().durable_write_failures, 1);
    daemon.drain_and_join();

    // Incarnation two, healthy disk: the parked job is adopted and
    // finishes byte-identically to an undisturbed run.
    let daemon = Daemon::start(cfg(&dir, DurableIo::real())).unwrap();
    assert_eq!(daemon.service_tally().adopted, 1);
    let client = ServeClient::from_state_dir(&dir).unwrap();
    let reply = client.wait_result(job, Duration::from_secs(60)).unwrap();
    assert_eq!(digest(&reply), baseline(workers));
    daemon.drain_and_join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_failed_cancel_marker_is_a_typed_error_and_cancel_is_retryable() {
    // The cancel marker's write-point index is racy against a running
    // engine's checkpoint stream, so this site is exercised at the
    // JobDir layer: spec is point 0, the marker is point 1.
    let root = tempdir("cancel-marker");
    let plan = IoFaultPlan::new().fail_at(1, IoFaultKind::RenameFail);
    let dir = JobDir::create(&root, 1).unwrap().with_io(DurableIo::with_plan(plan));
    dir.write_spec(&spec(1)).unwrap();
    let err = dir.mark_cancel_requested().unwrap_err();
    assert!(err.to_string().contains("injected rename_fail"), "{err}");
    assert!(!dir.cancel_requested(), "a failed marker must not read as cancelled");
    // The fault is spent; the retried cancel lands durably.
    dir.mark_cancel_requested().unwrap();
    assert!(dir.cancel_requested());
    // The failed rename left no stray tmp behind the battery's back.
    assert_eq!(dir.clean_stray_tmps(), 0);
    let _ = std::fs::remove_dir_all(&root);
}
