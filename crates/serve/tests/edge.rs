//! Hostile-client tests for the service edge: protocol fuzz flood,
//! stalled connections, connection-cap shedding, idempotent
//! resubmission, and transparent client retry.

use std::io::{Read as _, Write as _};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::path::PathBuf;
use std::time::{Duration, Instant};

use nautilus_serve::job::{JobPhase, JobSpec};
use nautilus_serve::proto::{Frame, Reply, Request, MAGIC, MAX_BODY_LEN, VERSION};
use nautilus_serve::quota::Backpressure;
use nautilus_serve::{Daemon, DaemonConfig, ServeClient};

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nautilus-edge-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn spec(seed: u64) -> JobSpec {
    JobSpec {
        tenant: "acme".into(),
        model: "bowl".into(),
        strategy: "baseline".into(),
        seed,
        generations: 6,
        eval_workers: 1,
        max_evals: 0,
        deadline_ms: 0,
        eval_delay_us: 0,
        dedupe_key: String::new(),
    }
}

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// Sixty connections of garbage — random bytes, truncated frames,
/// oversized length prefixes — against a live daemon. Every socket gets
/// a well-formed typed `Error` reply, nothing hangs, and the daemon
/// still runs real jobs afterwards.
#[test]
fn fuzz_flood_gets_typed_replies_and_never_wedges_the_daemon() {
    let dir = tempdir("fuzz");
    let mut cfg = DaemonConfig::new(&dir);
    cfg.conn_read_timeout = Duration::from_millis(500);
    cfg.conn_write_timeout = Duration::from_millis(500);
    let daemon = Daemon::start(cfg).unwrap();
    let addr = daemon.addr();

    let mut rng = 0x5EED_CAFE_u64;
    for round in 0..60u32 {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        stream.set_write_timeout(Some(Duration::from_secs(10))).unwrap();
        let payload: Vec<u8> = match round % 3 {
            0 => {
                // Random garbage: bad magic (or truncated, when short).
                let n = (xorshift(&mut rng) % 256 + 1) as usize;
                (0..n).map(|_| (xorshift(&mut rng) & 0xFF) as u8).collect()
            }
            1 => {
                // A valid Ping frame cut mid-stream: always truncated.
                let full = Frame::Request(Request::Ping).encode();
                let cut = 1 + (xorshift(&mut rng) as usize % (full.len() - 1));
                full[..cut].to_vec()
            }
            _ => {
                // A header whose body_len would drive an OOM if trusted.
                let mut h = Vec::with_capacity(20);
                h.extend_from_slice(MAGIC);
                h.extend_from_slice(&VERSION.to_le_bytes());
                h.extend_from_slice(&(MAX_BODY_LEN + 1).to_le_bytes());
                h
            }
        };
        let _ = stream.write_all(&payload);
        let _ = stream.shutdown(Shutdown::Write);
        let mut buf = Vec::new();
        let _ = stream.read_to_end(&mut buf);
        assert!(!buf.is_empty(), "fuzz round {round}: no reply at all");
        match Frame::decode(&buf) {
            Ok(Frame::Reply(Reply::Error { message })) => {
                assert!(message.contains("protocol error"), "round {round}: {message}");
            }
            other => panic!("fuzz round {round}: expected a typed error, got {other:?}"),
        }
    }

    // The daemon is unharmed: a real job still runs end to end.
    let client = ServeClient::from_state_dir(&dir).unwrap();
    assert_eq!(client.ping().unwrap(), 0);
    let job = client.submit(&spec(1)).unwrap().expect("admitted");
    let reply = client.wait_result(job, Duration::from_secs(60)).unwrap();
    assert!(matches!(reply, Reply::Result { phase: JobPhase::Done, .. }));
    daemon.drain_and_join();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A client that connects and goes silent is bounded by the read
/// deadline and — crucially — does not slow anyone else down while it
/// stalls: the daemon handles each connection independently.
#[test]
fn a_stalled_client_cannot_delay_unrelated_work() {
    let dir = tempdir("stall");
    let mut cfg = DaemonConfig::new(&dir);
    cfg.conn_read_timeout = Duration::from_millis(300);
    let daemon = Daemon::start(cfg).unwrap();

    let mut stalled = TcpStream::connect(daemon.addr()).unwrap();
    stalled.set_read_timeout(Some(Duration::from_secs(10))).unwrap();

    // While the stall is in progress, unrelated traffic proceeds at full
    // speed: a ping round-trips far inside the stalled peer's deadline,
    // and a submit→result cycle completes normally.
    let client = ServeClient::from_state_dir(&dir).unwrap();
    let t0 = Instant::now();
    assert_eq!(client.ping().unwrap(), 0);
    assert!(t0.elapsed() < Duration::from_millis(250), "ping serialized behind a stalled peer");
    let job = client.submit(&spec(2)).unwrap().expect("admitted");
    let reply = client.wait_result(job, Duration::from_secs(60)).unwrap();
    assert!(matches!(reply, Reply::Result { phase: JobPhase::Done, .. }));

    // The stalled connection itself gets a typed deadline reply.
    let mut buf = Vec::new();
    let _ = stalled.read_to_end(&mut buf);
    match Frame::decode(&buf) {
        Ok(Frame::Reply(Reply::Error { message })) => {
            assert!(message.contains("connection deadline exceeded"), "{message}");
        }
        other => panic!("expected a deadline error, got {other:?}"),
    }
    assert!(daemon.edge_tally().conn_stalls >= 1);
    daemon.drain_and_join();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Beyond `max_connections`, new connections are shed on the accept
/// thread with a typed `TooManyConnections` refusal instead of queueing
/// behind stalled handlers; capacity returns once the holders drain.
#[test]
fn connections_over_the_cap_are_shed_with_a_typed_refusal() {
    let dir = tempdir("cap");
    let mut cfg = DaemonConfig::new(&dir);
    cfg.max_connections = 2;
    cfg.conn_read_timeout = Duration::from_secs(2);
    let daemon = Daemon::start(cfg).unwrap();
    let addr = daemon.addr();

    // Two silent holders occupy every slot (until their read deadline).
    let holders: Vec<TcpStream> = (0..2).map(|_| TcpStream::connect(addr).unwrap()).collect();

    // Probe until both holders are counted; then the probe is shed.
    let deadline = Instant::now() + Duration::from_secs(10);
    let shed = loop {
        assert!(Instant::now() < deadline, "no connection was ever shed");
        let mut probe = TcpStream::connect(addr).unwrap();
        probe.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let _ = probe.shutdown(Shutdown::Write);
        let mut buf = Vec::new();
        let _ = probe.read_to_end(&mut buf);
        match Frame::decode(&buf) {
            Ok(Frame::Reply(Reply::Rejected { reason })) => break reason,
            // The probe raced ahead of a holder into a free slot (or got
            // no reply at all); try again.
            _ => std::thread::sleep(Duration::from_millis(10)),
        }
    };
    match shed {
        Backpressure::TooManyConnections { active, limit } => {
            assert_eq!(limit, 2);
            assert!(active >= 2, "shed below the cap: {active}");
        }
        other => panic!("expected too_many_connections, got {other:?}"),
    }
    assert!(daemon.edge_tally().conns_shed >= 1);

    // Capacity comes back once the holders are gone.
    drop(holders);
    let client = ServeClient::from_state_dir(&dir).unwrap().with_timeout(Duration::from_secs(5));
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if client.ping().is_ok() {
            break;
        }
        assert!(Instant::now() < deadline, "capacity never recovered after the flood");
        std::thread::sleep(Duration::from_millis(20));
    }
    daemon.drain_and_join();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A resubmission carrying the same `(tenant, dedupe_key)` answers with
/// the original job id — in the same incarnation and, because the key is
/// persisted inside the job spec, across a daemon restart.
#[test]
fn duplicate_submits_return_the_original_job_id_even_across_restart() {
    let dir = tempdir("dedupe");
    let daemon = Daemon::start(DaemonConfig::new(&dir)).unwrap();
    let client = ServeClient::from_state_dir(&dir).unwrap();

    let mut keyed = spec(3);
    keyed.dedupe_key = "retry-1".into();
    let original = client.submit(&keyed).unwrap().expect("admitted");
    let duplicate = client.submit(&keyed).unwrap().expect("deduped");
    assert_eq!(duplicate, original);
    assert_eq!(daemon.edge_tally().dedupe_hits, 1);
    let reply = client.wait_result(original, Duration::from_secs(60)).unwrap();
    assert!(matches!(reply, Reply::Result { phase: JobPhase::Done, .. }));
    daemon.drain_and_join();

    // Incarnation two recovers the finished job — and its key — from
    // disk, so a late retry still maps to the original id.
    let daemon = Daemon::start(DaemonConfig::new(&dir)).unwrap();
    let client = ServeClient::from_state_dir(&dir).unwrap();
    let late = client.submit(&keyed).unwrap().expect("deduped after restart");
    assert_eq!(late, original);
    assert_eq!(daemon.edge_tally().dedupe_hits, 1);

    // A different key is genuinely new work.
    let mut fresh = keyed.clone();
    fresh.dedupe_key = "retry-2".into();
    let other = client.submit(&fresh).unwrap().expect("admitted");
    assert_ne!(other, original);
    let reply = client.wait_result(other, Duration::from_secs(60)).unwrap();
    assert!(matches!(reply, Reply::Result { phase: JobPhase::Done, .. }));
    daemon.drain_and_join();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Client retry against a flaky endpoint: idempotent requests ride
/// through dropped connections transparently; an unkeyed submit gives
/// up on the first transport fault (it cannot prove the first attempt
/// never landed), while a keyed submit retries safely.
#[test]
fn client_retry_is_transparent_for_idempotent_requests_only() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = std::thread::spawn(move || {
        // 1: dropped before any reply — a retryable transport fault.
        let (s, _) = listener.accept().unwrap();
        drop(s);
        // 2: the ping retry lands and is answered.
        let (mut s, _) = listener.accept().unwrap();
        match Frame::read_from(&mut s).unwrap() {
            Frame::Request(Request::Ping) => {
                Frame::Reply(Reply::Pong { jobs: 7 }).write_to(&mut s).unwrap();
            }
            other => panic!("expected a ping retry, got {other:?}"),
        }
        // 3: dropped again — the unkeyed submit must NOT retry past it.
        let (s, _) = listener.accept().unwrap();
        drop(s);
        // 4: the keyed submit's first attempt, also dropped.
        let (s, _) = listener.accept().unwrap();
        drop(s);
        // 5: the keyed submit's retry.
        let (mut s, _) = listener.accept().unwrap();
        match Frame::read_from(&mut s).unwrap() {
            Frame::Request(Request::Submit { spec }) => {
                assert_eq!(spec.dedupe_key, "idem");
                Frame::Reply(Reply::Submitted { job: 42 }).write_to(&mut s).unwrap();
            }
            other => panic!("expected a submit retry, got {other:?}"),
        }
    });

    let client = ServeClient::new(addr)
        .with_timeout(Duration::from_secs(5))
        .with_retries(3, Duration::from_millis(10));
    assert_eq!(client.ping().unwrap(), 7, "ping did not retry through the drop");
    assert!(client.submit(&spec(4)).is_err(), "unkeyed submit must not retry");
    let mut keyed = spec(4);
    keyed.dedupe_key = "idem".into();
    assert_eq!(client.submit(&keyed).unwrap().unwrap(), 42);
    server.join().unwrap();
}
