//! In-process daemon integration tests: admission, scheduling, typed
//! backpressure, cancel, drain/park/re-adopt, panic containment, and the
//! per-model circuit breaker — all over real localhost TCP.

use std::path::PathBuf;
use std::time::Duration;

use nautilus_serve::job::{JobPhase, JobSpec};
use nautilus_serve::proto::Reply;
use nautilus_serve::quota::{Backpressure, TenantQuota};
use nautilus_serve::{runner, Daemon, DaemonConfig, ServeClient};

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nautilus-serve-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn spec(model: &str, strategy: &str, seed: u64, workers: u32) -> JobSpec {
    JobSpec {
        tenant: "acme".into(),
        model: model.into(),
        strategy: strategy.into(),
        seed,
        generations: 8,
        eval_workers: workers,
        max_evals: 0,
        deadline_ms: 0,
        eval_delay_us: 0,
        dedupe_key: String::new(),
    }
}

fn digest(reply: &Reply) -> (String, String, String) {
    match reply {
        Reply::Result { outcome_json, report_json, events_jsonl, phase, .. } => {
            assert_eq!(*phase, JobPhase::Done);
            (outcome_json.clone(), report_json.clone(), events_jsonl.clone())
        }
        other => panic!("expected a Done result, got {other:?}"),
    }
}

#[test]
fn daemon_results_match_straight_runs_at_every_worker_count() {
    let dir = tempdir("identity");
    let daemon = Daemon::start(DaemonConfig::new(&dir)).unwrap();
    let client = ServeClient::from_state_dir(&dir).unwrap();
    assert_eq!(client.addr(), daemon.addr());

    // Straight runs use the spec's own budget-clamp semantics: the daemon
    // clamps max_evals==0 to the tenant ceiling before persisting, so the
    // comparator must run with the same clamped budget.
    let quota = TenantQuota::default();
    for workers in [1u32, 2, 8] {
        for strategy in ["baseline", "guided-weak", "guided-strong"] {
            let s = spec("bowl", strategy, 42 + u64::from(workers), workers);
            let job = client.submit(&s).unwrap().expect("admitted");
            let reply = client.wait_result(job, Duration::from_secs(60)).unwrap();
            let mut clamped = s.clone();
            clamped.max_evals = quota.max_evals;
            let straight = runner::straight(&clamped).unwrap();
            let (outcome, report, events) = digest(&reply);
            assert_eq!(outcome, straight.outcome_json, "outcome w={workers} {strategy}");
            assert_eq!(report, straight.report_json, "report w={workers} {strategy}");
            assert_eq!(events, straight.events_jsonl, "events w={workers} {strategy}");
        }
    }

    let tally = daemon.service_tally();
    assert!(tally.reconciles(), "{tally:?}");
    assert_eq!(tally.finished, 9);
    daemon.drain_and_join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn every_quota_violation_gets_its_own_typed_refusal() {
    let dir = tempdir("quota");
    let mut cfg = DaemonConfig::new(&dir);
    cfg.quota = TenantQuota { max_active: 1, max_evals: 10_000, max_deadline_ms: 60_000 };
    let daemon = Daemon::start(cfg).unwrap();
    let client = ServeClient::from_state_dir(&dir).unwrap();

    let mut s = spec("bowl", "baseline", 1, 1);
    s.model = "no-such-model".into();
    assert!(matches!(client.submit(&s).unwrap().unwrap_err(), Backpressure::UnknownModel { .. }));

    let mut s = spec("bowl", "baseline", 1, 1);
    s.strategy = "psychic".into();
    assert!(matches!(
        client.submit(&s).unwrap().unwrap_err(),
        Backpressure::UnknownStrategy { .. }
    ));

    let mut s = spec("bowl", "baseline", 1, 1);
    s.max_evals = 10_001;
    assert!(matches!(
        client.submit(&s).unwrap().unwrap_err(),
        Backpressure::EvalBudgetTooLarge { requested: 10_001, limit: 10_000 }
    ));

    let mut s = spec("bowl", "baseline", 1, 1);
    s.deadline_ms = 120_000;
    assert!(matches!(
        client.submit(&s).unwrap().unwrap_err(),
        Backpressure::DeadlineTooLong { requested_ms: 120_000, limit_ms: 60_000 }
    ));

    // Occupy the tenant's single active slot with a slow job, then watch
    // the next submission bounce with queue_full.
    let mut slow = spec("bowl", "baseline", 2, 1);
    slow.generations = 50;
    slow.eval_delay_us = 2_000;
    let held = client.submit(&slow).unwrap().expect("admitted");
    assert!(matches!(
        client.submit(&spec("bowl", "baseline", 3, 1)).unwrap().unwrap_err(),
        Backpressure::QueueFull { queued: 1, limit: 1 }
    ));
    client.cancel(held).unwrap();

    // Draining daemons refuse everything, also typed.
    assert!(client.drain().is_ok());
    assert!(matches!(
        client.submit(&spec("bowl", "baseline", 4, 1)).unwrap().unwrap_err(),
        Backpressure::Draining
    ));

    let tally = daemon.service_tally();
    assert!(tally.reconciles(), "{tally:?}");
    assert_eq!(tally.rejected, 6);
    daemon.drain_and_join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cancelling_a_running_job_parks_it_as_cancelled() {
    let dir = tempdir("cancel");
    let daemon = Daemon::start(DaemonConfig::new(&dir)).unwrap();
    let client = ServeClient::from_state_dir(&dir).unwrap();

    let mut slow = spec("bowl", "guided-strong", 5, 1);
    slow.generations = 200;
    slow.eval_delay_us = 1_000;
    let job = client.submit(&slow).unwrap().expect("admitted");

    // Wait until a slot claims it, then cancel mid-run.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        let (phase, _) = client.status(job).unwrap();
        if phase == JobPhase::Running {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "job never started");
        std::thread::sleep(Duration::from_millis(5));
    }
    client.cancel(job).unwrap();

    let reply = client.wait_result(job, Duration::from_secs(30)).unwrap();
    match reply {
        Reply::Result { phase, .. } => assert_eq!(phase, JobPhase::Cancelled),
        other => panic!("expected cancelled result, got {other:?}"),
    }
    let (phase, _) = client.status(job).unwrap();
    assert_eq!(phase, JobPhase::Cancelled);
    daemon.drain_and_join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn drained_jobs_are_adopted_and_finish_byte_identically() {
    let dir = tempdir("drain-park");
    let quota = TenantQuota::default();

    // Incarnation one: accept a slow-ish job, drain while it runs.
    let daemon = Daemon::start(DaemonConfig::new(&dir)).unwrap();
    let client = ServeClient::from_state_dir(&dir).unwrap();
    let mut s = spec("ridge", "guided-strong", 77, 2);
    s.generations = 12;
    s.eval_delay_us = 500;
    let job = client.submit(&s).unwrap().expect("admitted");
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        let (phase, _) = client.status(job).unwrap();
        if phase == JobPhase::Running {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "job never started");
        std::thread::sleep(Duration::from_millis(2));
    }
    daemon.drain_and_join();

    // Incarnation two: the job is re-adopted and runs to completion.
    let daemon = Daemon::start(DaemonConfig::new(&dir)).unwrap();
    let tally = daemon.service_tally();
    assert_eq!(tally.adopted, 1, "{tally:?}");
    let client = ServeClient::from_state_dir(&dir).unwrap();
    let reply = client.wait_result(job, Duration::from_secs(60)).unwrap();

    let mut clamped = s;
    clamped.max_evals = quota.max_evals;
    let straight = runner::straight(&clamped).unwrap();
    let (outcome, report, events) = digest(&reply);
    assert_eq!(outcome, straight.outcome_json);
    assert_eq!(report, straight.report_json);
    assert_eq!(events, straight.events_jsonl);
    daemon.drain_and_join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn panics_are_contained_and_trip_the_breaker() {
    let dir = tempdir("breaker");
    let mut cfg = DaemonConfig::new(&dir);
    cfg.slots = 1;
    cfg.breaker_trip = 2;
    cfg.breaker_cooldown = 2;
    let daemon = Daemon::start(cfg).unwrap();
    let client = ServeClient::from_state_dir(&dir).unwrap();

    // Two consecutive panicking runs: both contained (daemon keeps
    // serving), both reported as Failed, breaker trips on the second.
    for seed in [1u64, 2] {
        let job = client.submit(&spec("poison", "baseline", seed, 1)).unwrap().expect("admitted");
        let reply = client.wait_result(job, Duration::from_secs(30)).unwrap();
        match reply {
            Reply::Result { phase, outcome_json, .. } => {
                assert_eq!(phase, JobPhase::Failed);
                assert!(outcome_json.contains("error"), "{outcome_json}");
            }
            other => panic!("expected failed result, got {other:?}"),
        }
    }

    // Open breaker sheds with a typed reply (shed #1 of cooldown 2)...
    assert!(matches!(
        client.submit(&spec("poison", "baseline", 3, 1)).unwrap().unwrap_err(),
        Backpressure::BreakerOpen { .. }
    ));
    // ...then half-opens: the next submission is admitted as the probe.
    let probe = client.submit(&spec("poison", "baseline", 4, 1)).unwrap().expect("probe admitted");
    // While the probe is outstanding (or after it fails), more poison
    // submissions keep shedding.
    let reply = client.wait_result(probe, Duration::from_secs(30)).unwrap();
    assert!(matches!(reply, Reply::Result { phase: JobPhase::Failed, .. }));
    assert!(matches!(
        client.submit(&spec("poison", "baseline", 5, 1)).unwrap().unwrap_err(),
        Backpressure::BreakerOpen { .. }
    ));

    // Panic containment means other models still run fine on the same slot.
    let ok = client.submit(&spec("bowl", "baseline", 6, 1)).unwrap().expect("admitted");
    let reply = client.wait_result(ok, Duration::from_secs(60)).unwrap();
    assert!(matches!(reply, Reply::Result { phase: JobPhase::Done, .. }));

    let tally = daemon.service_tally();
    assert!(tally.reconciles(), "{tally:?}");
    assert_eq!(tally.rejected, 2);
    daemon.drain_and_join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn protocol_garbage_gets_a_typed_error_reply() {
    use std::io::{Read as _, Write as _};
    let dir = tempdir("garbage");
    let daemon = Daemon::start(DaemonConfig::new(&dir)).unwrap();

    let mut stream = std::net::TcpStream::connect(daemon.addr()).unwrap();
    stream.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    let mut buf = Vec::new();
    let _ = stream.read_to_end(&mut buf);
    // The daemon answers with a well-formed Error reply frame.
    match nautilus_serve::proto::Frame::decode(&buf).unwrap() {
        nautilus_serve::proto::Frame::Reply(Reply::Error { message }) => {
            assert!(message.contains("protocol error"), "{message}");
        }
        other => panic!("expected an error reply, got {other:?}"),
    }

    // And it is still alive afterwards.
    let client = ServeClient::from_state_dir(&dir).unwrap();
    assert_eq!(client.ping().unwrap(), 0);
    daemon.drain_and_join();
    let _ = std::fs::remove_dir_all(&dir);
}
