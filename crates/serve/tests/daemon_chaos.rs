//! SIGKILL chaos battery for the daemon: submit searches, kill the
//! daemon process mid-run (twice), restart it, and require the recovered
//! results — outcome, normalized report, normalized event stream — to be
//! byte-identical to uninterrupted in-process runs of the same specs, at
//! eval worker counts 1, 2, and 8.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use nautilus_serve::job::{JobPhase, JobSpec};
use nautilus_serve::proto::Reply;
use nautilus_serve::quota::TenantQuota;
use nautilus_serve::{runner, ServeClient};

fn tempdir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("nautilus-serve-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

// Every caller kills the returned child (SIGKILL or SIGTERM) and reaps
// it with `wait`; the only unreaped path is a failing assertion, where
// the test process is exiting anyway.
#[allow(clippy::zombie_processes)]
fn spawn_daemon(dir: &Path) -> (Child, ServeClient) {
    let child = Command::new(env!("CARGO_BIN_EXE_nautilus-serve"))
        .arg("--dir")
        .arg(dir)
        .arg("--slots")
        .arg("2")
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn nautilus-serve");
    // The previous incarnation's endpoint file may still be on disk; keep
    // re-reading and pinging until the new incarnation answers.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Ok(client) = ServeClient::from_state_dir(dir) {
            if client.ping().is_ok() {
                return (child, client);
            }
        }
        assert!(Instant::now() < deadline, "daemon never came up");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Counts durable checkpoint records across every job under `dir`.
fn checkpoints_on_disk(dir: &Path) -> usize {
    let Ok(jobs) = std::fs::read_dir(dir.join("jobs")) else { return 0 };
    jobs.flatten()
        .filter_map(|job| std::fs::read_dir(job.path().join("ckpt")).ok())
        .flat_map(|entries| entries.flatten())
        .filter(|e| e.path().extension().is_some_and(|x| x == "nckpt"))
        .count()
}

/// Waits until the daemon has made durable progress worth losing: at
/// least `want` checkpoint records on disk.
fn wait_for_checkpoints(dir: &Path, want: usize) {
    let deadline = Instant::now() + Duration::from_secs(60);
    while checkpoints_on_disk(dir) < want {
        assert!(Instant::now() < deadline, "no durable progress to destroy");
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn sigkill(mut child: Child) {
    child.kill().expect("SIGKILL daemon");
    let _ = child.wait();
}

#[test]
fn killing_the_daemon_twice_mid_run_changes_nothing() {
    let dir = tempdir("battery");
    let quota = TenantQuota::default();

    // One search per eval-worker count the acceptance gate cares about.
    // Slowed evals keep each run alive long enough to die twice.
    let specs: Vec<JobSpec> =
        [(1u32, "bowl", "guided-strong"), (2, "ridge", "guided-strong"), (8, "bowl", "baseline")]
            .into_iter()
            .map(|(workers, model, strategy)| JobSpec {
                tenant: "chaos".into(),
                model: model.into(),
                strategy: strategy.into(),
                seed: 9000 + u64::from(workers),
                generations: 10,
                eval_workers: workers,
                max_evals: 0,
                deadline_ms: 0,
                eval_delay_us: 700,
                dedupe_key: String::new(),
            })
            .collect();

    let (child, client) = spawn_daemon(&dir);
    let jobs: Vec<u64> =
        specs.iter().map(|s| client.submit(s).unwrap().expect("admitted")).collect();

    // First kill: after the first durable checkpoints appear.
    wait_for_checkpoints(&dir, 2);
    sigkill(child);

    // Second incarnation re-adopts; kill it again once it has progressed
    // further (more checkpoint records than we killed the first one at).
    let before = checkpoints_on_disk(&dir);
    let (child, _client) = spawn_daemon(&dir);
    wait_for_checkpoints(&dir, before + 2);
    sigkill(child);

    // Third incarnation runs everything to completion.
    let (child, client) = spawn_daemon(&dir);
    for (spec, job) in specs.iter().zip(&jobs) {
        let reply = client.wait_result(*job, Duration::from_secs(120)).unwrap();
        let Reply::Result { phase, outcome_json, report_json, events_jsonl, .. } = reply else {
            panic!("expected a result reply");
        };
        assert_eq!(phase, JobPhase::Done, "job {job} did not complete");

        let mut clamped = spec.clone();
        clamped.max_evals = quota.max_evals;
        let straight = runner::straight(&clamped).unwrap();
        let w = spec.eval_workers;
        assert_eq!(outcome_json, straight.outcome_json, "outcome diverged at workers={w}");
        assert_eq!(report_json, straight.report_json, "report diverged at workers={w}");
        assert_eq!(events_jsonl, straight.events_jsonl, "events diverged at workers={w}");
    }

    // Graceful goodbye for the survivor.
    let _ = client.drain();
    sigkill(child);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sigterm_drains_and_the_next_incarnation_finishes_the_job() {
    let dir = tempdir("sigterm");
    let quota = TenantQuota::default();
    let spec = JobSpec {
        tenant: "chaos".into(),
        model: "ridge".into(),
        strategy: "guided-weak".into(),
        seed: 31337,
        generations: 10,
        eval_workers: 2,
        max_evals: 0,
        deadline_ms: 0,
        eval_delay_us: 700,
        dedupe_key: String::new(),
    };

    let (child, client) = spawn_daemon(&dir);
    let job = client.submit(&spec).unwrap().expect("admitted");
    wait_for_checkpoints(&dir, 1);

    // SIGTERM: the daemon parks the run at a generation boundary with a
    // final checkpoint and exits cleanly on its own.
    unsafe {
        extern "C" {
            fn kill(pid: i32, sig: i32) -> i32;
        }
        assert_eq!(kill(child.id() as i32, 15), 0);
    }
    let mut child = child;
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if child.try_wait().expect("wait daemon").is_some() {
            break;
        }
        assert!(Instant::now() < deadline, "daemon ignored SIGTERM");
        std::thread::sleep(Duration::from_millis(10));
    }
    // A graceful exit removes the endpoint file; a crash would leave it.
    assert!(!dir.join("endpoint").exists(), "drain did not clean up the endpoint");

    let (child, client) = spawn_daemon(&dir);
    let reply = client.wait_result(job, Duration::from_secs(120)).unwrap();
    let Reply::Result { phase, outcome_json, report_json, events_jsonl, .. } = reply else {
        panic!("expected a result reply");
    };
    assert_eq!(phase, JobPhase::Done);

    let mut clamped = spec;
    clamped.max_evals = quota.max_evals;
    let straight = runner::straight(&clamped).unwrap();
    assert_eq!(outcome_json, straight.outcome_json);
    assert_eq!(report_json, straight.report_json);
    assert_eq!(events_jsonl, straight.events_jsonl);

    let _ = client.drain();
    sigkill(child);
    let _ = std::fs::remove_dir_all(&dir);
}
