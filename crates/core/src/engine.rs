//! The Nautilus search engine: baseline or hint-guided GA over a cost model.

use std::path::{Path, PathBuf};

use nautilus_ga::{
    CheckpointStore, Direction, DurableIo, FitnessFn, GaEngine, GaError, GaSettings, Genome,
    RankRoulette, RetryPolicy, RunBudget, SearchState, SupervisePolicy, Supervisor,
};
use nautilus_obs::{
    BatchEventBuffer, Fanout, Phase, ReportBuilder, RunReport, SearchObserver, Tracer, WireReader,
    WireWriter,
};
use nautilus_proc::{StashModel, SubprocessConfig, SubprocessEvaluator};
use nautilus_synth::{CostModel, FaultPlan, FaultyEvaluator, JobStats, SynthJobRunner};

use crate::error::{NautilusError, Result};
use crate::guided::{GuidedCrossover, GuidedMutation};
use crate::hint::{Confidence, HintBook, HintSet};
use crate::query::Query;
use crate::trace::{SearchOutcome, TracePoint};

/// Fitness adapter: query objective (with constraints) through a caching
/// synthesis-job runner.
struct QueryOverRunner<'r, 'm> {
    runner: &'r SynthJobRunner<'m>,
    query: &'r Query,
}

impl FitnessFn for QueryOverRunner<'_, '_> {
    fn direction(&self) -> Direction {
        self.query.direction()
    }

    fn fitness(&self, genome: &Genome) -> Option<f64> {
        let metrics = self.runner.evaluate(genome)?;
        self.query.objective(&metrics)
    }
}

/// The Nautilus design-space-exploration engine over one IP generator.
///
/// Defaults follow the paper's methodology (population 10, mutation rate
/// 0.1, 80 generations). A run is *baseline* (oblivious GA) or *guided* by
/// an IP author [`HintSet`].
///
/// ```no_run
/// use nautilus::{Nautilus, Query, HintSet, Confidence};
/// use nautilus_synth::{CostModel, MetricExpr};
/// # fn demo(model: &dyn CostModel, hints: &HintSet) -> Result<(), nautilus::NautilusError> {
/// let fmax = MetricExpr::metric(model.catalog().require("fmax")?);
/// let query = Query::maximize("fmax", fmax);
///
/// let engine = Nautilus::new(model);
/// let baseline = engine.run_baseline(&query, 1)?;
/// let guided = engine.run_guided(&query, hints, Some(Confidence::STRONG), 1)?;
/// assert!(guided.total_evals() > 0 && baseline.total_evals() > 0);
/// # Ok(()) }
/// ```
pub struct Nautilus<'m> {
    model: &'m dyn CostModel,
    settings: GaSettings,
    mutation_rate: f64,
    guided_crossover: bool,
    observer: &'m dyn SearchObserver,
    retry: RetryPolicy,
    fault_plan: Option<FaultPlan>,
    subprocess: Option<SubprocessConfig>,
    supervision: Option<SupervisePolicy>,
    budget: RunBudget,
    checkpoint_dir: Option<PathBuf>,
    checkpoint_keep_last: Option<usize>,
    checkpoint_io: DurableIo,
    tracer: Option<&'m Tracer>,
}

impl std::fmt::Debug for Nautilus<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Nautilus")
            .field("model", &self.model.name())
            .field("settings", &self.settings)
            .field("mutation_rate", &self.mutation_rate)
            .field("guided_crossover", &self.guided_crossover)
            .field("observer_enabled", &self.observer.enabled())
            .field("retry", &self.retry)
            .field("fault_plan", &self.fault_plan)
            .field("subprocess", &self.subprocess)
            .field("supervision", &self.supervision)
            .field("budget", &self.budget)
            .field("checkpoint_dir", &self.checkpoint_dir)
            .field("checkpoint_keep_last", &self.checkpoint_keep_last)
            .field("checkpoint_io_instrumented", &self.checkpoint_io.is_instrumented())
            .field("traced", &self.tracer.is_some())
            .finish()
    }
}

impl<'m> Nautilus<'m> {
    /// Creates an engine over `model` with the paper's default settings.
    #[must_use]
    pub fn new(model: &'m dyn CostModel) -> Self {
        // The paper's PyEvolve baseline uses weak roulette selection with a
        // single elite; stronger selection would make the oblivious GA
        // unrealistically greedy and mask the value of guidance.
        let settings = GaSettings { elitism: 1, ..GaSettings::default() };
        Nautilus {
            model,
            settings,
            mutation_rate: 0.1,
            guided_crossover: false,
            observer: nautilus_obs::noop(),
            retry: RetryPolicy::default(),
            fault_plan: None,
            subprocess: None,
            supervision: None,
            budget: RunBudget::new(),
            checkpoint_dir: None,
            checkpoint_keep_last: None,
            checkpoint_io: DurableIo::real(),
            tracer: None,
        }
    }

    /// Routes the telemetry of every subsequent run to `observer`: GA
    /// engine events, guided-operator hint events, and the synthesis-job
    /// runner's per-lookup events all arrive on the same stream.
    #[must_use]
    pub fn with_observer(mut self, observer: &'m dyn SearchObserver) -> Self {
        self.observer = observer;
        self
    }

    /// Also installs the importance-aware [`GuidedCrossover`] operator on
    /// guided runs (an extension beyond the paper's mutation-only
    /// guidance; see the ablation experiments).
    #[must_use]
    pub fn with_guided_crossover(mut self, enabled: bool) -> Self {
        self.guided_crossover = enabled;
        self
    }

    /// Replaces the GA scalar settings.
    #[must_use]
    pub fn with_settings(mut self, settings: GaSettings) -> Self {
        self.settings = settings;
        self
    }

    /// Overrides the per-gene mutation rate (default 0.1).
    #[must_use]
    pub fn with_mutation_rate(mut self, rate: f64) -> Self {
        self.mutation_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Sets the number of worker threads for per-generation batch
    /// evaluation (default 1 = serial; 0 = one per available core).
    ///
    /// Batched evaluation is an implementation detail: runs are
    /// bit-for-bit identical at every worker count.
    #[must_use]
    pub fn with_eval_workers(mut self, workers: usize) -> Self {
        self.settings.eval_workers = workers;
        self
    }

    /// Replaces the retry policy used when evaluations can fail (default:
    /// [`RetryPolicy::default`], three attempts with exponential backoff).
    ///
    /// The policy only takes effect on runs with a fallible evaluation
    /// path — today that means a fault plan installed with
    /// [`Nautilus::with_fault_plan`]; real flaky backends plug in the same
    /// way. An invalid policy is rejected when the run starts.
    #[must_use]
    pub fn with_retry_policy(mut self, policy: RetryPolicy) -> Self {
        self.retry = policy;
        self
    }

    /// Injects deterministic evaluation faults per `plan` on every
    /// subsequent run (chaos testing; see `nautilus_synth::FaultPlan`).
    ///
    /// Failed attempts are retried per the engine's [`RetryPolicy`];
    /// genomes whose retries exhaust are quarantined with infinitely bad
    /// fitness and the search continues. Because the plan is keyed off
    /// genome content alone, runs stay bit-for-bit deterministic at every
    /// `eval_workers` setting.
    #[must_use]
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Evaluates every design through an external tool process per
    /// `config` on subsequent runs (see [`nautilus_proc::SubprocessEvaluator`]):
    /// a pool of warm children speaking the `NAUTPROC` framing over
    /// stdin/stdout, with kill-on-timeout, respawn-with-backoff, and the
    /// engine's full retry/quarantine taxonomy mapped over the process
    /// boundary.
    ///
    /// Determinism is preserved: a clean run through a faithful tool
    /// produces the byte-identical outcome, `RunReport`, and logical
    /// event stream of the same search run in-process, at any
    /// [`Nautilus::with_eval_workers`] setting. Child crashes, hangs and
    /// garbage surface as [`EvalFailure`](nautilus_ga::EvalFailure)s
    /// exactly like a [`Nautilus::with_fault_plan`] run — and for that
    /// reason the two are mutually exclusive: combining them is rejected
    /// at run start (drive chaos from the tool side instead, e.g.
    /// `mock-synth --plan-seed`).
    #[must_use]
    pub fn with_subprocess_evaluator(mut self, config: SubprocessConfig) -> Self {
        self.subprocess = Some(config);
        self
    }

    /// Supervises every subsequent evaluation with a watchdog deadline,
    /// straggler hedging, and a circuit breaker per `policy` (see
    /// [`nautilus_ga::SupervisePolicy`]). The outcome's
    /// [`SearchOutcome::health`](crate::SearchOutcome) counters account for
    /// every intervention, and the breaker's state rides checkpoints so a
    /// resumed run continues in the same health state.
    ///
    /// Like [`Nautilus::with_retry_policy`], supervision takes effect on
    /// runs with a supervisable evaluation path — today that means a fault
    /// plan installed with [`Nautilus::with_fault_plan`] (whose injected
    /// hangs only a supervised run survives); real slow or hanging backends
    /// plug in the same way. An invalid policy is rejected at run start.
    #[must_use]
    pub fn with_supervision(mut self, policy: SupervisePolicy) -> Self {
        self.supervision = Some(policy);
        self
    }

    /// Caps every subsequent run with `budget` (generations, distinct
    /// evaluations, wall-clock deadline, cooperative cancel flag).
    ///
    /// A budgeted run stops cleanly at the next generation boundary: the
    /// outcome's trace covers only the generations actually scored and
    /// [`SearchOutcome::stop`](crate::SearchOutcome) records why. With
    /// checkpointing enabled the final state is durably on disk before the
    /// run returns, so [`Nautilus::resume_from`] can pick it up later.
    #[must_use]
    pub fn with_budget(mut self, budget: RunBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Writes a durable, checksummed checkpoint of the full search state
    /// into `dir` at every generation boundary of subsequent runs.
    ///
    /// Checkpoints make runs crash-safe: after a `SIGKILL`, power loss, or
    /// budget stop, [`Nautilus::resume_from`] continues the search and
    /// produces bit-for-bit the outcome of an uninterrupted run.
    #[must_use]
    pub fn with_checkpoints(mut self, dir: impl Into<PathBuf>) -> Self {
        self.checkpoint_dir = Some(dir.into());
        self
    }

    /// Records per-phase span timelines of every subsequent run into
    /// `tracer` (see [`nautilus_obs::Tracer`]): GA phases on the merge
    /// thread, per-worker evaluation spans, and the synthesis cache's
    /// shard-lock wait totals folded in as an aggregate.
    ///
    /// Tracing is determinism-safe: span buffers flush only at generation
    /// boundaries and never touch the search RNG or event stream, so
    /// outcomes are bit-for-bit identical with tracing on or off.
    #[must_use]
    pub fn with_tracer(mut self, tracer: &'m Tracer) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// Overrides checkpoint retention: keep the newest `keep` generation
    /// checkpoints (minimum 1) plus the pinned best-so-far record. The
    /// store's default is 3.
    #[must_use]
    pub fn with_checkpoint_keep_last(mut self, keep: usize) -> Self {
        self.checkpoint_keep_last = Some(keep);
        self
    }

    /// Routes checkpoint writes through `io`, the deterministic
    /// fault-injection / census handle of [`nautilus_ga::durable`]. The
    /// default is the pass-through real-filesystem handle; a hostile-
    /// environment harness arms it with an [`nautilus_ga::IoFaultPlan`]
    /// to fail chosen write points and prove recovery stays byte-exact.
    #[must_use]
    pub fn with_checkpoint_io(mut self, io: DurableIo) -> Self {
        self.checkpoint_io = io;
        self
    }

    /// The cost model being searched.
    #[must_use]
    pub fn model(&self) -> &'m dyn CostModel {
        self.model
    }

    /// The engine's retry policy.
    #[must_use]
    pub fn retry_policy(&self) -> &RetryPolicy {
        &self.retry
    }

    /// The engine's GA settings.
    #[must_use]
    pub fn settings(&self) -> &GaSettings {
        &self.settings
    }

    /// Runs the oblivious baseline GA (paper Section 2).
    ///
    /// # Errors
    ///
    /// Propagates GA configuration and feasibility errors.
    pub fn run_baseline(&self, query: &Query, seed: u64) -> Result<SearchOutcome> {
        self.run_inner(query, None, seed, "baseline")
    }

    /// Runs the guided GA with `hints` (paper Section 3).
    ///
    /// `confidence` overrides the hint set's own confidence — this is how
    /// the paper's "weakly guided" and "strongly guided" variants are
    /// produced from a single hint set (its footnote 2).
    ///
    /// # Errors
    ///
    /// Returns hint-validation errors and propagates GA errors.
    pub fn run_guided(
        &self,
        query: &Query,
        hints: &HintSet,
        confidence: Option<Confidence>,
        seed: u64,
    ) -> Result<SearchOutcome> {
        self.run_inner(query, Some((hints, confidence)), seed, guided_label(confidence))
    }

    /// [`Nautilus::run_baseline`], additionally aggregating the run's
    /// telemetry into a [`RunReport`].
    ///
    /// The report captures what the plain outcome cannot: per-generation
    /// mutation/hint dynamics, cache behaviour over time, and span timings.
    /// Any observer installed with [`Nautilus::with_observer`] still
    /// receives the event stream.
    ///
    /// # Errors
    ///
    /// As [`Nautilus::run_baseline`].
    pub fn run_baseline_reported(
        &self,
        query: &Query,
        seed: u64,
    ) -> Result<(SearchOutcome, RunReport)> {
        let report = ReportBuilder::new();
        let fan = Fanout::pair(self.observer, &report);
        let outcome = self.drive(query, None, seed, "baseline", &fan, None, Some(&report))?;
        Ok((outcome, report.finish()))
    }

    /// [`Nautilus::run_guided`], additionally aggregating the run's
    /// telemetry into a [`RunReport`].
    ///
    /// # Errors
    ///
    /// As [`Nautilus::run_guided`].
    pub fn run_guided_reported(
        &self,
        query: &Query,
        hints: &HintSet,
        confidence: Option<Confidence>,
        seed: u64,
    ) -> Result<(SearchOutcome, RunReport)> {
        let report = ReportBuilder::new();
        let fan = Fanout::pair(self.observer, &report);
        let outcome = self.drive(
            query,
            Some((hints, confidence)),
            seed,
            guided_label(confidence),
            &fan,
            None,
            Some(&report),
        )?;
        Ok((outcome, report.finish()))
    }

    /// Runs with whatever the IP's packaged [`HintBook`] offers for this
    /// query, looked up by the query's name.
    ///
    /// This is the paper's intended deployment: "these hints are
    /// calibrated by the IP author during the IP development phase and are
    /// packaged and provided along with Nautilus as part of the IP ... if
    /// it lacks sufficient hint information, Nautilus will fall back to
    /// using default values or employ the baseline GA." A missing or empty
    /// hint set therefore degrades to [`Nautilus::run_baseline`].
    ///
    /// # Errors
    ///
    /// Propagates hint-resolution and GA errors.
    pub fn run_with_book(
        &self,
        query: &Query,
        book: &HintBook,
        confidence: Option<Confidence>,
        seed: u64,
    ) -> Result<SearchOutcome> {
        match book.get(query.name()) {
            Some(hints) if !hints.is_empty() => self.run_guided(query, hints, confidence, seed),
            _ => self.run_baseline(query, seed),
        }
    }

    /// Resumes an interrupted run from the newest intact checkpoint in
    /// `dir`, continuing to completion (or to the engine's budget).
    ///
    /// The engine must be configured like the original run: same cost
    /// model, settings (except [`Nautilus::with_eval_workers`], which
    /// never affects results), query, and — for guided runs — the same
    /// hints and confidence, passed as `hints`. The strategy label stored
    /// in the checkpoint is validated against that configuration, and the
    /// resumed search then replays bit-for-bit what the uninterrupted run
    /// would have produced.
    ///
    /// Corrupt or truncated checkpoint files are never silently accepted:
    /// recovery falls back to the newest file whose checksum and structure
    /// validate, reporting each rejected file to the observer as a
    /// `checkpoint_corrupt_skipped` event.
    ///
    /// # Errors
    ///
    /// Returns a checkpoint error when `dir` holds no intact checkpoint or
    /// the checkpointed run is incompatible with this configuration, plus
    /// anything [`Nautilus::run_baseline`] can return.
    pub fn resume_from(
        &self,
        query: &Query,
        hints: Option<(&HintSet, Option<Confidence>)>,
        dir: impl AsRef<Path>,
    ) -> Result<SearchOutcome> {
        let dir = dir.as_ref();
        let store = CheckpointStore::create(dir).map_err(GaError::from)?;
        let recovery = store.recover_observed(self.observer).map_err(GaError::from)?;
        let state = recovery.state.ok_or_else(|| no_checkpoint(dir))?;
        self.check_resume_label(&state, hints.map(|(_, c)| c))?;
        let label = state.run_label.clone();
        self.drive(query, hints, state.seed, &label, self.observer, Some((state, dir)), None)
    }

    /// [`Nautilus::resume_from`], additionally producing the run's
    /// [`RunReport`] — continued from the report snapshot embedded in the
    /// checkpoint, so the finished report covers the *whole* search, not
    /// just the generations after the restart.
    ///
    /// Only runs started through a `_reported` entry point embed report
    /// snapshots; resuming a plain run's checkpoint yields a report that
    /// starts at the restored generation.
    ///
    /// # Errors
    ///
    /// As [`Nautilus::resume_from`].
    pub fn resume_from_reported(
        &self,
        query: &Query,
        hints: Option<(&HintSet, Option<Confidence>)>,
        dir: impl AsRef<Path>,
    ) -> Result<(SearchOutcome, RunReport)> {
        let dir = dir.as_ref();
        let store = CheckpointStore::create(dir).map_err(GaError::from)?;
        let recovery = store.recover().map_err(GaError::from)?;
        let Some(state) = recovery.state.as_ref() else {
            return Err(no_checkpoint(dir));
        };
        self.check_resume_label(state, hints.map(|(_, c)| c))?;
        let report = match state.aux_blob(AUX_REPORT) {
            Some(blob) => ReportBuilder::restore_bytes(blob).map_err(|e| {
                GaError::Checkpoint(format!("checkpoint {AUX_REPORT} blob rejected: {e}"))
            })?,
            None => ReportBuilder::new(),
        };
        let fan = Fanout::pair(self.observer, &report);
        recovery.replay(&fan);
        let state = recovery.state.expect("checked above");
        let label = state.run_label.clone();
        let outcome =
            self.drive(query, hints, state.seed, &label, &fan, Some((state, dir)), Some(&report))?;
        Ok((outcome, report.finish()))
    }

    /// True when `dir` exists and holds at least one intact checkpoint —
    /// i.e. [`Nautilus::resume_from`] on that directory would restore
    /// state rather than fail.
    ///
    /// Corrupt or truncated files never count: the probe runs the same
    /// validation as recovery, so a directory full of damaged records
    /// answers `false`. A daemon re-adopting orphaned runs uses this to
    /// decide between resuming and restarting from scratch without
    /// consuming the checkpoint.
    #[must_use]
    pub fn has_resumable_checkpoint(dir: impl AsRef<Path>) -> bool {
        CheckpointStore::create(dir.as_ref())
            .ok()
            .and_then(|store| store.recover().ok())
            .is_some_and(|recovery| recovery.state.is_some())
    }

    /// Resumes from the configured checkpoint directory when it holds an
    /// intact checkpoint, otherwise starts the run fresh — the idempotent
    /// entry point a supervisor calls after adopting a run it may or may
    /// not have executed before.
    ///
    /// Requires [`Nautilus::with_checkpoints`]; the same directory serves
    /// as both the resume source and the fresh run's checkpoint target, so
    /// calling this again after *any* interruption continues where the
    /// previous attempt stopped. Either way the result covers the whole
    /// search: resumed runs restore the report snapshot embedded in the
    /// checkpoint and replay bit-for-bit what an uninterrupted run would
    /// have produced.
    ///
    /// # Errors
    ///
    /// Returns [`GaError::InvalidConfig`] when no checkpoint directory is
    /// configured, plus anything [`Nautilus::resume_from_reported`] or the
    /// fresh `_reported` entry points can return.
    pub fn resume_or_start_reported(
        &self,
        query: &Query,
        hints: Option<(&HintSet, Option<Confidence>)>,
        seed: u64,
    ) -> Result<(SearchOutcome, RunReport)> {
        let Some(dir) = self.checkpoint_dir.clone() else {
            return Err(NautilusError::Ga(GaError::InvalidConfig(
                "resume_or_start_reported requires with_checkpoints(dir)".into(),
            )));
        };
        if Self::has_resumable_checkpoint(&dir) {
            return self.resume_from_reported(query, hints, &dir);
        }
        match hints {
            Some((h, confidence)) => self.run_guided_reported(query, h, confidence, seed),
            None => self.run_baseline_reported(query, seed),
        }
    }

    /// Rejects a resume whose guidance configuration cannot have produced
    /// the checkpointed run: the strategy label is part of the persisted
    /// state precisely so a guided run cannot silently continue as a
    /// baseline (or vice versa) with a divergent operator set.
    fn check_resume_label(
        &self,
        state: &SearchState,
        confidence: Option<Option<Confidence>>,
    ) -> Result<()> {
        let expected = match confidence {
            Some(c) => guided_label(c),
            None => "baseline",
        };
        if state.run_label != expected {
            return Err(NautilusError::Ga(GaError::Checkpoint(format!(
                "checkpoint belongs to a `{}` run but resume is configured as `{expected}`",
                state.run_label
            ))));
        }
        Ok(())
    }

    fn run_inner(
        &self,
        query: &Query,
        guidance: Option<(&HintSet, Option<Confidence>)>,
        seed: u64,
        label: &str,
    ) -> Result<SearchOutcome> {
        self.drive(query, guidance, seed, label, self.observer, None, None)
    }

    #[allow(clippy::too_many_arguments)]
    fn drive(
        &self,
        query: &Query,
        guidance: Option<(&HintSet, Option<Confidence>)>,
        seed: u64,
        label: &str,
        observer: &dyn SearchObserver,
        resume: Option<(SearchState, &Path)>,
        report: Option<&ReportBuilder>,
    ) -> Result<SearchOutcome> {
        // The runner's per-lookup events go through a capture-aware buffer:
        // when a worker thread evaluates misses under `capture_events`, the
        // events queue in that worker's frame and the GA engine replays them
        // at the deterministic merge point, so the stream is byte-identical
        // at every worker count. Outside a capture frame (the merge thread,
        // serial runs) the buffer forwards straight through.
        if self.subprocess.is_some() && self.fault_plan.is_some() {
            return Err(NautilusError::Subprocess(
                "a fault plan and a subprocess evaluator are mutually exclusive: drive chaos \
                 from the tool side instead (e.g. mock-synth --plan-seed)"
                    .to_owned(),
            ));
        }
        let buffered = BatchEventBuffer::new(observer);
        // With a subprocess evaluator installed, the job runner charges
        // and caches over a stand-in model that serves the child tool's
        // stashed replies — so job accounting, cache behaviour, and
        // EvalCompleted telemetry are identical to an in-process run.
        let stash_model = self.subprocess.as_ref().map(|_| StashModel::new(self.model));
        let runner = match &stash_model {
            Some(stash) => SynthJobRunner::new(stash),
            None => SynthJobRunner::new(self.model),
        }
        .with_observer(&buffered);
        if self.tracer.is_some() {
            // Shard-lock wait timing is off by default (one atomic load per
            // acquisition when off); traced runs pay for it and fold the
            // totals into the phase attribution below.
            runner.enable_lock_timing();
        }
        // Synthesis-job counters accumulated by the interrupted process
        // ride in the checkpoint's aux blob; the fresh runner restarts at
        // zero and the offset is added back everywhere totals surface.
        let jobs_offset = match &resume {
            Some((state, _)) => match state.aux_blob(AUX_JOBS) {
                Some(blob) => decode_job_stats(blob).map_err(|e| {
                    GaError::Checkpoint(format!("checkpoint {AUX_JOBS} blob rejected: {e}"))
                })?,
                None => JobStats::default(),
            },
            None => JobStats::default(),
        };
        let fitness = QueryOverRunner { runner: &runner, query };
        let faulty = self.fault_plan.map(|plan| FaultyEvaluator::new(&fitness, plan));
        let subproc = match &self.subprocess {
            Some(config) => Some(
                SubprocessEvaluator::spawn(config.clone(), self.model, &fitness, &buffered)
                    .map_err(|e| NautilusError::Subprocess(e.to_string()))?,
            ),
            None => None,
        };
        // Supervision wraps the supervisable evaluation path; without one
        // (no fault plan or subprocess pool) there is nothing to hang or
        // trip, so the policy is inert by design — mirroring the retry
        // policy's contract.
        let supervisor = match (&faulty, &subproc, self.supervision) {
            (Some(f), _, Some(policy)) => Some(Supervisor::new(f).with_policy(policy)),
            (None, Some(s), Some(policy)) => Some(Supervisor::new(s).with_policy(policy)),
            _ => None,
        };
        // Snapshot closure run at every checkpoint boundary: cumulative job
        // stats always, plus the report builder's state on reported runs.
        let aux = || {
            let mut blobs = vec![(
                AUX_JOBS.to_owned(),
                encode_job_stats(&merge_jobs(jobs_offset, runner.stats())),
            )];
            if let Some(builder) = report {
                blobs.push((AUX_REPORT.to_owned(), builder.snapshot_bytes()));
            }
            blobs
        };
        let mut engine = GaEngine::new(self.model.space(), &fitness)
            .with_settings(self.settings)
            .with_selector(Box::new(RankRoulette::new(1.10)))
            .with_mutation(Box::new(nautilus_ga::UniformMutation::new(self.mutation_rate)))
            .with_observer(observer)
            .with_retry_policy(self.retry)
            .with_run_label(label)
            .with_budget(self.budget.clone());
        let checkpoint_dir =
            resume.as_ref().map(|(_, dir)| *dir).or(self.checkpoint_dir.as_deref());
        if let Some(dir) = checkpoint_dir {
            let mut store = CheckpointStore::create(dir)
                .map_err(GaError::from)?
                .with_io(self.checkpoint_io.clone());
            if let Some(keep) = self.checkpoint_keep_last {
                store = store.with_keep_last(keep);
            }
            engine = engine.with_checkpoints(store).with_checkpoint_aux(&aux);
        }
        if let Some(faulty) = &faulty {
            engine = engine.with_fallible_evaluator(faulty);
        }
        if let Some(sub) = &subproc {
            engine = engine.with_fallible_evaluator(sub);
        }
        if let Some(sup) = &supervisor {
            engine = engine.with_supervisor(sup);
        }
        if let Some((hints, confidence)) = guidance {
            let mut guided = GuidedMutation::resolve(hints, self.model.space(), query.direction())?
                .with_rate(self.mutation_rate);
            if let Some(c) = confidence {
                guided = guided.with_confidence(c.get());
            }
            engine = engine.with_mutation(Box::new(guided));
            if self.guided_crossover {
                let mut xover = GuidedCrossover::resolve(hints, self.model.space())?;
                if let Some(c) = confidence {
                    xover = xover.with_confidence(c.get());
                }
                engine = engine.with_crossover(Box::new(xover));
            }
        }
        if let Some(tracer) = self.tracer {
            engine = engine.with_tracer(tracer);
        }
        let run = match resume {
            Some((state, _)) => engine.resume(state)?,
            None => engine.run(seed)?,
        };
        if let Some(tracer) = self.tracer {
            // Lock waits happen inside worker evaluation spans; recording
            // them as an aggregate (not timeline spans) keeps the cache's
            // hot path allocation-free while the attribution still shows
            // contention cost.
            let (waits, total, max) = runner.lock_wait_totals();
            tracer.add_aggregate(Phase::ShardLockWait, waits, total, max);
            if let Some(builder) = report {
                builder.attach_phases(tracer.phase_stats());
            }
        }
        Ok(SearchOutcome {
            strategy: label.to_owned(),
            trace: run
                .history
                .iter()
                .map(|g| TracePoint {
                    generation: g.generation,
                    evals: g.distinct_evals,
                    best_in_gen: g.best_value,
                    mean_in_gen: g.mean_value,
                    best_so_far: g.best_so_far,
                })
                .collect(),
            best_genome: run.best_genome,
            best_value: run.best_value,
            jobs: merge_jobs(jobs_offset, runner.stats()),
            faults: run.faults,
            health: run.health,
            stop: run.stop,
        })
    }
}

/// Aux-blob key for cumulative [`JobStats`] inside checkpoint records.
const AUX_JOBS: &str = "synth.jobs";
/// Aux-blob key for the [`ReportBuilder`] snapshot inside checkpoint records.
const AUX_REPORT: &str = "obs.report";

fn no_checkpoint(dir: &Path) -> NautilusError {
    NautilusError::Ga(GaError::Checkpoint(format!(
        "no intact checkpoint found in {}",
        dir.display()
    )))
}

fn merge_jobs(offset: JobStats, current: JobStats) -> JobStats {
    JobStats {
        jobs: offset.jobs + current.jobs,
        infeasible: offset.infeasible + current.infeasible,
        cache_hits: offset.cache_hits + current.cache_hits,
        simulated_tool_secs: offset.simulated_tool_secs + current.simulated_tool_secs,
    }
}

fn encode_job_stats(stats: &JobStats) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.u64(stats.jobs);
    w.u64(stats.infeasible);
    w.u64(stats.cache_hits);
    w.u64(stats.simulated_tool_secs);
    w.into_bytes()
}

fn decode_job_stats(blob: &[u8]) -> std::result::Result<JobStats, nautilus_obs::WireError> {
    let mut r = WireReader::new(blob);
    let stats = JobStats {
        jobs: r.u64()?,
        infeasible: r.u64()?,
        cache_hits: r.u64()?,
        simulated_tool_secs: r.u64()?,
    };
    r.finish()?;
    Ok(stats)
}

/// Strategy label for a guided run, matching the paper's footnote-2 naming
/// of the weakly / strongly guided variants.
fn guided_label(confidence: Option<Confidence>) -> &'static str {
    match confidence {
        Some(c) if c >= Confidence::STRONG => "nautilus-strong",
        Some(c) if c <= Confidence::WEAK => "nautilus-weak",
        _ => "nautilus",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hint::HintSet;
    use crate::query::Query;
    use nautilus_ga::{ParamSpace, ParamValue};
    use nautilus_synth::{MetricCatalog, MetricExpr, MetricSet};

    /// A 4-parameter model with strong structure for guidance tests:
    /// cost = x*y + z_penalty + w, where only x and y matter much.
    #[derive(Debug)]
    struct StructuredModel {
        space: ParamSpace,
        catalog: MetricCatalog,
    }

    impl StructuredModel {
        fn new() -> Self {
            StructuredModel {
                space: ParamSpace::builder()
                    .int("x", 0, 15, 1)
                    .int("y", 0, 15, 1)
                    .int("z", 0, 15, 1)
                    .choices("mode", ["slow", "medium", "fast"])
                    .build()
                    .unwrap(),
                catalog: MetricCatalog::new([("cost", "units")]).unwrap(),
            }
        }
    }

    impl CostModel for StructuredModel {
        fn name(&self) -> &str {
            "structured"
        }
        fn space(&self) -> &ParamSpace {
            &self.space
        }
        fn catalog(&self) -> &MetricCatalog {
            &self.catalog
        }
        fn evaluate(&self, g: &Genome) -> Option<MetricSet> {
            let x = f64::from(g.gene_at(0));
            let y = f64::from(g.gene_at(1));
            let z = f64::from(g.gene_at(2));
            let mode_penalty = match g.gene_at(3) {
                0 => 40.0,
                1 => 15.0,
                _ => 0.0,
            };
            let cost = x * y * 4.0 + z * 0.5 + mode_penalty + 1.0;
            Some(self.catalog.set(vec![cost]).unwrap())
        }
    }

    fn query(model: &StructuredModel) -> Query {
        Query::minimize("cost", MetricExpr::metric(model.catalog.require("cost").unwrap()))
    }

    fn hints() -> HintSet {
        HintSet::for_metric("cost")
            .importance("x", 95)
            .unwrap()
            .bias("x", 0.9)
            .unwrap()
            .importance("y", 95)
            .unwrap()
            .bias("y", 0.9)
            .unwrap()
            .importance("z", 5)
            .unwrap()
            .target("mode", ParamValue::Sym("fast".into()))
            .unwrap()
            .importance("mode", 70)
            .unwrap()
            .build()
    }

    #[test]
    fn baseline_and_guided_reach_good_solutions() {
        let model = StructuredModel::new();
        let q = query(&model);
        let engine = Nautilus::new(&model);
        let base = engine.run_baseline(&q, 11).unwrap();
        let guided = engine.run_guided(&q, &hints(), Some(Confidence::STRONG), 11).unwrap();
        // Optimum: x=0, y=0, z=0, mode=fast -> 1.0.
        assert!(base.best_value <= 12.0, "baseline too weak: {}", base.best_value);
        assert!(guided.best_value <= 6.0, "guided too weak: {}", guided.best_value);
        assert_eq!(base.strategy, "baseline");
        assert_eq!(guided.strategy, "nautilus-strong");
    }

    #[test]
    fn guided_converges_with_fewer_evaluations_on_average() {
        let model = StructuredModel::new();
        let q = query(&model);
        let engine = Nautilus::new(&model);
        let h = hints();
        let runs = 12;
        let threshold = 5.0; // near-optimal cost
        let mut base_evals = 0.0;
        let mut guided_evals = 0.0;
        let mut base_hits = 0;
        let mut guided_hits = 0;
        for s in 0..runs {
            let b = engine.run_baseline(&q, 100 + s).unwrap();
            if let Some(e) = b.evals_to_reach(Direction::Minimize, threshold) {
                base_evals += e as f64;
                base_hits += 1;
            } else {
                base_evals += b.total_evals() as f64;
            }
            let g = engine.run_guided(&q, &h, Some(Confidence::STRONG), 100 + s).unwrap();
            if let Some(e) = g.evals_to_reach(Direction::Minimize, threshold) {
                guided_evals += e as f64;
                guided_hits += 1;
            } else {
                guided_evals += g.total_evals() as f64;
            }
        }
        assert!(guided_hits >= base_hits, "guided should not reach less often");
        assert!(
            guided_evals < base_evals,
            "guided should be cheaper: guided={guided_evals} baseline={base_evals}"
        );
    }

    #[test]
    fn outcomes_are_deterministic_per_seed() {
        let model = StructuredModel::new();
        let q = query(&model);
        let engine = Nautilus::new(&model);
        let h = hints();
        let a = engine.run_guided(&q, &h, Some(Confidence::WEAK), 5).unwrap();
        let b = engine.run_guided(&q, &h, Some(Confidence::WEAK), 5).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.strategy, "nautilus-weak");
    }

    #[test]
    fn eval_workers_do_not_change_outcomes_or_job_stats() {
        let model = StructuredModel::new();
        let q = query(&model);
        let h = hints();
        let serial = Nautilus::new(&model);
        let base = serial.run_baseline(&q, 17).unwrap();
        let guided = serial.run_guided(&q, &h, Some(Confidence::STRONG), 17).unwrap();
        for workers in [0usize, 2, 8] {
            let engine = Nautilus::new(&model).with_eval_workers(workers);
            let b = engine.run_baseline(&q, 17).unwrap();
            assert_eq!(b, base, "baseline diverged at {workers} workers");
            let g = engine.run_guided(&q, &h, Some(Confidence::STRONG), 17).unwrap();
            assert_eq!(g, guided, "guided diverged at {workers} workers");
            // JobStats equality is part of the outcome comparison above,
            // but spell out the load-bearing counter: the GA cache still
            // absorbs every revisit before it reaches the synthesis runner.
            assert_eq!(b.jobs.cache_hits, 0);
        }
    }

    #[test]
    fn tracing_preserves_outcomes_and_attributes_phases() {
        let model = StructuredModel::new();
        let q = query(&model);
        let h = hints();
        let plain = Nautilus::new(&model).run_guided(&q, &h, Some(Confidence::STRONG), 17).unwrap();
        for workers in [1usize, 2, 8] {
            let tracer = Tracer::new();
            let engine = Nautilus::new(&model).with_eval_workers(workers).with_tracer(&tracer);
            let g = engine.run_guided(&q, &h, Some(Confidence::STRONG), 17).unwrap();
            assert_eq!(g, plain, "tracing perturbed the outcome at {workers} workers");
            let stats = tracer.phase_stats();
            for phase in [
                Phase::Run,
                Phase::InitPopulation,
                Phase::Scoring,
                Phase::Selection,
                Phase::Crossover,
                Phase::Mutation,
                Phase::CacheLookup,
                Phase::MissEval,
                Phase::ShardLockWait,
            ] {
                assert!(stats.contains_key(&phase), "missing {phase:?} at {workers} workers");
            }
            if workers > 1 {
                assert!(stats.contains_key(&Phase::BatchDispatch));
                assert!(stats.contains_key(&Phase::BatchMerge));
            }
            assert_eq!(stats[&Phase::Run].count, 1);
            // Every acquisition of a shard lock is timed on traced runs.
            assert!(stats[&Phase::ShardLockWait].count > 0);
        }
    }

    #[test]
    fn telemetry_streams_are_logically_identical_across_workers() {
        use nautilus_obs::{InMemorySink, SearchEvent as E};

        // Timing payloads legitimately differ between runs; batch-shape,
        // shard-contention, and child-lifecycle events are worker-count
        // (or scheduling) artifacts the event contract explicitly
        // exempts. Everything else must match.
        fn normalize(events: Vec<E>) -> Vec<E> {
            events
                .into_iter()
                .filter(|e| {
                    !matches!(
                        e,
                        E::EvalBatch { .. }
                            | E::CacheShardContended { .. }
                            | E::ChildSpawned { .. }
                            | E::ChildKilled { .. }
                            | E::ChildRespawned { .. }
                            | E::ChildProtocolError { .. }
                    )
                })
                .map(|e| match e {
                    E::SpanEnd { name, .. } => E::SpanEnd { name, nanos: 0 },
                    E::RunEnd { best_value, distinct_evals, .. } => {
                        E::RunEnd { best_value, distinct_evals, wall_nanos: 0 }
                    }
                    other => other,
                })
                .collect()
        }

        let model = StructuredModel::new();
        let q = query(&model);
        let h = hints();
        let run = |workers: usize| {
            let sink = InMemorySink::new();
            let tracer = Tracer::new();
            let engine = Nautilus::new(&model)
                .with_eval_workers(workers)
                .with_observer(&sink)
                .with_tracer(&tracer);
            engine.run_guided(&q, &h, Some(Confidence::STRONG), 29).unwrap();
            normalize(sink.events())
        };
        let serial = run(1);
        assert!(!serial.is_empty());
        for workers in [2usize, 8] {
            assert_eq!(run(workers), serial, "stream diverged at {workers} workers");
        }
    }

    #[test]
    fn reported_traced_runs_carry_phase_attribution() {
        let model = StructuredModel::new();
        let q = query(&model);
        let tracer = Tracer::new();
        let engine = Nautilus::new(&model).with_tracer(&tracer);
        let (outcome, report) = engine.run_baseline_reported(&q, 13).unwrap();
        assert!(!report.phases.is_empty(), "traced reported run must carry attribution");
        let run = &report.phases[&Phase::Run];
        assert_eq!(run.count, 1);
        assert!(run.total_nanos > 0);
        // On a serial run every span nests under `Run` on the merge track,
        // so per-phase self times telescope to the run's wall clock (the
        // shard-lock aggregate is extra: its time is inside MissEval spans).
        let self_sum: u64 = report
            .phases
            .iter()
            .filter(|(p, _)| **p != Phase::ShardLockWait)
            .map(|(_, s)| s.self_nanos)
            .sum();
        assert_eq!(self_sum, run.total_nanos);
        // Tracing must not perturb the reported search either.
        let (plain, plain_report) = engine_untraced_baseline(&model, &q);
        assert_eq!(outcome, plain);
        assert_eq!(report.distinct_evals, plain_report.distinct_evals);
        assert!(plain_report.phases.is_empty(), "untraced run must not carry attribution");
    }

    fn engine_untraced_baseline(model: &StructuredModel, q: &Query) -> (SearchOutcome, RunReport) {
        Nautilus::new(model).run_baseline_reported(q, 13).unwrap()
    }

    #[test]
    fn constraints_are_respected_by_search() {
        let model = StructuredModel::new();
        let cost = MetricExpr::metric(model.catalog.require("cost").unwrap());
        // Keep cost >= 100: the optimum region becomes infeasible.
        let q = Query::minimize("cost", cost.clone()).with_constraint(
            cost,
            crate::query::ConstraintOp::Ge,
            100.0,
        );
        let engine = Nautilus::new(&model);
        let run = engine.run_baseline(&q, 3).unwrap();
        assert!(run.best_value >= 100.0, "constraint violated: {}", run.best_value);
    }

    #[test]
    fn trace_accounting_matches_job_stats() {
        let model = StructuredModel::new();
        let q = query(&model);
        let run = Nautilus::new(&model).run_baseline(&q, 7).unwrap();
        assert_eq!(run.trace.last().unwrap().evals, run.jobs.jobs);
        assert_eq!(run.trace.len(), 81);
        // The GA's own evaluation cache absorbs revisits before they reach
        // the synthesis runner, so the runner sees each point exactly once.
        assert_eq!(run.jobs.cache_hits, 0);
        assert!(run.jobs.jobs < 10 + 10 * 80, "cache should absorb revisits");
    }

    #[test]
    fn reported_runs_reconcile_with_job_stats() {
        let model = StructuredModel::new();
        let q = query(&model);
        let engine = Nautilus::new(&model);

        let (outcome, report) = engine.run_baseline_reported(&q, 13).unwrap();
        // The report's whole-run eval tally is rebuilt from the event stream
        // alone; it must reconcile with the runner's own counters.
        assert_eq!(report.evals.total_lookups(), outcome.jobs.total_lookups());
        assert_eq!(report.evals.feasible, outcome.jobs.jobs);
        assert_eq!(report.evals.cached, outcome.jobs.cache_hits);
        assert_eq!(report.evals.infeasible, outcome.jobs.infeasible);
        assert_eq!(report.evals.tool_secs, outcome.jobs.simulated_tool_secs);
        assert_eq!(report.strategy, outcome.strategy);
        assert_eq!(report.distinct_evals, outcome.jobs.jobs);
        assert_eq!(report.best_value, outcome.best_value);
        assert_eq!(report.generations.len(), 81);

        // Attaching the report observer must not perturb the search itself.
        let plain = engine.run_baseline(&q, 13).unwrap();
        assert_eq!(outcome, plain);

        let (guided, guided_report) =
            engine.run_guided_reported(&q, &hints(), Some(Confidence::STRONG), 13).unwrap();
        assert_eq!(guided_report.strategy, "nautilus-strong");
        assert_eq!(guided_report.evals.total_lookups(), guided.jobs.total_lookups());
        assert!(guided_report.importance_decays > 0, "guided runs decay importance");
    }

    #[test]
    fn sink_events_reconstruct_per_generation_mutation_telemetry() {
        use std::collections::BTreeMap;

        use nautilus_obs::{HintKind, InMemorySink, SearchEvent};

        let model = StructuredModel::new();
        let q = query(&model);
        let sink = InMemorySink::new();
        let engine = Nautilus::new(&model).with_observer(&sink);
        let (_, report) =
            engine.run_guided_reported(&q, &hints(), Some(Confidence::STRONG), 29).unwrap();

        // Rebuild mutations-per-parameter and per-kind tallies for every
        // generation straight from the raw event stream.
        let num_params = report.params.len();
        assert_eq!(num_params, 4);
        let mut per_param: BTreeMap<u32, Vec<u64>> = BTreeMap::new();
        let mut per_kind: BTreeMap<u32, [u64; HintKind::ALL.len()]> = BTreeMap::new();
        for event in sink.events() {
            if let SearchEvent::MutationHintApplied { generation, param, hint_kind, .. } = event {
                let row = per_param.entry(generation).or_insert_with(|| vec![0; num_params]);
                row[param as usize] += 1;
                let kinds = per_kind.entry(generation).or_default();
                let idx = HintKind::ALL.iter().position(|k| *k == hint_kind).unwrap();
                kinds[idx] += 1;
            }
        }

        // The reconstruction must agree with the aggregated report row by row.
        let mut total_slots = 0;
        for row in &report.generations {
            let rebuilt_params =
                per_param.remove(&row.generation).unwrap_or_else(|| vec![0; num_params]);
            assert_eq!(rebuilt_params, row.mutations_per_param, "gen {}", row.generation);
            let rebuilt_kinds = per_kind.remove(&row.generation).unwrap_or_default();
            assert_eq!(rebuilt_kinds, row.hints.counts, "gen {}", row.generation);
            total_slots += row.hints.total();
        }
        assert!(per_param.is_empty(), "sink saw generations the report missed");
        assert_eq!(total_slots, report.hints.total());

        // A strongly guided run exercises the guided hint kinds: biased
        // draws on x/y and target-rank draws on mode.
        assert!(report.hints.count_of(HintKind::Bias) > 0);
        assert!(report.hints.count_of(HintKind::Target) > 0);
        assert!(report.hints.total() > 0);
    }

    #[test]
    fn fault_plans_degrade_gracefully_and_stay_deterministic() {
        let model = StructuredModel::new();
        let q = query(&model);
        let plan = FaultPlan::new(99).with_transient_rate(0.2).with_persistent_rate(0.02);
        let engine = Nautilus::new(&model).with_fault_plan(plan);
        let faulted = engine.run_baseline(&q, 31).unwrap();
        assert!(faulted.faults.evals_failed > 0, "plan should have injected failures");
        assert!(faulted.faults.reconciles());
        // Same plan, same seed, workers on: bit-for-bit identical.
        for workers in [2usize, 8] {
            let parallel = Nautilus::new(&model)
                .with_fault_plan(plan)
                .with_eval_workers(workers)
                .run_baseline(&q, 31)
                .unwrap();
            assert_eq!(parallel, faulted, "faulted run diverged at {workers} workers");
        }
        // A clean run has all-zero fault accounting.
        let clean = Nautilus::new(&model).run_baseline(&q, 31).unwrap();
        assert_eq!(clean.faults, nautilus_ga::FaultStats::default());
    }

    #[test]
    fn reported_fault_runs_reconcile_report_and_outcome() {
        let model = StructuredModel::new();
        let q = query(&model);
        let plan = FaultPlan::new(7).with_transient_rate(0.25);
        let engine =
            Nautilus::new(&model).with_fault_plan(plan).with_retry_policy(RetryPolicy::default());
        let (outcome, report) = engine.run_baseline_reported(&q, 41).unwrap();
        assert!(outcome.faults.evals_failed > 0);
        // The report rebuilds failure accounting from the event stream
        // alone; it must agree with the engine's own ledger exactly.
        assert_eq!(report.faults.evals_failed(), outcome.faults.evals_failed);
        assert_eq!(report.faults.retries_recovered, outcome.faults.retries_recovered);
        assert_eq!(report.faults.quarantined, outcome.faults.quarantined);
        assert_eq!(report.faults.retries, outcome.faults.retries);
        for (i, kind) in nautilus_obs::FailureKind::ALL.iter().enumerate() {
            assert_eq!(
                report.faults.failed_attempts_of(*kind),
                outcome.faults.failed_attempts[i],
                "failed-attempt tally for {kind} diverged"
            );
        }
        assert_eq!(report.evals.total_lookups(), outcome.jobs.total_lookups());
    }

    #[test]
    fn retries_disabled_quarantines_first_failures() {
        let model = StructuredModel::new();
        let q = query(&model);
        let plan = FaultPlan::new(3).with_transient_rate(0.3);
        let engine = Nautilus::new(&model).with_fault_plan(plan);
        let no_retry = engine.with_retry_policy(RetryPolicy::none());
        let run = no_retry.run_baseline(&q, 53).unwrap();
        assert_eq!(run.faults.retries, 0, "RetryPolicy::none must never retry");
        assert_eq!(run.faults.retries_recovered, 0);
        assert_eq!(run.faults.evals_failed, run.faults.quarantined);
        assert!(run.faults.quarantined > 0);
    }

    #[test]
    fn invalid_hints_error_cleanly() {
        let model = StructuredModel::new();
        let q = query(&model);
        let bad = HintSet::for_metric("cost").importance("nope", 10).unwrap().build();
        let err = Nautilus::new(&model).run_guided(&q, &bad, None, 0);
        assert!(err.is_err());
    }

    #[test]
    fn supervised_hang_storms_complete_and_stay_deterministic() {
        let model = StructuredModel::new();
        let q = query(&model);
        // 15% of attempts hang and 10% crash transiently; only supervision
        // keeps a run over this plan from waiting forever on the hangs.
        let plan = FaultPlan::new(17).with_hang_rate(0.15).with_transient_rate(0.10);
        let engine = Nautilus::new(&model)
            .with_fault_plan(plan)
            .with_supervision(SupervisePolicy::default());
        let run = engine.run_baseline(&q, 61).unwrap();
        assert!(run.health.watchdog_fired > 0, "hangs should fire the watchdog: {:?}", run.health);
        assert!(run.health.reconciles(), "hedge identity broken: {:?}", run.health);
        assert!(run.faults.reconciles());
        assert!(run.best_value.is_finite());
        for workers in [2usize, 8] {
            let parallel = Nautilus::new(&model)
                .with_fault_plan(plan)
                .with_supervision(SupervisePolicy::default())
                .with_eval_workers(workers)
                .run_baseline(&q, 61)
                .unwrap();
            assert_eq!(parallel, run, "supervised run diverged at {workers} workers");
        }
    }

    #[test]
    fn supervision_without_a_fault_plan_is_inert() {
        let model = StructuredModel::new();
        let q = query(&model);
        let plain = Nautilus::new(&model).run_baseline(&q, 23).unwrap();
        let supervised = Nautilus::new(&model)
            .with_supervision(SupervisePolicy::default())
            .run_baseline(&q, 23)
            .unwrap();
        assert_eq!(supervised, plain);
        assert_eq!(supervised.health, nautilus_ga::SuperviseStats::default());
    }

    #[test]
    fn reported_supervised_runs_reconcile_health_tallies() {
        let model = StructuredModel::new();
        let q = query(&model);
        let plan = FaultPlan::new(29).with_hang_rate(0.20).with_transient_rate(0.05);
        let engine = Nautilus::new(&model)
            .with_fault_plan(plan)
            .with_supervision(SupervisePolicy::default());
        let (outcome, report) = engine.run_baseline_reported(&q, 43).unwrap();
        assert!(outcome.health.watchdog_fired > 0);
        // The report rebuilds health accounting from the event stream
        // alone; it must agree with the engine's own ledger exactly.
        assert_eq!(report.health.watchdog_fired, outcome.health.watchdog_fired);
        assert_eq!(report.health.late_results_discarded, outcome.health.late_results_discarded);
        assert_eq!(report.health.hedges_issued, outcome.health.hedges_issued);
        assert_eq!(report.health.hedges_won, outcome.health.hedges_won);
        assert_eq!(report.health.hedges_wasted, outcome.health.hedges_wasted);
        assert_eq!(report.health.breaker_trips, outcome.health.breaker_trips);
        assert_eq!(report.health.breaker_recoveries, outcome.health.breaker_recoveries);
        assert_eq!(report.health.evals_shed, outcome.health.evals_shed);
        assert!(report.health.hedges_reconcile());
        // Attaching the report observer must not perturb the search.
        let plain = engine.run_baseline(&q, 43).unwrap();
        assert_eq!(outcome, plain);
    }

    #[test]
    fn subprocess_and_fault_plan_are_mutually_exclusive() {
        let model = StructuredModel::new();
        let q = query(&model);
        let err = Nautilus::new(&model)
            .with_fault_plan(FaultPlan::new(1).with_transient_rate(0.1))
            .with_subprocess_evaluator(SubprocessConfig::new("/bin/true"))
            .run_baseline(&q, 1)
            .expect_err("fault plan + subprocess accepted");
        assert!(matches!(err, NautilusError::Subprocess(_)), "{err:?}");
        assert!(err.to_string().contains("mutually exclusive"), "{err}");
    }

    #[test]
    fn unspawnable_subprocess_tool_fails_the_run_cleanly() {
        let model = StructuredModel::new();
        let q = query(&model);
        let err = Nautilus::new(&model)
            .with_subprocess_evaluator(SubprocessConfig::new("/nonexistent/mock-synth"))
            .run_baseline(&q, 1)
            .expect_err("run over a nonexistent tool succeeded");
        assert!(matches!(err, NautilusError::Subprocess(_)), "{err:?}");
        assert!(err.to_string().contains("failed to spawn"), "{err}");
    }

    #[test]
    fn hint_book_dispatch_falls_back_to_baseline() {
        let model = StructuredModel::new();
        let q = query(&model);
        let engine = Nautilus::new(&model);

        // Empty book: identical to a baseline run.
        let empty = crate::hint::HintBook::new();
        let via_book = engine.run_with_book(&q, &empty, None, 21).unwrap();
        let baseline = engine.run_baseline(&q, 21).unwrap();
        assert_eq!(via_book, baseline);

        // Book with hints for this query: identical to a guided run.
        let mut book = crate::hint::HintBook::new();
        book.insert(hints());
        let via_book = engine.run_with_book(&q, &book, Some(Confidence::STRONG), 21).unwrap();
        let guided = engine.run_guided(&q, &hints(), Some(Confidence::STRONG), 21).unwrap();
        assert_eq!(via_book, guided);

        // A hint set with zero entries also falls back.
        let mut hollow = crate::hint::HintBook::new();
        hollow.insert(crate::hint::HintSet::for_metric("cost").build());
        let via_hollow = engine.run_with_book(&q, &hollow, None, 21).unwrap();
        assert_eq!(via_hollow.strategy, "baseline");
    }
}
