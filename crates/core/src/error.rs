//! Error types for hint construction and Nautilus runs.

use std::error::Error;
use std::fmt;

use nautilus_ga::GaError;
use nautilus_synth::SynthError;

/// Errors produced while building hints or running Nautilus searches.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NautilusError {
    /// A hint value was outside its documented range.
    HintOutOfRange {
        /// Which hint class ("importance", "bias", ...).
        hint: &'static str,
        /// Display form of the rejected value.
        value: String,
        /// The legal range.
        range: &'static str,
    },
    /// Both a bias and a target hint were supplied for one parameter.
    BiasAndTarget(String),
    /// A hint referenced a parameter the space does not define.
    UnknownParam(String),
    /// A target hint value is not in its parameter's domain.
    TargetNotInDomain {
        /// Parameter the target was supplied for.
        param: String,
        /// Display form of the value.
        value: String,
    },
    /// An ordering hint is not a permutation of the parameter's domain.
    BadOrdering(String),
    /// An underlying GA error.
    Ga(GaError),
    /// An underlying synthesis-substrate error.
    Synth(SynthError),
    /// A search was configured with an empty evaluation budget.
    EmptyBudget,
    /// An out-of-process evaluator could not be set up or was configured
    /// inconsistently (e.g. combined with an in-process fault plan).
    Subprocess(String),
}

impl fmt::Display for NautilusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NautilusError::HintOutOfRange { hint, value, range } => {
                write!(f, "{hint} hint value {value} outside {range}")
            }
            NautilusError::BiasAndTarget(p) => {
                write!(f, "parameter `{p}` has both bias and target hints (mutually exclusive)")
            }
            NautilusError::UnknownParam(p) => write!(f, "hint references unknown parameter `{p}`"),
            NautilusError::TargetNotInDomain { param, value } => {
                write!(f, "target value `{value}` is not in the domain of parameter `{param}`")
            }
            NautilusError::BadOrdering(p) => {
                write!(f, "ordering hint for `{p}` is not a permutation of its domain")
            }
            NautilusError::Ga(e) => write!(f, "genetic algorithm error: {e}"),
            NautilusError::Synth(e) => write!(f, "synthesis substrate error: {e}"),
            NautilusError::EmptyBudget => write!(f, "search budget must be at least 1 evaluation"),
            NautilusError::Subprocess(detail) => {
                write!(f, "subprocess evaluator error: {detail}")
            }
        }
    }
}

impl Error for NautilusError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NautilusError::Ga(e) => Some(e),
            NautilusError::Synth(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GaError> for NautilusError {
    fn from(e: GaError) -> Self {
        NautilusError::Ga(e)
    }
}

impl From<SynthError> for NautilusError {
    fn from(e: SynthError) -> Self {
        NautilusError::Synth(e)
    }
}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, NautilusError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = NautilusError::HintOutOfRange { hint: "bias", value: "2".into(), range: "[-1, 1]" };
        assert!(e.to_string().contains("bias"));
        assert!(e.to_string().contains("[-1, 1]"));
        assert!(NautilusError::BiasAndTarget("vcs".into()).to_string().contains("vcs"));
        assert!(NautilusError::BadOrdering("alloc".into()).to_string().contains("alloc"));
    }

    #[test]
    fn wrapped_errors_expose_source() {
        let e = NautilusError::from(GaError::EmptySpace);
        assert!(e.source().is_some());
        let e = NautilusError::from(SynthError::EmptyDataset);
        assert!(e.source().is_some());
        assert!(NautilusError::EmptyBudget.source().is_none());
    }
}
