//! The guided genetic operators at the heart of Nautilus.
//!
//! [`GuidedMutation`] implements the same [`MutationOp`] interface as the
//! baseline operator but consumes a resolved [`HintSet`]:
//!
//! * **gene selection** — instead of mutating every gene with equal
//!   probability, mutation "slots" are importance-weighted, after applying
//!   the per-generation decay schedule;
//! * **value assignment** — a mutating gene is steered by its bias
//!   (directional geometric step along the ordered domain) or target
//!   (geometric sampling around the target value);
//! * **confidence gating** — every guided decision happens only with
//!   probability `confidence`; otherwise the operator falls back to the
//!   baseline uniform behaviour. This keeps the search stochastic: any
//!   design point remains reachable, so wrong hints degrade speed, not
//!   correctness (paper footnote 1).

use std::sync::atomic::{AtomicU32, Ordering};

use rand::{Rng, RngExt};

use nautilus_ga::ops::{CrossoverOp, MutationOp, OpCtx};
use nautilus_ga::{Direction, Genome, ParamSpace};
use nautilus_obs::{HintKind, SearchEvent};

use crate::error::Result;
use crate::hint::{HintSet, Importance, ValueHint};

/// Steering resolved for one parameter.
#[derive(Debug, Clone, PartialEq)]
enum Steer {
    /// No value hint: uniform redraw.
    None,
    /// Preference in *rank* space, already adjusted for the query direction:
    /// positive means "higher ranks improve the objective".
    Toward(f64),
    /// Pull toward this rank.
    TargetRank(usize),
}

/// One parameter's hints, resolved against a space and query direction.
#[derive(Debug, Clone)]
struct ResolvedParam {
    /// Importance in 1..=100 (default 50).
    importance: f64,
    /// Decay rate (default 1.0: no decay).
    decay: f64,
    steer: Steer,
    /// `rank_to_idx[r]` = domain index with rank `r` along the metric axis.
    rank_to_idx: Vec<u32>,
    /// `idx_to_rank[i]` = rank of domain index `i`.
    idx_to_rank: Vec<u32>,
    /// Whether ranks are meaningful (numeric domain or ordering hint).
    ordered: bool,
    max_step: Option<usize>,
}

/// The Nautilus guided mutation operator.
///
/// Construct with [`GuidedMutation::resolve`]; install into a GA engine with
/// [`nautilus_ga::GaEngine::with_mutation`]. The `nautilus` crate's
/// [`crate::Nautilus`] engine does this wiring automatically.
#[derive(Debug)]
pub struct GuidedMutation {
    rate: f64,
    confidence: f64,
    params: Vec<ResolvedParam>,
    /// Geometric continuation probability for steered steps.
    pull: f64,
    /// Last generation an `ImportanceDecayed` event was emitted for, so an
    /// observed run reports each generation's weights exactly once.
    last_decay_gen: AtomicU32,
}

impl GuidedMutation {
    /// Resolves `hints` against `space` for a query optimizing in
    /// `direction`, using the hint set's own confidence.
    ///
    /// # Errors
    ///
    /// Returns hint-validation errors (unknown parameter, target outside
    /// the domain, malformed ordering).
    pub fn resolve(hints: &HintSet, space: &ParamSpace, direction: Direction) -> Result<Self> {
        hints.validate(space)?;
        let mut params = Vec::with_capacity(space.num_params());
        for id in space.param_ids() {
            let def = space.param(id);
            let domain = def.domain();
            let card = domain.cardinality();
            let hint = hints.get(def.name());

            let ordering = hint.and_then(|h| h.ordering.clone());
            let ordered = ordering.is_some() || domain.is_numeric();
            let rank_to_idx: Vec<u32> = ordering.unwrap_or_else(|| (0..card as u32).collect());
            let mut idx_to_rank = vec![0u32; card];
            for (rank, &idx) in rank_to_idx.iter().enumerate() {
                idx_to_rank[idx as usize] = rank as u32;
            }

            let steer = match hint.and_then(|h| h.value.as_ref()) {
                None => Steer::None,
                Some(ValueHint::Bias(b)) => {
                    if ordered {
                        // Bias is correlation with the metric; flip it when
                        // the query *minimizes* the metric so `Toward` always
                        // points at improvement.
                        let pref = match direction {
                            Direction::Maximize => b.get(),
                            Direction::Minimize => -b.get(),
                        };
                        Steer::Toward(pref)
                    } else {
                        // No meaningful axis: bias cannot steer.
                        Steer::None
                    }
                }
                Some(ValueHint::Target(v)) => {
                    let idx = domain.index_of(v).expect("validated above");
                    Steer::TargetRank(idx_to_rank[idx] as usize)
                }
            };

            params.push(ResolvedParam {
                importance: f64::from(
                    hint.and_then(|h| h.importance).unwrap_or(Importance::DEFAULT).get(),
                ),
                decay: hint.and_then(|h| h.decay).map_or(1.0, |d| d.get()),
                steer,
                rank_to_idx,
                idx_to_rank,
                ordered,
                max_step: hint.and_then(|h| h.max_step),
            });
        }
        Ok(GuidedMutation {
            rate: 0.1,
            confidence: hints.confidence().get(),
            params,
            pull: 0.5,
            last_decay_gen: AtomicU32::new(u32::MAX),
        })
    }

    /// Overrides the per-gene mutation rate (default 0.1, the paper's).
    #[must_use]
    pub fn with_rate(mut self, rate: f64) -> Self {
        self.rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Overrides the confidence (how the paper's weak/strong variants are
    /// produced from one hint set).
    #[must_use]
    pub fn with_confidence(mut self, confidence: f64) -> Self {
        self.confidence = confidence.clamp(0.0, 1.0);
        self
    }

    /// The operator's confidence.
    #[must_use]
    pub fn confidence(&self) -> f64 {
        self.confidence
    }

    /// Effective gene-selection weights at `generation`.
    ///
    /// Weight `w_i = 1 + c · (imp_i · d_i^g − 1)`: importance decays toward
    /// the neutral floor at rate `d_i`, and confidence `c` scales how far
    /// the distribution departs from uniform.
    fn weights(&self, generation: u32) -> Vec<f64> {
        self.params
            .iter()
            .map(|p| {
                let decayed = 1.0 + (p.importance - 1.0) * p.decay.powi(generation as i32);
                1.0 + self.confidence * (decayed - 1.0)
            })
            .collect()
    }

    /// Samples a gene index from the importance distribution.
    fn pick_gene(&self, weights: &[f64], rng: &mut dyn Rng) -> usize {
        let total: f64 = weights.iter().sum();
        let mut u = rng.random::<f64>() * total;
        for (i, w) in weights.iter().enumerate() {
            if u < *w {
                return i;
            }
            u -= w;
        }
        weights.len() - 1
    }

    /// Draws a geometric step size `>= 1` (continuation probability
    /// `self.pull`), capped at `cap`.
    fn geometric_step(&self, cap: usize, rng: &mut dyn Rng) -> usize {
        let mut s = 1usize;
        while s < cap && rng.random_bool(self.pull) {
            s += 1;
        }
        s
    }

    /// Mutates gene `i` of `genome` according to its steering.
    ///
    /// Returns which [`HintKind`] drove the new value and whether the gene
    /// actually changed, or `None` for immovable (single-valued) genes.
    fn mutate_gene(
        &self,
        genome: &mut Genome,
        space: &ParamSpace,
        i: usize,
        rng: &mut dyn Rng,
    ) -> Option<(HintKind, bool)> {
        let id = nautilus_ga::ParamId::try_from_index(space, i).expect("gene index in space");
        let card = space.param(id).cardinality();
        if card <= 1 {
            return None;
        }
        let p = &self.params[i];
        let current_idx = genome.gene(id);
        let guided = rng.random_bool(self.confidence) && !matches!(p.steer, Steer::None);

        let (new_idx, kind) = if !guided {
            // Baseline behaviour: uniform redraw over the other values.
            let mut draw = rng.random_range(0..card - 1) as u32;
            if draw >= current_idx {
                draw += 1;
            }
            let kind = if matches!(p.steer, Steer::None) {
                HintKind::Uniform
            } else {
                // A value hint exists but the confidence gate declined it.
                HintKind::Fallback
            };
            (draw, kind)
        } else {
            let current_rank = p.idx_to_rank[current_idx as usize] as i64;
            let max = card as i64 - 1;
            let new_rank = match &p.steer {
                Steer::None => unreachable!("guided implies a steer"),
                Steer::Toward(pref) => {
                    // Step toward improvement with probability growing with
                    // |pref|; a zero-bias hint behaves like a coin flip.
                    let toward = if rng.random_bool(0.5 + 0.5 * pref.abs()) {
                        pref.signum() as i64
                    } else {
                        -pref.signum() as i64
                    };
                    let step = self.geometric_step(card, rng) as i64;
                    (current_rank + toward * step).clamp(0, max)
                }
                Steer::TargetRank(t) => {
                    if p.ordered {
                        // Geometric cloud around the target rank.
                        let spread = self.geometric_step(card, rng) as i64 - 1;
                        let side = if rng.random_bool(0.5) { 1 } else { -1 };
                        (*t as i64 + side * spread).clamp(0, max)
                    } else {
                        // Unordered domain: jump straight to the target.
                        *t as i64
                    }
                }
            };
            // Auxiliary stepping limit, relative to the current rank.
            let new_rank = match p.max_step {
                Some(ms) => {
                    let ms = ms as i64;
                    new_rank.clamp(current_rank - ms, current_rank + ms).clamp(0, max)
                }
                None => new_rank,
            };
            let kind = match &p.steer {
                Steer::None => unreachable!("guided implies a steer"),
                Steer::Toward(_) => HintKind::Bias,
                Steer::TargetRank(_) => HintKind::Target,
            };
            (p.rank_to_idx[new_rank as usize], kind)
        };
        let accepted = new_idx != current_idx;
        genome.set_gene(id, new_idx);
        Some((kind, accepted))
    }
}

impl MutationOp for GuidedMutation {
    fn mutate(&self, genome: &mut Genome, space: &ParamSpace, ctx: &OpCtx, rng: &mut dyn Rng) {
        debug_assert_eq!(space.num_params(), self.params.len(), "operator resolved elsewhere");
        let weights = self.weights(ctx.generation);
        if ctx.observer.enabled()
            && self.last_decay_gen.swap(ctx.generation, Ordering::Relaxed) != ctx.generation
        {
            let min = weights.iter().copied().fold(f64::INFINITY, f64::min);
            let max = weights.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let mean = weights.iter().sum::<f64>() / weights.len().max(1) as f64;
            ctx.observer.on_event(&SearchEvent::ImportanceDecayed {
                generation: ctx.generation,
                min_weight: min,
                max_weight: max,
                mean_weight: mean,
            });
        }
        // Same expected mutation count as the baseline (n trials at `rate`),
        // but each slot picks its gene from the importance distribution.
        for _ in 0..space.num_params() {
            if rng.random_bool(self.rate) {
                let i = self.pick_gene(&weights, rng);
                if let Some((hint_kind, accepted)) = self.mutate_gene(genome, space, i, rng) {
                    if ctx.observer.enabled() {
                        ctx.observer.on_event(&SearchEvent::MutationHintApplied {
                            generation: ctx.generation,
                            param: i as u32,
                            hint_kind,
                            accepted,
                        });
                    }
                }
            }
        }
    }

    fn name(&self) -> &str {
        "nautilus-guided"
    }
}

/// Extension: importance-aware uniform crossover.
///
/// The paper applies hints to "genetic operations" generally; this
/// operator extends the idea to recombination. Genes the author marked
/// *important* are swapped between children less often, so co-adapted
/// settings of the dominant parameters survive breeding intact, while
/// unimportant genes mix freely. Confidence gates the skew exactly as in
/// [`GuidedMutation`]: at confidence 0 this is plain uniform crossover
/// with swap probability 0.5.
///
/// Shipped as an *ablation* feature (see the `experiments ablations`
/// harness); the paper's own evaluation guides mutation only.
#[derive(Debug)]
pub struct GuidedCrossover {
    confidence: f64,
    /// Per-gene importance normalized to [0, 1].
    weight: Vec<f64>,
    decay: Vec<f64>,
}

impl GuidedCrossover {
    /// Resolves `hints` against `space`.
    ///
    /// # Errors
    ///
    /// Returns hint-validation errors, as [`GuidedMutation::resolve`].
    pub fn resolve(hints: &HintSet, space: &ParamSpace) -> Result<Self> {
        hints.validate(space)?;
        let weight = space
            .param_ids()
            .map(|id| {
                let imp = hints
                    .get(space.param(id).name())
                    .and_then(|h| h.importance)
                    .unwrap_or(Importance::DEFAULT);
                f64::from(imp.get() - 1) / 99.0
            })
            .collect();
        let decay = space
            .param_ids()
            .map(|id| {
                hints.get(space.param(id).name()).and_then(|h| h.decay).map_or(1.0, |d| d.get())
            })
            .collect();
        Ok(GuidedCrossover { confidence: hints.confidence().get(), weight, decay })
    }

    /// Overrides the confidence.
    #[must_use]
    pub fn with_confidence(mut self, confidence: f64) -> Self {
        self.confidence = confidence.clamp(0.0, 1.0);
        self
    }

    /// Per-gene swap probability at `generation`.
    fn swap_prob(&self, i: usize, generation: u32) -> f64 {
        let decayed = self.weight[i] * self.decay[i].powi(generation as i32);
        0.5 * (1.0 - self.confidence * decayed)
    }
}

impl CrossoverOp for GuidedCrossover {
    fn crossover(
        &self,
        a: &Genome,
        b: &Genome,
        _space: &ParamSpace,
        ctx: &OpCtx,
        rng: &mut dyn Rng,
    ) -> (Genome, Genome) {
        let mut ca = a.clone();
        let mut cb = b.clone();
        for i in 0..a.len() {
            if rng.random_bool(self.swap_prob(i, ctx.generation)) {
                let tmp = ca.gene_at(i);
                ca.set_gene_at(i, cb.gene_at(i));
                cb.set_gene_at(i, tmp);
            }
        }
        (ca, cb)
    }

    fn name(&self) -> &str {
        "nautilus-guided-crossover"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hint::Confidence;
    use nautilus_ga::{ParamId, ParamValue};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn space() -> ParamSpace {
        ParamSpace::builder()
            .int("a", 0, 9, 1) // 10 values
            .int("b", 0, 9, 1)
            .choices("c", ["x", "y", "z"])
            .build()
            .unwrap()
    }

    fn mutate_many(
        op: &GuidedMutation,
        space: &ParamSpace,
        start: &Genome,
        generation: u32,
        n: usize,
        seed: u64,
    ) -> Vec<Genome> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let mut g = start.clone();
                op.mutate(&mut g, space, &OpCtx::new(generation, 80), &mut rng);
                g
            })
            .collect()
    }

    #[test]
    fn importance_skews_gene_selection() {
        let s = space();
        let hints = HintSet::for_metric("m")
            .importance("a", 100)
            .unwrap()
            .importance("b", 1)
            .unwrap()
            .importance("c", 1)
            .unwrap()
            .confidence(Confidence::new(1.0).unwrap())
            .build();
        let op = GuidedMutation::resolve(&hints, &s, Direction::Maximize).unwrap().with_rate(1.0);
        let start = Genome::from_genes(vec![5, 5, 1]);
        let out = mutate_many(&op, &s, &start, 0, 4000, 1);
        let a_moves = out.iter().filter(|g| g.gene_at(0) != 5).count();
        let b_moves = out.iter().filter(|g| g.gene_at(1) != 5).count();
        assert!(a_moves > 8 * b_moves.max(1), "importance not respected: a={a_moves} b={b_moves}");
    }

    #[test]
    fn positive_bias_moves_gene_upward_when_maximizing() {
        let s = space();
        let hints = HintSet::for_metric("m")
            .bias("a", 0.9)
            .unwrap()
            .confidence(Confidence::new(1.0).unwrap())
            .build();
        let op = GuidedMutation::resolve(&hints, &s, Direction::Maximize).unwrap().with_rate(1.0);
        let start = Genome::from_genes(vec![5, 5, 1]);
        let out = mutate_many(&op, &s, &start, 0, 4000, 2);
        let up = out.iter().filter(|g| g.gene_at(0) > 5).count();
        let down = out.iter().filter(|g| g.gene_at(0) < 5).count();
        assert!(up > 3 * down, "bias not steering upward: up={up} down={down}");
    }

    #[test]
    fn positive_bias_moves_gene_downward_when_minimizing() {
        let s = space();
        let hints = HintSet::for_metric("m")
            .bias("a", 0.9)
            .unwrap()
            .confidence(Confidence::new(1.0).unwrap())
            .build();
        let op = GuidedMutation::resolve(&hints, &s, Direction::Minimize).unwrap().with_rate(1.0);
        let start = Genome::from_genes(vec![5, 5, 1]);
        let out = mutate_many(&op, &s, &start, 0, 4000, 3);
        let up = out.iter().filter(|g| g.gene_at(0) > 5).count();
        let down = out.iter().filter(|g| g.gene_at(0) < 5).count();
        assert!(down > 3 * up, "direction flip broken: up={up} down={down}");
    }

    #[test]
    fn target_pulls_values_toward_it() {
        let s = space();
        let hints = HintSet::for_metric("m")
            .target("a", ParamValue::Int(8))
            .unwrap()
            .confidence(Confidence::new(1.0).unwrap())
            .build();
        let op = GuidedMutation::resolve(&hints, &s, Direction::Minimize).unwrap().with_rate(1.0);
        let start = Genome::from_genes(vec![1, 5, 1]);
        let out = mutate_many(&op, &s, &start, 0, 4000, 4);
        let moved: Vec<u32> = out.iter().map(|g| g.gene_at(0)).filter(|&v| v != 1).collect();
        assert!(!moved.is_empty());
        let near = moved.iter().filter(|&&v| (6..=9).contains(&v)).count();
        let frac = near as f64 / moved.len() as f64;
        assert!(frac > 0.8, "target pull too weak: {frac}");
    }

    #[test]
    fn unordered_categorical_target_jumps_directly() {
        let s = space();
        let hints = HintSet::for_metric("m")
            .target("c", ParamValue::Sym("z".into()))
            .unwrap()
            .confidence(Confidence::new(1.0).unwrap())
            .build();
        let op = GuidedMutation::resolve(&hints, &s, Direction::Minimize).unwrap().with_rate(1.0);
        let start = Genome::from_genes(vec![0, 0, 0]);
        let out = mutate_many(&op, &s, &start, 0, 2000, 5);
        let moved: Vec<u32> = out.iter().map(|g| g.gene_at(2)).filter(|&v| v != 0).collect();
        let to_target = moved.iter().filter(|&&v| v == 2).count();
        assert!(
            to_target as f64 / moved.len().max(1) as f64 > 0.95,
            "unordered target should jump to the target"
        );
    }

    #[test]
    fn ordering_hint_gives_bias_an_axis_on_categoricals() {
        let s = space();
        // Order z < x < y along the metric; positive bias + maximize should
        // therefore pull toward y (domain index 1).
        let hints = HintSet::for_metric("m")
            .ordering("c", [2, 0, 1])
            .bias("c", 1.0)
            .unwrap()
            .confidence(Confidence::new(1.0).unwrap())
            .build();
        let op = GuidedMutation::resolve(&hints, &s, Direction::Maximize).unwrap().with_rate(1.0);
        let start = Genome::from_genes(vec![0, 0, 0]); // c = "x" (middle rank)
        let out = mutate_many(&op, &s, &start, 0, 4000, 6);
        let to_y = out.iter().filter(|g| g.gene_at(2) == 1).count();
        let to_z = out.iter().filter(|g| g.gene_at(2) == 2).count();
        assert!(to_y > 3 * to_z.max(1), "ordering+bias broken: y={to_y} z={to_z}");
    }

    #[test]
    fn bias_without_ordering_on_categorical_is_inert() {
        let s = space();
        let hints = HintSet::for_metric("m")
            .bias("c", 1.0)
            .unwrap()
            .confidence(Confidence::new(1.0).unwrap())
            .build();
        let op = GuidedMutation::resolve(&hints, &s, Direction::Maximize).unwrap().with_rate(1.0);
        let start = Genome::from_genes(vec![0, 0, 0]);
        let out = mutate_many(&op, &s, &start, 0, 6000, 7);
        let to_y = out.iter().filter(|g| g.gene_at(2) == 1).count();
        let to_z = out.iter().filter(|g| g.gene_at(2) == 2).count();
        let ratio = to_y as f64 / to_z.max(1) as f64;
        assert!((0.85..1.18).contains(&ratio), "should be uniform: {ratio}");
    }

    #[test]
    fn zero_confidence_behaves_like_baseline() {
        let s = space();
        let hints = HintSet::for_metric("m")
            .importance("a", 100)
            .unwrap()
            .bias("a", 1.0)
            .unwrap()
            .confidence(Confidence::new(0.0).unwrap())
            .build();
        let op = GuidedMutation::resolve(&hints, &s, Direction::Maximize).unwrap().with_rate(1.0);
        let start = Genome::from_genes(vec![5, 5, 1]);
        let out = mutate_many(&op, &s, &start, 0, 6000, 8);
        // Gene selection must be uniform: all genes mutate equally often.
        let a_moves = out.iter().filter(|g| g.gene_at(0) != 5).count();
        let b_moves = out.iter().filter(|g| g.gene_at(1) != 5).count();
        let ratio = a_moves as f64 / b_moves as f64;
        assert!((0.9..1.1).contains(&ratio), "gene pick not uniform: {ratio}");
        // Value assignment must be uniform: up vs down balanced.
        let up = out.iter().filter(|g| g.gene_at(0) > 5).count();
        let down = out.iter().filter(|g| g.gene_at(0) < 5).count();
        let ud = up as f64 / down as f64;
        // At a=5 there are 4 values above and 5 below, so uniform ~ 4/5.
        assert!((0.65..0.95).contains(&ud), "values not uniform: {ud}");
    }

    #[test]
    fn decay_flattens_importance_over_generations() {
        let s = space();
        let hints = HintSet::for_metric("m")
            .importance("a", 100)
            .unwrap()
            .decay("a", 0.9)
            .unwrap()
            .importance("b", 1)
            .unwrap()
            .confidence(Confidence::new(1.0).unwrap())
            .build();
        let op = GuidedMutation::resolve(&hints, &s, Direction::Maximize).unwrap();
        let early = op.weights(0);
        let late = op.weights(60);
        assert!(early[0] / early[1] > 50.0, "early skew missing: {early:?}");
        assert!(late[0] / late[1] < 3.0, "decay not applied: {late:?}");
        // Undecayed parameters keep their weight.
        assert_eq!(early[1], late[1]);
    }

    #[test]
    fn max_step_limits_travel() {
        let s = space();
        let hints = HintSet::for_metric("m")
            .bias("a", 1.0)
            .unwrap()
            .max_step("a", 1)
            .confidence(Confidence::new(1.0).unwrap())
            .build();
        let op = GuidedMutation::resolve(&hints, &s, Direction::Maximize).unwrap().with_rate(1.0);
        let start = Genome::from_genes(vec![5, 5, 1]);
        let out = mutate_many(&op, &s, &start, 0, 2000, 9);
        for g in &out {
            let a = g.gene_at(0) as i64;
            // Each guided move is clamped to +-1, and one mutate() call runs
            // at most num_params (3) trials, so total travel <= 3.
            assert!((a - 5).abs() <= 3, "travel exceeded: {a}");
        }
        // Single-trial distance is limited to 1: with rate 1.0 over 3 genes
        // the average displacement stays small.
        let mean_abs: f64 =
            out.iter().map(|g| (g.gene_at(0) as f64 - 5.0).abs()).sum::<f64>() / out.len() as f64;
        assert!(mean_abs <= 1.2, "mean travel {mean_abs}");
    }

    #[test]
    fn mutation_respects_space_bounds_always() {
        let s = space();
        let hints = HintSet::for_metric("m")
            .bias("a", 1.0)
            .unwrap()
            .target("b", ParamValue::Int(9))
            .unwrap()
            .ordering("c", [2, 1, 0])
            .bias("c", -1.0)
            .unwrap()
            .confidence(Confidence::new(0.8).unwrap())
            .build();
        let op = GuidedMutation::resolve(&hints, &s, Direction::Minimize).unwrap().with_rate(1.0);
        let mut rng = StdRng::seed_from_u64(10);
        let mut g = Genome::from_genes(vec![9, 0, 2]);
        for gen in 0..500 {
            op.mutate(&mut g, &s, &OpCtx::new(gen % 80, 80), &mut rng);
            assert!(s.contains(&g), "left the space: {g}");
        }
    }

    #[test]
    fn guided_mutation_reports_hint_kinds_and_decay() {
        let s = space();
        let hints = HintSet::for_metric("m")
            .bias("a", 1.0)
            .unwrap()
            .target("b", ParamValue::Int(9))
            .unwrap()
            .confidence(Confidence::new(1.0).unwrap())
            .build();
        let op = GuidedMutation::resolve(&hints, &s, Direction::Maximize).unwrap().with_rate(1.0);
        let sink = nautilus_obs::InMemorySink::new();
        let mut rng = StdRng::seed_from_u64(30);
        let mut g = Genome::from_genes(vec![5, 5, 1]);
        for _ in 0..100 {
            op.mutate(&mut g, &s, &OpCtx::with_observer(3, 80, &sink), &mut rng);
        }
        let events = sink.events();
        let decays: Vec<_> =
            events.iter().filter(|e| matches!(e, SearchEvent::ImportanceDecayed { .. })).collect();
        assert_eq!(decays.len(), 1, "one decay event per generation, not per call");
        match decays[0] {
            SearchEvent::ImportanceDecayed { generation, min_weight, max_weight, .. } => {
                assert_eq!(*generation, 3);
                assert!(min_weight <= max_weight);
            }
            _ => unreachable!(),
        }
        // At confidence 1.0: biased "a" -> Bias, targeted "b" -> Target,
        // unhinted "c" -> Uniform; Fallback requires a declined gate.
        let mut kind_of = std::collections::HashMap::new();
        for e in &events {
            if let SearchEvent::MutationHintApplied { param, hint_kind, .. } = e {
                kind_of.entry(*param).or_insert_with(Vec::new).push(*hint_kind);
            }
        }
        assert!(kind_of[&0].iter().all(|k| *k == HintKind::Bias));
        assert!(kind_of[&1].iter().all(|k| *k == HintKind::Target));
        assert!(kind_of[&2].iter().all(|k| *k == HintKind::Uniform));
    }

    #[test]
    fn declined_confidence_gate_reports_fallback() {
        let s = space();
        let hints = HintSet::for_metric("m")
            .bias("a", 1.0)
            .unwrap()
            .confidence(Confidence::new(0.0).unwrap())
            .build();
        let op = GuidedMutation::resolve(&hints, &s, Direction::Maximize).unwrap().with_rate(1.0);
        let sink = nautilus_obs::InMemorySink::new();
        let mut rng = StdRng::seed_from_u64(31);
        let mut g = Genome::from_genes(vec![5, 5, 1]);
        for _ in 0..50 {
            op.mutate(&mut g, &s, &OpCtx::with_observer(0, 80, &sink), &mut rng);
        }
        let fallbacks = sink
            .events()
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    SearchEvent::MutationHintApplied {
                        param: 0,
                        hint_kind: HintKind::Fallback,
                        ..
                    }
                )
            })
            .count();
        assert!(fallbacks > 0, "confidence 0 must gate every guided decision off");
    }

    #[test]
    fn resolve_rejects_invalid_hints() {
        let s = space();
        let unknown = HintSet::for_metric("m").importance("zz", 10).unwrap().build();
        assert!(GuidedMutation::resolve(&unknown, &s, Direction::Maximize).is_err());
    }

    #[test]
    fn operator_reports_its_name() {
        let s = space();
        let hints = HintSet::for_metric("m").build();
        let op = GuidedMutation::resolve(&hints, &s, Direction::Maximize).unwrap();
        assert_eq!(op.name(), "nautilus-guided");
        assert!((op.confidence() - 0.5).abs() < 1e-12, "hint-set confidence adopted");
    }

    #[test]
    fn param_id_from_index_helper() {
        let s = space();
        assert!(ParamId::try_from_index(&s, 2).is_some());
        assert!(ParamId::try_from_index(&s, 3).is_none());
    }

    #[test]
    fn guided_crossover_preserves_important_genes() {
        let s = space();
        let hints = HintSet::for_metric("m")
            .importance("a", 100)
            .unwrap()
            .importance("b", 1)
            .unwrap()
            .confidence(Confidence::new(1.0).unwrap())
            .build();
        let op = GuidedCrossover::resolve(&hints, &s).unwrap();
        let pa = Genome::from_genes(vec![0, 0, 0]);
        let pb = Genome::from_genes(vec![9, 9, 2]);
        let mut rng = StdRng::seed_from_u64(21);
        let mut a_swaps = 0;
        let mut b_swaps = 0;
        let n = 4000;
        for _ in 0..n {
            let (ca, _) = op.crossover(&pa, &pb, &s, &OpCtx::new(0, 80), &mut rng);
            if ca.gene_at(0) == 9 {
                a_swaps += 1;
            }
            if ca.gene_at(1) == 9 {
                b_swaps += 1;
            }
        }
        // Important gene "a" swaps (almost) never; unimportant "b" ~50%.
        assert!(a_swaps < n / 50, "important gene swapped {a_swaps} times");
        let b_rate = f64::from(b_swaps) / f64::from(n);
        assert!((0.4..0.6).contains(&b_rate), "b swap rate {b_rate}");
    }

    #[test]
    fn guided_crossover_zero_confidence_is_uniform() {
        let s = space();
        let hints = HintSet::for_metric("m")
            .importance("a", 100)
            .unwrap()
            .confidence(Confidence::new(0.0).unwrap())
            .build();
        let op = GuidedCrossover::resolve(&hints, &s).unwrap();
        let pa = Genome::from_genes(vec![0, 0, 0]);
        let pb = Genome::from_genes(vec![9, 9, 2]);
        let mut rng = StdRng::seed_from_u64(22);
        let mut a_swaps = 0;
        let n = 4000;
        for _ in 0..n {
            let (ca, _) = op.crossover(&pa, &pb, &s, &OpCtx::new(0, 80), &mut rng);
            if ca.gene_at(0) == 9 {
                a_swaps += 1;
            }
        }
        let rate = f64::from(a_swaps) / f64::from(n);
        assert!((0.45..0.55).contains(&rate), "rate {rate}");
    }

    #[test]
    fn guided_crossover_conserves_gene_pool() {
        let s = space();
        let hints = HintSet::for_metric("m").importance("a", 80).unwrap().build();
        let op = GuidedCrossover::resolve(&hints, &s).unwrap();
        let mut rng = StdRng::seed_from_u64(23);
        for _ in 0..200 {
            let pa = s.random_genome(&mut rng);
            let pb = s.random_genome(&mut rng);
            let (ca, cb) = op.crossover(&pa, &pb, &s, &OpCtx::new(3, 80), &mut rng);
            for i in 0..pa.len() {
                let parents = [pa.gene_at(i), pb.gene_at(i)];
                let kids = [ca.gene_at(i), cb.gene_at(i)];
                assert!(kids == parents || kids == [parents[1], parents[0]]);
            }
        }
        assert_eq!(op.name(), "nautilus-guided-crossover");
    }
}
