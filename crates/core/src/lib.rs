//! # nautilus — guided genetic-algorithm IP design-space exploration
//!
//! A from-scratch reproduction of *"Nautilus: Fast Automated IP Design Space
//! Search Using Guided Genetic Algorithms"* (Papamichael, Milder, Hoe —
//! DAC 2015). Nautilus embeds a genetic algorithm into a hardware IP
//! generator and lets the IP **author** ship domain knowledge ("hints")
//! that steers the search, reaching the same quality of results as an
//! oblivious GA with up to an order of magnitude fewer synthesis jobs.
//!
//! ## Pieces
//!
//! * [`HintSet`] / [`HintBook`] — the paper's hint taxonomy: importance,
//!   importance decay, bias xor target per parameter, plus auxiliary value
//!   orderings and stepping limits, under a global [`Confidence`] knob.
//! * [`GuidedMutation`] — the guided genetic operator: importance-weighted
//!   gene selection (with decay scheduling) and bias/target-steered value
//!   assignment, confidence-gated so the search stays stochastic.
//! * [`Query`] — what the IP user asks for: maximize/minimize a raw or
//!   composite [`nautilus_synth::MetricExpr`], with optional constraints.
//! * [`Nautilus`] — the engine: baseline or guided runs over any
//!   [`nautilus_synth::CostModel`], every evaluation accounted as a
//!   synthesis job.
//! * [`estimate_hints`] — the paper's non-expert path: estimate hints by
//!   synthesizing a small sample (default 80 designs) and observing trends.
//! * [`compare`] — the evaluation harness: strategies × runs in parallel,
//!   averaged traces, convergence-cost ratios.
//! * [`random_search`] / [`brute_force`] — the naive baselines.
//! * [`obs`] (re-exported `nautilus-obs`) — search telemetry: install a
//!   [`SearchObserver`] via [`Nautilus::with_observer`], stream JSONL with
//!   [`JsonlSink`], or aggregate a per-run [`RunReport`] with
//!   [`Nautilus::run_guided_reported`].
//!
//! ## Example
//!
//! ```
//! use nautilus::{Confidence, HintSet, Nautilus, Query};
//! use nautilus_ga::{Genome, ParamSpace};
//! use nautilus_synth::{CostModel, MetricCatalog, MetricExpr, MetricSet};
//!
//! // A toy IP generator: one metric ("cost"), two parameters.
//! #[derive(Debug)]
//! struct ToyIp {
//!     space: ParamSpace,
//!     catalog: MetricCatalog,
//! }
//! impl CostModel for ToyIp {
//!     fn name(&self) -> &str { "toy" }
//!     fn space(&self) -> &ParamSpace { &self.space }
//!     fn catalog(&self) -> &MetricCatalog { &self.catalog }
//!     fn evaluate(&self, g: &Genome) -> Option<MetricSet> {
//!         let cost = f64::from(g.gene_at(0)) * 10.0 + f64::from(g.gene_at(1));
//!         Some(self.catalog.set(vec![cost + 1.0]).unwrap())
//!     }
//! }
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let ip = ToyIp {
//!     space: ParamSpace::builder().int("a", 0, 15, 1).int("b", 0, 15, 1).build()?,
//!     catalog: MetricCatalog::new([("cost", "units")])?,
//! };
//!
//! // The IP author ships hints: `a` dominates and correlates positively.
//! let hints = HintSet::for_metric("cost")
//!     .importance("a", 90)?
//!     .bias("a", 1.0)?
//!     .bias("b", 1.0)?
//!     .build();
//!
//! let query = Query::minimize("cost", MetricExpr::metric(ip.catalog().require("cost")?));
//! let outcome = Nautilus::new(&ip).run_guided(&query, &hints, Some(Confidence::STRONG), 7)?;
//! println!("best cost {} after {} synthesis jobs", outcome.best_value, outcome.total_evals());
//! # Ok(()) }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod baselines;
mod compare;
mod engine;
mod error;
mod estimate;
mod guided;
mod hint;
mod local;
mod pareto;
mod query;
mod trace;

pub use baselines::{brute_force, random_search};
pub use compare::{
    compare, compare_observed, CompareConfig, Comparison, Strategy, StrategyKind, StrategyResult,
};
pub use engine::Nautilus;
pub use error::{NautilusError, Result};
pub use estimate::{estimate_hints, EstimateConfig, EstimatedHints};
pub use guided::{GuidedCrossover, GuidedMutation};
pub use hint::{
    Bias, Confidence, Decay, HintBook, HintSet, HintSetBuilder, Importance, ParamHint, ValueHint,
};
pub use local::{hill_climb, simulated_annealing, AnnealConfig};
pub use pareto::{
    dataset_front, dominance_filter, dominates, epsilon_constraint_front,
    epsilon_constraint_front_observed, Objective, ParetoPoint,
};
pub use query::{Constraint, ConstraintOp, Query};
pub use trace::{average_traces, AvgTracePoint, ReachStats, SearchOutcome, TracePoint};

/// The observability layer, re-exported so downstream users need not
/// depend on `nautilus-obs` directly: install a [`SearchObserver`] with
/// [`Nautilus::with_observer`], stream events with [`JsonlSink`] or
/// [`InMemorySink`], and aggregate with [`ReportBuilder`] / [`RunReport`].
pub use nautilus_obs as obs;
pub use nautilus_obs::{
    FailureKind, Fanout, FaultTally, InMemorySink, JsonlSink, MetricsRegistry, MetricsSink,
    ReportBuilder, RunReport, SearchEvent, SearchObserver,
};

/// Fault-tolerant evaluation, re-exported from `nautilus-ga` /
/// `nautilus-synth`: configure retries with
/// [`Nautilus::with_retry_policy`], inject deterministic chaos with
/// [`Nautilus::with_fault_plan`], and read the run's [`FaultStats`] off
/// [`SearchOutcome::faults`](SearchOutcome).
pub use nautilus_ga::{EvalFailure, FallibleEvaluator, FaultStats, RetryPolicy};
pub use nautilus_synth::{FaultPlan, FaultyEvaluator, InjectedFault};

pub use nautilus_obs::SubprocessTally;
/// Out-of-process evaluation, re-exported from `nautilus-proc`: point
/// [`Nautilus::with_subprocess_evaluator`] at any binary speaking the
/// `NAUTPROC` framing (see [`proc`]) and every design is synthesized by
/// an external tool process — with kill-on-timeout, respawn-with-backoff,
/// and child failures mapped onto the engine's [`EvalFailure`] taxonomy.
/// The run's child-lifecycle tallies surface in
/// [`RunReport::subprocess`](RunReport) ([`SubprocessTally`]).
pub use nautilus_proc as proc;
pub use nautilus_proc::{ProcError, SubprocessConfig, SubprocessEvaluator, SubprocessStats};

/// Supervised evaluation, re-exported from `nautilus-ga` / `nautilus-obs`:
/// enable a watchdog deadline, straggler hedging and a circuit breaker with
/// [`Nautilus::with_supervision`], and read the intervention counters off
/// [`SearchOutcome::health`](SearchOutcome). [`HealthState`] names the
/// breaker states surfaced in telemetry and [`RunReport`]s.
pub use nautilus_ga::{
    BreakerPolicy, HedgePolicy, SupervisePolicy, SuperviseStats, WatchdogPolicy,
};
pub use nautilus_obs::{HealthState, HealthTally};

/// Time-attribution profiling, re-exported from `nautilus-obs`: attach a
/// [`Tracer`] with [`Nautilus::with_tracer`], export a Chrome/Perfetto
/// timeline with [`TraceSink`], and read per-[`Phase`] [`PhaseStat`]
/// attribution off a reported run's [`RunReport::phases`](RunReport).
pub use nautilus_obs::{Phase, PhaseStat, TraceSink, Tracer};

/// Crash-safe search, re-exported from `nautilus-ga`: cap runs with
/// [`Nautilus::with_budget`], persist state with
/// [`Nautilus::with_checkpoints`], continue interrupted searches with
/// [`Nautilus::resume_from`], and read why a run stopped off
/// [`SearchOutcome::stop`](SearchOutcome).
pub use nautilus_ga::{
    BudgetTimer, CheckpointError, CheckpointStore, Recovery, RunBudget, SearchState, SharedClock,
    StopReason,
};

/// Hostile-environment hardening, re-exported from `nautilus-ga`: route
/// durable writes through a [`DurableIo`] handle armed with a seeded
/// [`IoFaultPlan`] (via [`Nautilus::with_checkpoint_io`]) to inject
/// ENOSPC, fsync, rename, torn-write and dir-fsync failures at chosen
/// write points and prove typed-error-or-byte-exact-recovery behavior.
pub use nautilus_ga::{DurableIo, IoFaultKind, IoFaultPlan, WritePoint};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<HintSet>();
        assert_send_sync::<HintBook>();
        assert_send_sync::<GuidedMutation>();
        assert_send_sync::<Query>();
        assert_send_sync::<SearchOutcome>();
        assert_send_sync::<NautilusError>();
        assert_send_sync::<Strategy>();
    }
}
