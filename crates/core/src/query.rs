//! Optimization queries: what the IP user asks Nautilus for.
//!
//! A query names an objective (a [`MetricExpr`] plus a direction) and
//! optional constraints that fence off uninteresting regions of the design
//! space ("the fitness function ... can also be adapted to constrain the
//! algorithm to only explore specific portions of the solution space").

use std::fmt;

use serde::{Deserialize, Serialize};

use nautilus_ga::Direction;
use nautilus_synth::{MetricCatalog, MetricExpr, MetricSet};

/// Comparison operator of a [`Constraint`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConstraintOp {
    /// Expression must be `<=` the bound.
    Le,
    /// Expression must be `>=` the bound.
    Ge,
}

impl fmt::Display for ConstraintOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ConstraintOp::Le => "<=",
            ConstraintOp::Ge => ">=",
        })
    }
}

/// A hard constraint on a metric expression.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Constraint {
    expr: MetricExpr,
    op: ConstraintOp,
    bound: f64,
}

impl Constraint {
    /// Creates `expr op bound`.
    #[must_use]
    pub fn new(expr: MetricExpr, op: ConstraintOp, bound: f64) -> Self {
        Constraint { expr, op, bound }
    }

    /// Whether `metrics` satisfies the constraint.
    #[must_use]
    pub fn is_satisfied(&self, metrics: &MetricSet) -> bool {
        let v = self.expr.eval(metrics);
        if !v.is_finite() {
            return false;
        }
        match self.op {
            ConstraintOp::Le => v <= self.bound,
            ConstraintOp::Ge => v >= self.bound,
        }
    }
}

/// An optimization query over one IP generator's metric catalog.
///
/// ```
/// use nautilus::Query;
/// use nautilus_synth::{MetricCatalog, MetricExpr};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let catalog = MetricCatalog::new([("luts", "LUTs"), ("msps", "MSPS")])?;
/// let luts = MetricExpr::metric(catalog.require("luts")?);
/// let msps = MetricExpr::metric(catalog.require("msps")?);
///
/// // The paper's Figure 7 objective: throughput per LUT.
/// let query = Query::maximize("throughput_per_lut", msps / luts);
/// assert_eq!(query.name(), "throughput_per_lut");
/// # Ok(()) }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Query {
    name: String,
    expr: MetricExpr,
    direction: Direction,
    constraints: Vec<Constraint>,
}

impl Query {
    /// A query that maximizes `expr`.
    #[must_use]
    pub fn maximize(name: impl Into<String>, expr: MetricExpr) -> Self {
        Query { name: name.into(), expr, direction: Direction::Maximize, constraints: Vec::new() }
    }

    /// A query that minimizes `expr`.
    #[must_use]
    pub fn minimize(name: impl Into<String>, expr: MetricExpr) -> Self {
        Query { name: name.into(), expr, direction: Direction::Minimize, constraints: Vec::new() }
    }

    /// A query with a runtime-chosen direction (useful when sweeping
    /// objectives programmatically).
    #[must_use]
    pub fn maximize_or_minimize(
        name: impl Into<String>,
        expr: MetricExpr,
        direction: Direction,
    ) -> Self {
        Query { name: name.into(), expr, direction, constraints: Vec::new() }
    }

    /// Adds a hard constraint; violating designs are treated as infeasible.
    #[must_use]
    pub fn with_constraint(mut self, expr: MetricExpr, op: ConstraintOp, bound: f64) -> Self {
        self.constraints.push(Constraint::new(expr, op, bound));
        self
    }

    /// The query's name (also the key used to look up hint sets).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The objective expression.
    #[must_use]
    pub fn expr(&self) -> &MetricExpr {
        &self.expr
    }

    /// The optimization direction.
    #[must_use]
    pub fn direction(&self) -> Direction {
        self.direction
    }

    /// The constraints.
    #[must_use]
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Evaluates the objective for one design's metrics.
    ///
    /// Returns `None` when a constraint is violated or the objective is
    /// non-finite — both are treated as infeasible by the search.
    #[must_use]
    pub fn objective(&self, metrics: &MetricSet) -> Option<f64> {
        if !self.constraints.iter().all(|c| c.is_satisfied(metrics)) {
            return None;
        }
        let v = self.expr.eval(metrics);
        v.is_finite().then_some(v)
    }

    /// Renders the query against `catalog` for reports.
    #[must_use]
    pub fn describe(&self, catalog: &MetricCatalog) -> String {
        let verb = match self.direction {
            Direction::Maximize => "maximize",
            Direction::Minimize => "minimize",
        };
        let mut s = format!("{verb} {}", self.expr.display_with(catalog));
        for c in &self.constraints {
            s.push_str(&format!(" s.t. {} {} {}", c.expr.display_with(catalog), c.op, c.bound));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> (MetricCatalog, MetricSet) {
        let c = MetricCatalog::new([("luts", "LUTs"), ("fmax", "MHz")]).unwrap();
        let m = c.set(vec![800.0, 150.0]).unwrap();
        (c, m)
    }

    #[test]
    fn objective_evaluates_expression() {
        let (c, m) = fixture();
        let q = Query::minimize("area", MetricExpr::metric(c.id("luts").unwrap()));
        assert_eq!(q.objective(&m), Some(800.0));
        assert_eq!(q.direction(), Direction::Minimize);
    }

    #[test]
    fn violated_constraints_make_points_infeasible() {
        let (c, m) = fixture();
        let luts = MetricExpr::metric(c.id("luts").unwrap());
        let fmax = MetricExpr::metric(c.id("fmax").unwrap());
        let q = Query::minimize("area", luts.clone()).with_constraint(
            fmax.clone(),
            ConstraintOp::Ge,
            100.0,
        );
        assert_eq!(q.objective(&m), Some(800.0));
        let q2 =
            Query::minimize("area", luts.clone()).with_constraint(fmax, ConstraintOp::Ge, 200.0);
        assert_eq!(q2.objective(&m), None);
        let q3 =
            Query::minimize("area", luts.clone()).with_constraint(luts, ConstraintOp::Le, 500.0);
        assert_eq!(q3.objective(&m), None);
    }

    #[test]
    fn non_finite_objective_is_infeasible() {
        let (c, _) = fixture();
        let m = c.set(vec![0.0, 150.0]).unwrap();
        let q = Query::maximize(
            "inv",
            MetricExpr::constant(1.0) / MetricExpr::metric(c.id("luts").unwrap()),
        );
        assert_eq!(q.objective(&m), None);
    }

    #[test]
    fn describe_renders_query() {
        let (c, _) = fixture();
        let luts = MetricExpr::metric(c.id("luts").unwrap());
        let fmax = MetricExpr::metric(c.id("fmax").unwrap());
        let q = Query::minimize("area", luts).with_constraint(fmax, ConstraintOp::Ge, 120.0);
        assert_eq!(q.describe(&c), "minimize luts s.t. fmax >= 120");
    }

    #[test]
    fn constraint_display_ops() {
        assert_eq!(ConstraintOp::Le.to_string(), "<=");
        assert_eq!(ConstraintOp::Ge.to_string(), ">=");
    }
}
