//! Multi-objective exploration: Pareto fronts via ε-constraint sweeps.
//!
//! The paper positions Nautilus against active-learning work that models
//! "the entire Pareto-optimal set of design points across a
//! multi-objective space" and argues that answering *one query at a time*
//! is cheaper. This module closes the loop: when an IP user does want a
//! front (say area vs. bandwidth), Nautilus can approximate it by running
//! a small sweep of constrained single-objective queries — each exactly
//! the kind of query the engine is built for — and dominance-filtering
//! the results.

use nautilus_ga::{Direction, Genome};
use nautilus_obs::{SearchEvent, SearchObserver};
use nautilus_synth::{CostModel, Dataset, JobStats, MetricExpr};

use crate::error::Result;
use crate::hint::{Confidence, HintSet};
use crate::query::{ConstraintOp, Query};
use crate::Nautilus;

/// One objective of a multi-objective exploration.
#[derive(Debug, Clone)]
pub struct Objective {
    /// Display name.
    pub name: String,
    /// The metric expression.
    pub expr: MetricExpr,
    /// Which way is better.
    pub direction: Direction,
}

impl Objective {
    /// Creates an objective.
    #[must_use]
    pub fn new(name: impl Into<String>, expr: MetricExpr, direction: Direction) -> Self {
        Objective { name: name.into(), expr, direction }
    }
}

/// A design point with its objective values, in objective order.
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoPoint {
    /// The design.
    pub genome: Genome,
    /// One value per objective.
    pub values: Vec<f64>,
}

/// Whether `a` dominates `b`: at least as good everywhere, strictly better
/// somewhere.
#[must_use]
pub fn dominates(a: &[f64], b: &[f64], objectives: &[Objective]) -> bool {
    assert_eq!(a.len(), b.len(), "value vectors must match objectives");
    assert_eq!(a.len(), objectives.len(), "value vectors must match objectives");
    let mut strictly_better = false;
    for ((&va, &vb), o) in a.iter().zip(b).zip(objectives) {
        if o.direction.is_better(vb, va) {
            return false;
        }
        if o.direction.is_better(va, vb) {
            strictly_better = true;
        }
    }
    strictly_better
}

/// Keeps only mutually non-dominated points (first occurrence wins ties).
#[must_use]
pub fn dominance_filter(points: Vec<ParetoPoint>, objectives: &[Objective]) -> Vec<ParetoPoint> {
    let mut front: Vec<ParetoPoint> = Vec::new();
    for p in points {
        if front.iter().any(|q| dominates(&q.values, &p.values, objectives) || q.values == p.values)
        {
            continue;
        }
        front.retain(|q| !dominates(&p.values, &q.values, objectives));
        front.push(p);
    }
    front
}

/// The exact Pareto front of a characterized dataset (ground truth for
/// evaluating approximations).
#[must_use]
pub fn dataset_front(dataset: &Dataset, objectives: &[Objective]) -> Vec<ParetoPoint> {
    let points = dataset
        .iter()
        .filter_map(|(g, m)| {
            let values: Vec<f64> = objectives.iter().map(|o| o.expr.eval(m)).collect();
            values.iter().all(|v| v.is_finite()).then(|| ParetoPoint { genome: g.clone(), values })
        })
        .collect();
    dominance_filter(points, objectives)
}

/// Approximates a two-objective Pareto front with an ε-constraint sweep.
///
/// Runs one unconstrained search per objective to bracket the second
/// objective's range, then `sweeps` searches optimizing the first
/// objective subject to progressively tighter bounds on the second. All
/// winning designs are dominance-filtered. Returns the front plus the
/// total synthesis-job accounting of the whole sweep.
///
/// Hints (if provided) must pertain to the *first* objective; the
/// constrained queries inherit them.
///
/// # Errors
///
/// Propagates search errors from the underlying engine.
///
/// # Panics
///
/// Panics unless exactly two objectives are given.
pub fn epsilon_constraint_front(
    model: &dyn CostModel,
    objectives: &[Objective],
    hints: Option<&HintSet>,
    sweeps: usize,
    seed: u64,
) -> Result<(Vec<ParetoPoint>, JobStats)> {
    epsilon_constraint_front_observed(model, objectives, hints, sweeps, seed, nautilus_obs::noop())
}

/// [`epsilon_constraint_front`], streaming telemetry to `observer`.
///
/// Each underlying search run emits its full event stream (the sweep shows
/// up as a sequence of `RunStart`/`RunEnd` pairs), and every time the
/// candidate front is re-filtered a [`SearchEvent::ParetoUpdated`] event
/// reports the current front size — so a live consumer can watch the front
/// grow as the sweep tightens its ε-bounds.
///
/// # Errors
///
/// As [`epsilon_constraint_front`].
///
/// # Panics
///
/// Panics unless exactly two objectives are given.
pub fn epsilon_constraint_front_observed<'a>(
    model: &'a dyn CostModel,
    objectives: &[Objective],
    hints: Option<&HintSet>,
    sweeps: usize,
    seed: u64,
    observer: &'a dyn SearchObserver,
) -> Result<(Vec<ParetoPoint>, JobStats)> {
    assert_eq!(objectives.len(), 2, "epsilon-constraint sweep is two-objective");
    let (primary, secondary) = (&objectives[0], &objectives[1]);
    let engine = Nautilus::new(model).with_observer(observer);
    let front_update = |candidates: &[ParetoPoint]| {
        if observer.enabled() {
            let size = dominance_filter(candidates.to_vec(), objectives).len();
            observer.on_event(&SearchEvent::ParetoUpdated { size });
        }
    };
    let mut total = JobStats::default();
    let mut candidates: Vec<ParetoPoint> = Vec::new();

    let run = |query: &Query, seed: u64, total: &mut JobStats| -> Result<Option<Genome>> {
        let outcome = match hints {
            Some(h) => engine.run_guided(query, h, Some(Confidence::WEAK), seed),
            None => engine.run_baseline(query, seed),
        };
        match outcome {
            Ok(o) => {
                total.jobs += o.jobs.jobs;
                total.infeasible += o.jobs.infeasible;
                total.cache_hits += o.jobs.cache_hits;
                total.simulated_tool_secs += o.jobs.simulated_tool_secs;
                Ok(Some(o.best_genome))
            }
            // A constraint bound can make the whole space infeasible; that
            // sweep step simply contributes nothing.
            Err(crate::error::NautilusError::Ga(nautilus_ga::GaError::NoFeasibleGenome {
                ..
            })) => Ok(None),
            Err(e) => Err(e),
        }
    };

    let push = |g: Genome, candidates: &mut Vec<ParetoPoint>| {
        if let Some(m) = model.evaluate(&g) {
            let values: Vec<f64> = objectives.iter().map(|o| o.expr.eval(&m)).collect();
            if values.iter().all(|v| v.is_finite()) {
                candidates.push(ParetoPoint { genome: g, values });
            }
        }
    };

    // Bracket the secondary objective's reachable range.
    let q_primary =
        Query::maximize_or_minimize(&primary.name, primary.expr.clone(), primary.direction);
    let q_secondary =
        Query::maximize_or_minimize(&secondary.name, secondary.expr.clone(), secondary.direction);
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for (i, q) in [&q_primary, &q_secondary].iter().enumerate() {
        if let Some(g) = run(q, seed.wrapping_add(i as u64), &mut total)? {
            if let Some(m) = model.evaluate(&g) {
                let v = secondary.expr.eval(&m);
                lo = lo.min(v);
                hi = hi.max(v);
            }
            push(g, &mut candidates);
        }
    }
    front_update(&candidates);
    if !lo.is_finite() || !hi.is_finite() || sweeps == 0 {
        return Ok((dominance_filter(candidates, objectives), total));
    }

    // ε-constraint sweep across the secondary range.
    for k in 0..sweeps {
        let frac = (k as f64 + 1.0) / (sweeps as f64 + 1.0);
        let bound = lo + (hi - lo) * frac;
        let op = match secondary.direction {
            Direction::Minimize => ConstraintOp::Le,
            Direction::Maximize => ConstraintOp::Ge,
        };
        let q = Query::maximize_or_minimize(
            format!("{}|{}@{bound:.3}", primary.name, secondary.name),
            primary.expr.clone(),
            primary.direction,
        )
        .with_constraint(secondary.expr.clone(), op, bound);
        if let Some(g) = run(&q, seed.wrapping_add(100 + k as u64), &mut total)? {
            push(g, &mut candidates);
            front_update(&candidates);
        }
    }

    Ok((dominance_filter(candidates, objectives), total))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nautilus_ga::ParamSpace;
    use nautilus_synth::{MetricCatalog, MetricSet};

    fn obj(name: &str, id: nautilus_synth::MetricId, dir: Direction) -> Objective {
        Objective::new(name, MetricExpr::metric(id), dir)
    }

    /// A model with an explicit trade-off: cost = x, gain = x - y*y/20
    /// (higher x costs more but also yields more; y is pure waste).
    #[derive(Debug)]
    struct TradeOff {
        space: ParamSpace,
        catalog: MetricCatalog,
    }

    impl TradeOff {
        fn new() -> Self {
            TradeOff {
                space: ParamSpace::builder().int("x", 0, 30, 1).int("y", 0, 10, 1).build().unwrap(),
                catalog: MetricCatalog::new([("cost", "u"), ("gain", "u")]).unwrap(),
            }
        }
    }

    impl CostModel for TradeOff {
        fn name(&self) -> &str {
            "tradeoff"
        }
        fn space(&self) -> &ParamSpace {
            &self.space
        }
        fn catalog(&self) -> &MetricCatalog {
            &self.catalog
        }
        fn evaluate(&self, g: &Genome) -> Option<MetricSet> {
            let x = f64::from(g.gene_at(0));
            let y = f64::from(g.gene_at(1));
            Some(self.catalog.set(vec![x + 1.0, x - y * y / 20.0]).unwrap())
        }
    }

    fn objectives(model: &TradeOff) -> Vec<Objective> {
        vec![
            obj("gain", model.catalog.require("gain").unwrap(), Direction::Maximize),
            obj("cost", model.catalog.require("cost").unwrap(), Direction::Minimize),
        ]
    }

    #[test]
    fn dominance_relation() {
        let model = TradeOff::new();
        let objs = objectives(&model);
        // gain maximized, cost minimized.
        assert!(dominates(&[5.0, 2.0], &[4.0, 3.0], &objs));
        assert!(!dominates(&[4.0, 3.0], &[5.0, 2.0], &objs));
        assert!(!dominates(&[5.0, 3.0], &[4.0, 2.0], &objs), "trade-off: no dominance");
        assert!(!dominates(&[5.0, 2.0], &[5.0, 2.0], &objs), "equal: no strict dominance");
    }

    #[test]
    fn filter_keeps_only_the_front() {
        let model = TradeOff::new();
        let objs = objectives(&model);
        let mk = |g: f64, c: f64| ParetoPoint {
            genome: Genome::from_genes(vec![0, 0]),
            values: vec![g, c],
        };
        let front = dominance_filter(
            vec![mk(5.0, 5.0), mk(3.0, 2.0), mk(4.0, 5.0), mk(1.0, 1.0), mk(3.0, 2.0)],
            &objs,
        );
        let values: Vec<Vec<f64>> = front.iter().map(|p| p.values.clone()).collect();
        assert_eq!(values, vec![vec![5.0, 5.0], vec![3.0, 2.0], vec![1.0, 1.0]]);
    }

    #[test]
    fn dataset_front_is_exact_and_non_dominated() {
        let model = TradeOff::new();
        let objs = objectives(&model);
        let dataset = Dataset::characterize(&model, 2).unwrap();
        let front = dataset_front(&dataset, &objs);
        // True front: y = 0, all x (gain = x, cost = x + 1) -> 31 points.
        assert_eq!(front.len(), 31);
        for p in &front {
            assert_eq!(p.genome.gene_at(1), 0, "front points waste nothing");
        }
        for a in &front {
            for b in &front {
                assert!(!dominates(&a.values, &b.values, &objs) || a == b);
            }
        }
    }

    #[test]
    fn epsilon_sweep_approximates_the_front() {
        let model = TradeOff::new();
        let objs = objectives(&model);
        let (front, jobs) = epsilon_constraint_front(&model, &objs, None, 6, 77).unwrap();
        assert!(front.len() >= 3, "front too sparse: {}", front.len());
        assert!(jobs.jobs > 0);
        // Every approximated point must lie on or near the true front:
        // y == 0 is exact; y <= 2 tolerates search noise.
        for p in &front {
            assert!(p.genome.gene_at(1) <= 2, "far from front: {}", p.genome);
        }
        // Mutually non-dominated by construction.
        for a in &front {
            for b in &front {
                assert!(!dominates(&a.values, &b.values, &objs) || a == b);
            }
        }
    }

    #[test]
    fn observed_sweep_streams_pareto_updates() {
        use nautilus_obs::InMemorySink;

        let model = TradeOff::new();
        let objs = objectives(&model);
        let sink = InMemorySink::new();
        let (front, jobs) =
            epsilon_constraint_front_observed(&model, &objs, None, 4, 5, &sink).unwrap();
        let (plain, _) = epsilon_constraint_front(&model, &objs, None, 4, 5).unwrap();
        assert_eq!(front, plain, "observation must not perturb the sweep");

        let events = sink.events();
        let sizes: Vec<usize> = events
            .iter()
            .filter_map(|e| match e {
                SearchEvent::ParetoUpdated { size } => Some(*size),
                _ => None,
            })
            .collect();
        assert!(!sizes.is_empty(), "sweep emits front-size updates");
        assert_eq!(*sizes.last().unwrap(), front.len(), "last update is the final front");
        // The underlying engine runs stream through the same observer: one
        // RunStart/RunEnd pair per bracketing or sweep search.
        let runs = events.iter().filter(|e| matches!(e, SearchEvent::RunStart { .. })).count();
        assert!(runs >= 2, "bracketing alone takes two runs: {runs}");
        let evals =
            events.iter().filter(|e| matches!(e, SearchEvent::EvalCompleted { .. })).count() as u64;
        assert_eq!(evals, jobs.total_lookups(), "per-lookup events reconcile");
    }

    #[test]
    fn sweep_is_deterministic() {
        let model = TradeOff::new();
        let objs = objectives(&model);
        let (a, _) = epsilon_constraint_front(&model, &objs, None, 4, 5).unwrap();
        let (b, _) = epsilon_constraint_front(&model, &objs, None, 4, 5).unwrap();
        assert_eq!(a, b);
    }
}
