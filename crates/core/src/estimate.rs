//! Automatic hint estimation from a small sampling budget.
//!
//! For the NoC experiments the paper's hints were *not* expert-set: "we
//! estimated hints by synthesizing 80 designs (less than 0.3% of the design
//! space) and observing trends; this is equivalent to an IP user ... using
//! limited empirical knowledge". The paper also suggests that "an IP user
//! could try sweeping each IP parameter independently and then observe how
//! the various metrics of interest respond to estimate approximate hint
//! values". This module mechanizes that procedure:
//!
//! 1. draw a few random *base* designs;
//! 2. for each parameter, sweep it one-at-a-time across its domain from
//!    each base design and record the query objective;
//! 3. turn the observed rank correlation into a **bias** hint, the observed
//!    effect size into an **importance** hint, and (for categorical
//!    parameters) the mean-objective order of the choices into an
//!    **ordering** hint.

use rand::rngs::StdRng;
use rand::SeedableRng;

use nautilus_ga::rng::derive_seed;
use nautilus_ga::{spearman, Genome};
use nautilus_synth::{CostModel, JobStats, SynthJobRunner};

use crate::error::Result;
use crate::hint::{Confidence, HintSet};
use crate::query::Query;

/// Configuration of the estimation pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EstimateConfig {
    /// Total synthesis-job budget (paper: 80 designs).
    pub budget: usize,
    /// Number of random base designs to sweep from.
    pub bases: usize,
    /// Confidence assigned to the estimated hint set.
    pub confidence: Confidence,
    /// Importance-decay rate attached to every estimated importance hint.
    ///
    /// Estimated importances are concentrated (a few parameters explain
    /// most of the observed effect), which would starve the remaining
    /// genes of mutations late in the run; the paper's *importance decay*
    /// hint exists for exactly this — focus early, fine-tune everything
    /// later. `1.0` disables decay.
    pub decay: f64,
}

impl Default for EstimateConfig {
    fn default() -> Self {
        EstimateConfig { budget: 80, bases: 2, confidence: Confidence::WEAK, decay: 0.93 }
    }
}

/// The result of a hint-estimation pass.
#[derive(Debug, Clone)]
pub struct EstimatedHints {
    /// The derived hint set (named after the query).
    pub hints: HintSet,
    /// Synthesis-job accounting for the estimation itself.
    pub jobs: JobStats,
    /// Per-parameter `(name, bias, importance)` diagnostics.
    pub diagnostics: Vec<(String, f64, u8)>,
}

/// Estimates a hint set for `query` over `model` by one-at-a-time sweeps.
///
/// The returned [`JobStats`] counts the estimation's own synthesis cost so
/// experiments can account for it honestly (the paper's 80 designs).
///
/// # Errors
///
/// Propagates hint-construction errors (none expected for in-range
/// estimates).
pub fn estimate_hints(
    model: &dyn CostModel,
    query: &Query,
    config: EstimateConfig,
    seed: u64,
) -> Result<EstimatedHints> {
    let space = model.space();
    let runner = SynthJobRunner::new(model);
    let n_params = space.num_params();
    let bases = config.bases.max(1);

    // Split the budget across parameters and bases; always sweep at least
    // two values per parameter or the trend is undefined.
    let per_param = (config.budget / (n_params * bases).max(1)).max(2);

    let mut rng = StdRng::seed_from_u64(derive_seed(seed, 0xE571));
    let base_genomes: Vec<Genome> = (0..bases).map(|_| space.random_genome(&mut rng)).collect();

    // Per parameter, per base design: observations of (domain index,
    // objective). Sweeps from different bases have different offsets, so
    // trends are fitted per sweep and averaged.
    let mut observations: Vec<Vec<Vec<(f64, f64)>>> =
        vec![vec![Vec::new(); base_genomes.len()]; n_params];
    // Per parameter: per-domain-index objective sums for ordering estimates.
    let mut per_value: Vec<Vec<(f64, u32)>> =
        space.params().iter().map(|p| vec![(0.0, 0u32); p.cardinality()]).collect();

    for (b_idx, base) in base_genomes.iter().enumerate() {
        for id in space.param_ids() {
            let card = space.param(id).cardinality();
            let take = per_param.min(card);
            // Evenly spread sweep values across the domain.
            for k in 0..take {
                let idx = if take == 1 { 0 } else { k * (card - 1) / (take - 1) };
                let mut g = base.clone();
                g.set_gene(id, idx as u32);
                if let Some(v) = runner.evaluate(&g).and_then(|m| query.objective(&m)) {
                    observations[id.index()][b_idx].push((idx as f64, v));
                    let slot = &mut per_value[id.index()][idx];
                    slot.0 += v;
                    slot.1 += 1;
                }
            }
        }
    }

    let mut builder = HintSet::for_metric(query.name());
    let mut diagnostics = Vec::with_capacity(n_params);

    // Effect sizes (mean per-sweep objective range), for importance
    // normalization.
    let effects: Vec<f64> = observations
        .iter()
        .map(|sweeps| {
            let ranges: Vec<f64> = sweeps
                .iter()
                .filter(|obs| obs.len() >= 2)
                .map(|obs| {
                    let vals: Vec<f64> = obs.iter().map(|(_, v)| *v).collect();
                    let lo = vals.iter().copied().fold(f64::INFINITY, f64::min);
                    let hi = vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                    hi - lo
                })
                .collect();
            if ranges.is_empty() {
                0.0
            } else {
                ranges.iter().sum::<f64>() / ranges.len() as f64
            }
        })
        .collect();
    let max_effect = effects.iter().copied().fold(0.0f64, f64::max);

    for id in space.param_ids() {
        let i = id.index();
        let def = space.param(id);
        let sweeps = &observations[i];

        // Importance from relative effect size.
        let importance =
            if max_effect > 0.0 { (1.0 + 99.0 * effects[i] / max_effect).round() as u8 } else { 1 };
        let importance = importance.clamp(1, 100);
        builder = builder.importance(def.name(), importance)?;
        if config.decay < 1.0 {
            builder = builder.decay(def.name(), config.decay.max(0.0))?;
        }

        // Bias from rank correlation, fitted per sweep and averaged
        // (numeric axes only).
        let mut bias = 0.0;
        if def.domain().is_numeric() {
            let rhos: Vec<f64> = sweeps
                .iter()
                .filter(|obs| obs.len() >= 3)
                .filter_map(|obs| {
                    let xs: Vec<f64> = obs.iter().map(|(x, _)| *x).collect();
                    let ys: Vec<f64> = obs.iter().map(|(_, y)| *y).collect();
                    spearman(&xs, &ys)
                })
                .collect();
            if !rhos.is_empty() {
                bias = (rhos.iter().sum::<f64>() / rhos.len() as f64).clamp(-1.0, 1.0);
                if bias.abs() > 0.05 {
                    builder = builder.bias(def.name(), bias)?;
                }
            }
        } else {
            // Categorical: estimate an ordering from mean objective per
            // choice (metric-ascending), when every choice was observed.
            let stats = &per_value[i];
            if stats.iter().all(|(_, n)| *n > 0) {
                let mut order: Vec<u32> = (0..stats.len() as u32).collect();
                order.sort_by(|&a, &b| {
                    let ma = stats[a as usize].0 / f64::from(stats[a as usize].1);
                    let mb = stats[b as usize].0 / f64::from(stats[b as usize].1);
                    ma.partial_cmp(&mb).unwrap_or(std::cmp::Ordering::Equal)
                });
                builder = builder.ordering(def.name(), order);
                // Along the estimated ordering the metric ascends by
                // construction; a moderate positive bias encodes that trend
                // without overcommitting on few samples.
                bias = 0.7;
                builder = builder.bias(def.name(), bias)?;
            }
        }
        diagnostics.push((def.name().to_owned(), bias, importance));
    }

    Ok(EstimatedHints {
        hints: builder.confidence(config.confidence).build(),
        jobs: runner.stats(),
        diagnostics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hint::ValueHint;
    use nautilus_ga::ParamSpace;
    use nautilus_synth::{MetricCatalog, MetricExpr, MetricSet};

    /// cost = 100*a - 40*b + mode_penalty, c irrelevant.
    #[derive(Debug)]
    struct TrendModel {
        space: ParamSpace,
        catalog: MetricCatalog,
    }

    impl TrendModel {
        fn new() -> Self {
            TrendModel {
                space: ParamSpace::builder()
                    .int("a", 0, 9, 1)
                    .int("b", 0, 9, 1)
                    .int("c", 0, 9, 1)
                    .choices("mode", ["hot", "warm", "cold"])
                    .build()
                    .unwrap(),
                catalog: MetricCatalog::new([("cost", "units")]).unwrap(),
            }
        }
    }

    impl CostModel for TrendModel {
        fn name(&self) -> &str {
            "trend"
        }
        fn space(&self) -> &ParamSpace {
            &self.space
        }
        fn catalog(&self) -> &MetricCatalog {
            &self.catalog
        }
        fn evaluate(&self, g: &Genome) -> Option<MetricSet> {
            let a = f64::from(g.gene_at(0));
            let b = f64::from(g.gene_at(1));
            let mode = match g.gene_at(3) {
                0 => 30.0, // hot is worst
                1 => 15.0,
                _ => 0.0, // cold is best
            };
            Some(self.catalog.set(vec![100.0 * a - 40.0 * b + mode + 500.0]).unwrap())
        }
    }

    #[test]
    fn estimation_recovers_signs_and_relative_importance() {
        let model = TrendModel::new();
        let query =
            Query::minimize("cost", MetricExpr::metric(model.catalog.require("cost").unwrap()));
        let est = estimate_hints(&model, &query, EstimateConfig::default(), 42).unwrap();

        let a = est.hints.get("a").unwrap();
        let b = est.hints.get("b").unwrap();
        let c = est.hints.get("c").unwrap();
        match &a.value {
            Some(ValueHint::Bias(bias)) => assert!(bias.get() > 0.8, "a bias {:?}", bias),
            other => panic!("a should have positive bias, got {other:?}"),
        }
        match &b.value {
            Some(ValueHint::Bias(bias)) => assert!(bias.get() < -0.8, "b bias {:?}", bias),
            other => panic!("b should have negative bias, got {other:?}"),
        }
        let (ia, ib, ic) =
            (a.importance.unwrap().get(), b.importance.unwrap().get(), c.importance.unwrap().get());
        assert!(ia > ib, "a ({ia}) should outrank b ({ib})");
        assert!(ib > ic, "b ({ib}) should outrank c ({ic})");
        assert_eq!(ic, 1, "irrelevant parameter gets floor importance");
    }

    #[test]
    fn estimation_orders_categorical_choices() {
        let model = TrendModel::new();
        let query =
            Query::minimize("cost", MetricExpr::metric(model.catalog.require("cost").unwrap()));
        let est = estimate_hints(&model, &query, EstimateConfig::default(), 7).unwrap();
        let mode = est.hints.get("mode").unwrap();
        // Ascending by cost: cold (2), warm (1), hot (0).
        assert_eq!(mode.ordering.as_deref(), Some(&[2u32, 1, 0][..]));
    }

    #[test]
    fn estimation_respects_and_reports_budget() {
        let model = TrendModel::new();
        let query =
            Query::minimize("cost", MetricExpr::metric(model.catalog.require("cost").unwrap()));
        let cfg =
            EstimateConfig { budget: 80, bases: 2, confidence: Confidence::WEAK, decay: 0.93 };
        let est = estimate_hints(&model, &query, cfg, 3).unwrap();
        // Sweeps may revisit cached points, so distinct jobs <= budget plus
        // a small slack for the shared base designs.
        assert!(est.jobs.jobs <= 90, "used {} jobs", est.jobs.jobs);
        assert!(est.jobs.jobs >= 20, "suspiciously few jobs: {}", est.jobs.jobs);
        assert_eq!(est.diagnostics.len(), 4);
    }

    #[test]
    fn estimation_is_deterministic() {
        let model = TrendModel::new();
        let query =
            Query::minimize("cost", MetricExpr::metric(model.catalog.require("cost").unwrap()));
        let a = estimate_hints(&model, &query, EstimateConfig::default(), 11).unwrap();
        let b = estimate_hints(&model, &query, EstimateConfig::default(), 11).unwrap();
        assert_eq!(a.hints, b.hints);
    }

    #[test]
    fn estimated_importances_carry_decay() {
        let model = TrendModel::new();
        let query =
            Query::minimize("cost", MetricExpr::metric(model.catalog.require("cost").unwrap()));
        let est = estimate_hints(&model, &query, EstimateConfig::default(), 2).unwrap();
        for (name, h) in est.hints.iter() {
            assert!(h.decay.is_some(), "{name} missing decay");
        }
        let no_decay = EstimateConfig { decay: 1.0, ..EstimateConfig::default() };
        let est = estimate_hints(&model, &query, no_decay, 2).unwrap();
        for (_, h) in est.hints.iter() {
            assert!(h.decay.is_none());
        }
    }

    #[test]
    fn estimated_hints_validate_against_the_space() {
        let model = TrendModel::new();
        let query =
            Query::minimize("cost", MetricExpr::metric(model.catalog.require("cost").unwrap()));
        let est = estimate_hints(&model, &query, EstimateConfig::default(), 5).unwrap();
        assert!(est.hints.validate(model.space()).is_ok());
        assert_eq!(est.hints.metric(), "cost");
    }
}
