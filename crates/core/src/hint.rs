//! The Nautilus hint taxonomy (paper Section 3).
//!
//! Hints let an IP author embed design-space knowledge into the generator:
//!
//! * [`Importance`] (1–100) — how strongly a parameter affects the metric;
//!   skews *which* genes mutate.
//! * [`Decay`] (0–1) — lets importance differences fade over generations,
//!   moving from coarse navigation to fine-tuning.
//! * [`Bias`] (−1–1) — correlation between the parameter and the metric;
//!   skews *what value* a mutating gene receives.
//! * Target — "good solutions cluster around this value"; pulls mutations
//!   toward it. Bias and target are mutually exclusive per parameter.
//! * [`Confidence`] (0–1) — how much to trust the hints: 0 behaves like the
//!   baseline GA, 1 is strongly directed search.
//! * Auxiliary — a value *ordering* for categorical parameters (so bias has
//!   a meaningful axis) and a mutation *stepping* limit.
//!
//! A [`HintSet`] collects per-parameter hints for **one** metric of
//! interest; a [`HintBook`] maps metric names to hint sets and can merge
//! them for composite queries.

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use nautilus_ga::{ParamSpace, ParamValue};

use crate::error::{NautilusError, Result};

/// Importance of a parameter for a metric, from 1 (irrelevant) to 100
/// (dominant). Paper: "assigns values from 1 to 100 to each parameter that
/// captures how drastically the parameter is expected to affect the metric".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Importance(u8);

impl Importance {
    /// Validates `value` into an importance hint.
    ///
    /// # Errors
    ///
    /// Returns [`NautilusError::HintOutOfRange`] unless `1 <= value <= 100`.
    pub fn new(value: u8) -> Result<Self> {
        if (1..=100).contains(&value) {
            Ok(Importance(value))
        } else {
            Err(NautilusError::HintOutOfRange {
                hint: "importance",
                value: value.to_string(),
                range: "[1, 100]",
            })
        }
    }

    /// The raw 1–100 value.
    #[must_use]
    pub fn get(self) -> u8 {
        self.0
    }

    /// The neutral default used for parameters without an importance hint.
    pub const DEFAULT: Importance = Importance(50);
}

impl fmt::Display for Importance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Importance-decay rate in `[0, 1]` per generation.
///
/// With decay `d`, a parameter's effective importance at generation `g` is
/// `1 + (importance − 1) · d^g`: it relaxes toward the neutral floor so the
/// search "initially focuses on parameters believed to be important ... and
/// then gradually shifts focus to experimenting with less important
/// parameters". `Decay(1.0)` means no decay.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Decay(f64);

impl Decay {
    /// Validates `value` into a decay hint.
    ///
    /// # Errors
    ///
    /// Returns [`NautilusError::HintOutOfRange`] unless `0 <= value <= 1`.
    pub fn new(value: f64) -> Result<Self> {
        if (0.0..=1.0).contains(&value) {
            Ok(Decay(value))
        } else {
            Err(NautilusError::HintOutOfRange {
                hint: "importance decay",
                value: value.to_string(),
                range: "[0, 1]",
            })
        }
    }

    /// The raw rate.
    #[must_use]
    pub fn get(self) -> f64 {
        self.0
    }
}

/// Correlation between a parameter and the metric being optimized, in
/// `[-1, 1]`. Positive bias: increasing the parameter increases the metric.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Bias(f64);

impl Bias {
    /// Validates `value` into a bias hint.
    ///
    /// # Errors
    ///
    /// Returns [`NautilusError::HintOutOfRange`] unless `-1 <= value <= 1`.
    pub fn new(value: f64) -> Result<Self> {
        if (-1.0..=1.0).contains(&value) {
            Ok(Bias(value))
        } else {
            Err(NautilusError::HintOutOfRange {
                hint: "bias",
                value: value.to_string(),
                range: "[-1, 1]",
            })
        }
    }

    /// The raw correlation.
    #[must_use]
    pub fn get(self) -> f64 {
        self.0
    }
}

/// Trust in the hint set, in `[0, 1]`.
///
/// "Setting low confidence values will make the algorithm behave more
/// similarly to the baseline GA, while setting high confidence values ...
/// will cause the algorithm to perform very directed optimization."
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Confidence(f64);

impl Confidence {
    /// Validates `value` into a confidence knob.
    ///
    /// # Errors
    ///
    /// Returns [`NautilusError::HintOutOfRange`] unless `0 <= value <= 1`.
    pub fn new(value: f64) -> Result<Self> {
        if (0.0..=1.0).contains(&value) {
            Ok(Confidence(value))
        } else {
            Err(NautilusError::HintOutOfRange {
                hint: "confidence",
                value: value.to_string(),
                range: "[0, 1]",
            })
        }
    }

    /// The raw trust level.
    #[must_use]
    pub fn get(self) -> f64 {
        self.0
    }

    /// The paper's "weakly guided" configuration.
    pub const WEAK: Confidence = Confidence(0.5);
    /// The paper's "strongly guided" configuration.
    pub const STRONG: Confidence = Confidence(0.9);
}

/// The value-steering hint of one parameter: bias or target, never both.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ValueHint {
    /// Directional correlation with the metric.
    Bias(Bias),
    /// Good solutions cluster around this value.
    Target(ParamValue),
}

/// All hints attached to a single parameter (for one metric).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ParamHint {
    /// How strongly this parameter affects the metric.
    pub importance: Option<Importance>,
    /// Per-parameter importance-decay rate.
    pub decay: Option<Decay>,
    /// Bias or target steering.
    pub value: Option<ValueHint>,
    /// Auxiliary: domain-index permutation ordering a categorical
    /// parameter's choices along the metric axis (ascending). Entry `k` is
    /// the domain index with rank `k`.
    pub ordering: Option<Vec<u32>>,
    /// Auxiliary: maximum mutation step along the (ordered) domain.
    pub max_step: Option<usize>,
}

/// Per-parameter hints for one metric of interest, plus a confidence knob.
///
/// ```
/// use nautilus::{HintSet, Confidence};
/// use nautilus_ga::ParamValue;
/// # fn main() -> Result<(), nautilus::NautilusError> {
/// let hints = HintSet::for_metric("luts")
///     .importance("transform_size", 90)?
///     .bias("transform_size", 0.9)?          // bigger FFT -> more LUTs
///     .target("arch", ParamValue::Sym("iterative".into()))?
///     .confidence(Confidence::STRONG)
///     .build();
/// assert_eq!(hints.metric(), "luts");
/// # Ok(()) }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HintSet {
    metric: String,
    entries: HashMap<String, ParamHint>,
    confidence: Confidence,
}

impl HintSet {
    /// Starts building a hint set for `metric` (a metric or query name).
    #[must_use]
    pub fn for_metric(metric: impl Into<String>) -> HintSetBuilder {
        HintSetBuilder {
            set: HintSet {
                metric: metric.into(),
                entries: HashMap::new(),
                confidence: Confidence::WEAK,
            },
        }
    }

    /// The metric or query these hints pertain to.
    #[must_use]
    pub fn metric(&self) -> &str {
        &self.metric
    }

    /// The trust level of this hint set.
    #[must_use]
    pub fn confidence(&self) -> Confidence {
        self.confidence
    }

    /// Returns a copy with a different confidence (how the paper derives its
    /// "weakly" and "strongly" guided variants from one hint set).
    #[must_use]
    pub fn with_confidence(&self, confidence: Confidence) -> HintSet {
        HintSet { confidence, ..self.clone() }
    }

    /// The hint entry for `param`, if any.
    #[must_use]
    pub fn get(&self, param: &str) -> Option<&ParamHint> {
        self.entries.get(param)
    }

    /// Iterates over `(parameter name, hints)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &ParamHint)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of hinted parameters.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no parameter has hints (Nautilus falls back to baseline).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Re-opens the set for further edits (e.g. refining a merged set).
    #[must_use]
    pub fn into_builder(self) -> HintSetBuilder {
        HintSetBuilder { set: self }
    }

    /// Derives a new set by transforming every per-parameter hint.
    ///
    /// `f` receives each parameter name and hint and returns the hint to
    /// keep (or `None` to drop the parameter entirely). Used by ablation
    /// studies to isolate hint classes, e.g. keep only importance:
    ///
    /// ```
    /// use nautilus::{HintSet, ParamHint};
    /// # fn main() -> Result<(), nautilus::NautilusError> {
    /// let full = HintSet::for_metric("luts")
    ///     .importance("size", 90)?
    ///     .bias("size", 0.9)?
    ///     .build();
    /// let importance_only = full.map_hints(|_, h| {
    ///     Some(ParamHint { value: None, ..h.clone() })
    /// });
    /// assert!(importance_only.get("size").unwrap().value.is_none());
    /// assert!(importance_only.get("size").unwrap().importance.is_some());
    /// # Ok(()) }
    /// ```
    #[must_use]
    pub fn map_hints(&self, mut f: impl FnMut(&str, &ParamHint) -> Option<ParamHint>) -> HintSet {
        let entries = self
            .entries
            .iter()
            .filter_map(|(name, hint)| f(name, hint).map(|h| (name.clone(), h)))
            .collect();
        HintSet { metric: self.metric.clone(), entries, confidence: self.confidence }
    }

    /// Validates every hint against `space`: all names must exist, targets
    /// must be in-domain, orderings must be domain permutations.
    ///
    /// # Errors
    ///
    /// Returns the first offending hint's error.
    pub fn validate(&self, space: &ParamSpace) -> Result<()> {
        for (name, hint) in &self.entries {
            let id = space.id(name).ok_or_else(|| NautilusError::UnknownParam(name.clone()))?;
            let domain = space.param(id).domain();
            if let Some(ValueHint::Target(v)) = &hint.value {
                if domain.index_of(v).is_none() {
                    return Err(NautilusError::TargetNotInDomain {
                        param: name.clone(),
                        value: v.to_string(),
                    });
                }
            }
            if let Some(order) = &hint.ordering {
                let card = domain.cardinality();
                let mut seen = vec![false; card];
                if order.len() != card {
                    return Err(NautilusError::BadOrdering(name.clone()));
                }
                for &idx in order {
                    if idx as usize >= card || seen[idx as usize] {
                        return Err(NautilusError::BadOrdering(name.clone()));
                    }
                    seen[idx as usize] = true;
                }
            }
        }
        Ok(())
    }

    /// Merges per-metric hint sets into one set for a composite query.
    ///
    /// `parts` pairs each hint set with the *sign* of its metric's
    /// contribution to the composite: `+1.0` if the composite grows with the
    /// metric (e.g. LUTs in area-delay product), `-1.0` if it shrinks
    /// (e.g. Fmax in area-delay product). Merging takes the maximum
    /// importance, the sign-weighted mean bias, the minimum decay and
    /// max-step, keeps a target only when every supplying part agrees on
    /// the same value (and no part biases the same parameter), and averages
    /// confidence.
    #[must_use]
    pub fn merge(name: impl Into<String>, parts: &[(&HintSet, f64)]) -> HintSet {
        let mut entries: HashMap<String, Vec<(&ParamHint, f64)>> = HashMap::new();
        for (set, sign) in parts {
            for (p, h) in set.iter() {
                entries.entry(p.to_owned()).or_default().push((h, *sign));
            }
        }
        let mut merged = HashMap::new();
        for (p, hints) in entries {
            let importance = hints.iter().filter_map(|(h, _)| h.importance).max();
            let decay = hints
                .iter()
                .filter_map(|(h, _)| h.decay)
                .min_by(|a, b| a.partial_cmp(b).expect("decay is never NaN"));
            let max_step = hints.iter().filter_map(|(h, _)| h.max_step).min();
            let ordering = hints.iter().find_map(|(h, _)| h.ordering.clone());
            let biases: Vec<f64> = hints
                .iter()
                .filter_map(|(h, sign)| match &h.value {
                    Some(ValueHint::Bias(b)) => Some(b.get() * sign),
                    _ => None,
                })
                .collect();
            let targets: Vec<&ParamValue> = hints
                .iter()
                .filter_map(|(h, _)| match &h.value {
                    Some(ValueHint::Target(v)) => Some(v),
                    _ => None,
                })
                .collect();
            let value = if !biases.is_empty() {
                let mean = biases.iter().sum::<f64>() / biases.len() as f64;
                Some(ValueHint::Bias(Bias(mean.clamp(-1.0, 1.0))))
            } else if !targets.is_empty() && targets.iter().all(|t| *t == targets[0]) {
                Some(ValueHint::Target(targets[0].clone()))
            } else {
                None
            };
            merged.insert(p, ParamHint { importance, decay, value, ordering, max_step });
        }
        let confidence = if parts.is_empty() {
            Confidence::WEAK
        } else {
            Confidence(
                parts.iter().map(|(s, _)| s.confidence.get()).sum::<f64>() / parts.len() as f64,
            )
        };
        HintSet { metric: name.into(), entries: merged, confidence }
    }
}

/// Builder for [`HintSet`]; every hinted method validates its range.
#[derive(Debug)]
pub struct HintSetBuilder {
    set: HintSet,
}

impl HintSetBuilder {
    fn entry(&mut self, param: &str) -> &mut ParamHint {
        self.set.entries.entry(param.to_owned()).or_default()
    }

    /// Sets the importance (1–100) of `param`.
    ///
    /// # Errors
    ///
    /// Returns [`NautilusError::HintOutOfRange`] for values outside 1–100.
    pub fn importance(mut self, param: &str, value: u8) -> Result<Self> {
        let imp = Importance::new(value)?;
        self.entry(param).importance = Some(imp);
        Ok(self)
    }

    /// Sets the importance-decay rate (0–1) of `param`.
    ///
    /// # Errors
    ///
    /// Returns [`NautilusError::HintOutOfRange`] for values outside 0–1.
    pub fn decay(mut self, param: &str, value: f64) -> Result<Self> {
        let d = Decay::new(value)?;
        self.entry(param).decay = Some(d);
        Ok(self)
    }

    /// Sets the bias (−1–1) of `param`.
    ///
    /// # Errors
    ///
    /// Returns [`NautilusError::HintOutOfRange`] for out-of-range values and
    /// [`NautilusError::BiasAndTarget`] if a target is already set.
    pub fn bias(mut self, param: &str, value: f64) -> Result<Self> {
        let b = Bias::new(value)?;
        let e = self.entry(param);
        if matches!(e.value, Some(ValueHint::Target(_))) {
            return Err(NautilusError::BiasAndTarget(param.to_owned()));
        }
        e.value = Some(ValueHint::Bias(b));
        Ok(self)
    }

    /// Sets the target value of `param`.
    ///
    /// # Errors
    ///
    /// Returns [`NautilusError::BiasAndTarget`] if a bias is already set.
    /// (Domain membership is checked by [`HintSet::validate`].)
    pub fn target(mut self, param: &str, value: ParamValue) -> Result<Self> {
        let e = self.entry(param);
        if matches!(e.value, Some(ValueHint::Bias(_))) {
            return Err(NautilusError::BiasAndTarget(param.to_owned()));
        }
        e.value = Some(ValueHint::Target(value));
        Ok(self)
    }

    /// Declares the metric-ascending ordering of a categorical parameter's
    /// domain indices (auxiliary hint).
    #[must_use]
    pub fn ordering(mut self, param: &str, order: impl Into<Vec<u32>>) -> Self {
        self.entry(param).ordering = Some(order.into());
        self
    }

    /// Limits mutation stepping for `param` (auxiliary hint).
    #[must_use]
    pub fn max_step(mut self, param: &str, step: usize) -> Self {
        self.entry(param).max_step = Some(step.max(1));
        self
    }

    /// Sets the hint-set confidence.
    #[must_use]
    pub fn confidence(mut self, confidence: Confidence) -> Self {
        self.set.confidence = confidence;
        self
    }

    /// Finishes the hint set.
    #[must_use]
    pub fn build(self) -> HintSet {
        self.set
    }
}

/// Per-metric hint sets, packaged with an IP generator.
///
/// "These hints are calibrated by the IP author during the IP development
/// phase and are packaged and provided along with Nautilus as part of the
/// IP."
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct HintBook {
    sets: HashMap<String, HintSet>,
}

impl HintBook {
    /// Creates an empty book.
    #[must_use]
    pub fn new() -> Self {
        HintBook::default()
    }

    /// Adds (or replaces) the hint set for its metric.
    pub fn insert(&mut self, set: HintSet) {
        self.sets.insert(set.metric().to_owned(), set);
    }

    /// The hint set for `metric`, if the author provided one.
    #[must_use]
    pub fn get(&self, metric: &str) -> Option<&HintSet> {
        self.sets.get(metric)
    }

    /// Number of hint sets in the book.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// Whether the book is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }

    /// Metric names with hint sets, sorted for determinism.
    #[must_use]
    pub fn metrics(&self) -> Vec<&str> {
        let mut m: Vec<&str> = self.sets.keys().map(String::as_str).collect();
        m.sort_unstable();
        m
    }
}

impl FromIterator<HintSet> for HintBook {
    fn from_iter<T: IntoIterator<Item = HintSet>>(iter: T) -> Self {
        let mut book = HintBook::new();
        for set in iter {
            book.insert(set);
        }
        book
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nautilus_ga::ParamSpace;

    fn space() -> ParamSpace {
        ParamSpace::builder()
            .int("depth", 1, 8, 1)
            .choices("alloc", ["rr", "matrix", "wavefront"])
            .flag("spec")
            .build()
            .unwrap()
    }

    #[test]
    fn ranges_are_enforced() {
        assert!(Importance::new(0).is_err());
        assert!(Importance::new(101).is_err());
        assert_eq!(Importance::new(100).unwrap().get(), 100);
        assert!(Decay::new(-0.1).is_err());
        assert!(Decay::new(1.1).is_err());
        assert!(Bias::new(1.5).is_err());
        assert!(Bias::new(-1.0).is_ok());
        assert!(Confidence::new(2.0).is_err());
        assert_eq!(Confidence::STRONG.get(), 0.9);
        assert_eq!(Confidence::WEAK.get(), 0.5);
    }

    #[test]
    fn bias_and_target_are_mutually_exclusive() {
        let err = HintSet::for_metric("luts")
            .bias("depth", 0.5)
            .unwrap()
            .target("depth", ParamValue::Int(4));
        assert_eq!(err.unwrap_err(), NautilusError::BiasAndTarget("depth".into()));
        let err = HintSet::for_metric("luts")
            .target("depth", ParamValue::Int(4))
            .unwrap()
            .bias("depth", 0.5);
        assert_eq!(err.unwrap_err(), NautilusError::BiasAndTarget("depth".into()));
    }

    #[test]
    fn validate_checks_names_targets_and_orderings() {
        let s = space();
        let ok = HintSet::for_metric("luts")
            .importance("depth", 90)
            .unwrap()
            .bias("depth", -0.8)
            .unwrap()
            .target("alloc", ParamValue::Sym("matrix".into()))
            .unwrap()
            .ordering("alloc", [0, 2, 1])
            .build();
        assert!(ok.validate(&s).is_ok());

        let unknown = HintSet::for_metric("luts").importance("nope", 50).unwrap().build();
        assert_eq!(unknown.validate(&s).unwrap_err(), NautilusError::UnknownParam("nope".into()));

        let bad_target = HintSet::for_metric("luts")
            .target("alloc", ParamValue::Sym("xbar".into()))
            .unwrap()
            .build();
        assert!(matches!(
            bad_target.validate(&s).unwrap_err(),
            NautilusError::TargetNotInDomain { .. }
        ));

        for order in [vec![0u32, 1], vec![0, 1, 1], vec![0, 1, 3]] {
            let bad = HintSet::for_metric("luts").ordering("alloc", order).build();
            assert_eq!(bad.validate(&s).unwrap_err(), NautilusError::BadOrdering("alloc".into()));
        }
    }

    #[test]
    fn with_confidence_only_changes_confidence() {
        let weak = HintSet::for_metric("fmax").bias("depth", 0.4).unwrap().build();
        let strong = weak.with_confidence(Confidence::STRONG);
        assert_eq!(strong.confidence(), Confidence::STRONG);
        assert_eq!(strong.get("depth"), weak.get("depth"));
        assert_eq!(strong.metric(), "fmax");
    }

    #[test]
    fn merge_combines_importance_and_signed_bias() {
        let luts = HintSet::for_metric("luts")
            .importance("depth", 90)
            .unwrap()
            .bias("depth", 0.8) // deeper buffers -> more LUTs
            .unwrap()
            .confidence(Confidence::STRONG)
            .build();
        let fmax = HintSet::for_metric("fmax")
            .importance("depth", 40)
            .unwrap()
            .bias("depth", -0.4) // deeper buffers -> slower clock
            .unwrap()
            .confidence(Confidence::WEAK)
            .build();
        // Area-delay product grows with LUTs (+1) and shrinks with fmax (-1).
        let adp = HintSet::merge("adp", &[(&luts, 1.0), (&fmax, -1.0)]);
        let h = adp.get("depth").unwrap();
        assert_eq!(h.importance, Some(Importance::new(90).unwrap()));
        match &h.value {
            Some(ValueHint::Bias(b)) => {
                // (0.8 * 1 + (-0.4) * -1) / 2 = 0.6: depth hurts ADP.
                assert!((b.get() - 0.6).abs() < 1e-12);
            }
            other => panic!("expected merged bias, got {other:?}"),
        }
        assert!((adp.confidence().get() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn merge_keeps_unique_target_and_drops_conflicts() {
        let a =
            HintSet::for_metric("a").target("alloc", ParamValue::Sym("rr".into())).unwrap().build();
        let b = HintSet::for_metric("b").importance("alloc", 60).unwrap().build();
        let merged = HintSet::merge("ab", &[(&a, 1.0), (&b, 1.0)]);
        assert!(matches!(merged.get("alloc").unwrap().value, Some(ValueHint::Target(_))));

        let c = HintSet::for_metric("c")
            .target("alloc", ParamValue::Sym("matrix".into()))
            .unwrap()
            .build();
        let conflicted = HintSet::merge("ac", &[(&a, 1.0), (&c, 1.0)]);
        assert_eq!(conflicted.get("alloc").unwrap().value, None);
    }

    #[test]
    fn book_stores_and_lists_sets() {
        let book: HintBook =
            [HintSet::for_metric("luts").build(), HintSet::for_metric("fmax").build()]
                .into_iter()
                .collect();
        assert_eq!(book.len(), 2);
        assert_eq!(book.metrics(), vec!["fmax", "luts"]);
        assert!(book.get("luts").is_some());
        assert!(book.get("power").is_none());
    }
}
