//! Multi-strategy, multi-run experiment harness.
//!
//! The paper's figures compare the baseline GA against one or two Nautilus
//! variants (and sometimes random sampling), averaging each strategy over
//! 20–40 runs. [`compare`] executes that matrix in parallel, producing
//! averaged traces and the convergence-cost ratios quoted in the text
//! ("the baseline GA requires about 2.8x ... the number of synthesis
//! jobs").

use nautilus_ga::rng::derive_seed;
use nautilus_ga::{Direction, GaSettings};
use nautilus_obs::SearchObserver;
use nautilus_synth::CostModel;

use crate::error::Result;
use crate::hint::{Confidence, HintSet};
use crate::query::Query;
use crate::trace::{average_traces, AvgTracePoint, ReachStats, SearchOutcome};
use crate::Nautilus;

/// How one compared strategy searches.
#[derive(Debug, Clone)]
pub enum StrategyKind {
    /// The oblivious baseline GA.
    Baseline,
    /// Nautilus with a hint set (optionally overriding its confidence).
    Guided {
        /// The IP author's hints.
        hints: HintSet,
        /// Confidence override (None keeps the hint set's own).
        confidence: Option<Confidence>,
    },
    /// Uniform random sampling with a distinct-evaluation budget.
    Random {
        /// Distinct feasible evaluations to spend.
        budget: u64,
    },
    /// Nautilus with guided mutation *and* guided crossover (extension).
    GuidedFull {
        /// The IP author's hints.
        hints: HintSet,
        /// Confidence override (None keeps the hint set's own).
        confidence: Option<Confidence>,
    },
    /// Simulated annealing (single-point Metropolis search).
    Anneal(crate::local::AnnealConfig),
    /// Stochastic hill climbing with random restarts.
    HillClimb {
        /// Distinct feasible evaluations to spend.
        budget: u64,
        /// Consecutive rejected proposals before a restart.
        patience: u32,
    },
}

/// A named strategy entering a comparison.
#[derive(Debug, Clone)]
pub struct Strategy {
    name: String,
    kind: StrategyKind,
}

impl Strategy {
    /// The baseline GA.
    #[must_use]
    pub fn baseline() -> Self {
        Strategy { name: "baseline".into(), kind: StrategyKind::Baseline }
    }

    /// A guided strategy with an explicit display name.
    #[must_use]
    pub fn guided(name: impl Into<String>, hints: HintSet, confidence: Option<Confidence>) -> Self {
        Strategy { name: name.into(), kind: StrategyKind::Guided { hints, confidence } }
    }

    /// Uniform random sampling with `budget` distinct evaluations.
    #[must_use]
    pub fn random(budget: u64) -> Self {
        Strategy { name: "random".into(), kind: StrategyKind::Random { budget } }
    }

    /// Guided mutation plus guided crossover (extension beyond the paper).
    #[must_use]
    pub fn guided_full(
        name: impl Into<String>,
        hints: HintSet,
        confidence: Option<Confidence>,
    ) -> Self {
        Strategy { name: name.into(), kind: StrategyKind::GuidedFull { hints, confidence } }
    }

    /// Simulated annealing with the given configuration.
    #[must_use]
    pub fn anneal(config: crate::local::AnnealConfig) -> Self {
        Strategy { name: "simulated-annealing".into(), kind: StrategyKind::Anneal(config) }
    }

    /// Stochastic hill climbing with random restarts.
    #[must_use]
    pub fn hill_climb(budget: u64, patience: u32) -> Self {
        Strategy { name: "hill-climb".into(), kind: StrategyKind::HillClimb { budget, patience } }
    }

    /// The strategy's display name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The strategy's kind.
    #[must_use]
    pub fn kind(&self) -> &StrategyKind {
        &self.kind
    }
}

/// Scalar configuration of a comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompareConfig {
    /// Runs per strategy (paper: 40, or 20 for Figure 3).
    pub runs: usize,
    /// Base seed; per-run seeds are derived deterministically.
    pub seed: u64,
    /// GA settings shared by all GA strategies.
    pub settings: GaSettings,
    /// Worker threads (clamped to at least 1).
    pub threads: usize,
}

impl Default for CompareConfig {
    fn default() -> Self {
        CompareConfig {
            runs: 40,
            seed: 0xDAC_2015,
            settings: GaSettings::default(),
            threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
        }
    }
}

/// All runs of one strategy, with their average.
#[derive(Debug, Clone)]
pub struct StrategyResult {
    /// Strategy display name.
    pub name: String,
    /// One outcome per run.
    pub outcomes: Vec<SearchOutcome>,
    /// Generation-aligned average of the runs.
    pub averaged: Vec<AvgTracePoint>,
}

impl StrategyResult {
    /// Convergence statistics against a quality threshold.
    #[must_use]
    pub fn reach_stats(&self, direction: Direction, threshold: f64) -> ReachStats {
        ReachStats::compute(&self.outcomes, direction, threshold)
    }

    /// Mean final best objective value across runs.
    #[must_use]
    pub fn mean_best(&self) -> f64 {
        self.outcomes.iter().map(|o| o.best_value).sum::<f64>() / self.outcomes.len() as f64
    }

    /// Best objective value any run found.
    #[must_use]
    pub fn best_overall(&self, direction: Direction) -> f64 {
        self.outcomes
            .iter()
            .map(|o| o.best_value)
            .fold(direction.worst_value(), |a, b| direction.best_of(a, b))
    }

    /// Mean distinct evaluations per run.
    #[must_use]
    pub fn mean_evals(&self) -> f64 {
        self.outcomes.iter().map(|o| o.total_evals() as f64).sum::<f64>()
            / self.outcomes.len() as f64
    }
}

/// Result of comparing several strategies on one query.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// The compared query's name.
    pub query_name: String,
    /// The query's direction (for threshold queries on the result).
    pub direction: Direction,
    /// Per-strategy results, in input order.
    pub results: Vec<StrategyResult>,
}

impl Comparison {
    /// Finds a strategy's result by name.
    #[must_use]
    pub fn result(&self, name: &str) -> Option<&StrategyResult> {
        self.results.iter().find(|r| r.name == name)
    }

    /// Ratio of censored mean evaluations-to-threshold: `slow / fast` (the
    /// paper's headline speedups). Censored means charge unreached runs
    /// their full budget, avoiding survivorship bias when few runs reach
    /// the threshold. `None` if either strategy never reaches it at all.
    #[must_use]
    pub fn evals_ratio(&self, slow: &str, fast: &str, threshold: f64) -> Option<f64> {
        let s_stats = self.result(slow)?.reach_stats(self.direction, threshold);
        let f_stats = self.result(fast)?.reach_stats(self.direction, threshold);
        if s_stats.reached == 0 || f_stats.reached == 0 {
            return None;
        }
        Some(s_stats.censored_mean_evals? / f_stats.censored_mean_evals?)
    }

    /// CSV of the averaged traces: one row per generation, one
    /// `(evals, best)` column pair per strategy.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("generation");
        for r in &self.results {
            out.push_str(&format!(",{}_evals,{}_best", r.name, r.name));
        }
        out.push('\n');
        let rows = self.results.iter().map(|r| r.averaged.len()).max().unwrap_or(0);
        for i in 0..rows {
            out.push_str(&i.to_string());
            for r in &self.results {
                match r.averaged.get(i) {
                    Some(p) => {
                        out.push_str(&format!(",{:.2},{:.6}", p.mean_evals, p.mean_best_so_far))
                    }
                    None => out.push_str(",,"),
                }
            }
            out.push('\n');
        }
        out
    }

    /// A fixed-width text table of the averaged traces, sampled every
    /// `every` generations.
    #[must_use]
    pub fn render_table(&self, every: usize) -> String {
        let every = every.max(1);
        let mut out = format!("{:>6} ", "gen");
        for r in &self.results {
            out.push_str(&format!("| {:>24} ", r.name));
        }
        out.push('\n');
        out.push_str(&format!("{:>6} ", ""));
        for _ in &self.results {
            out.push_str(&format!("| {:>11} {:>12} ", "evals", "best"));
        }
        out.push('\n');
        let rows = self.results.iter().map(|r| r.averaged.len()).max().unwrap_or(0);
        let mut i = 0;
        while i < rows {
            out.push_str(&format!("{i:>6} "));
            for r in &self.results {
                match r.averaged.get(i) {
                    Some(p) => out.push_str(&format!(
                        "| {:>11.1} {:>12.4} ",
                        p.mean_evals, p.mean_best_so_far
                    )),
                    None => out.push_str(&format!("| {:>11} {:>12} ", "-", "-")),
                }
            }
            out.push('\n');
            i += every;
        }
        out
    }
}

/// Runs every `(strategy, run)` pair in parallel and averages per strategy.
///
/// Seeds are derived from `config.seed` so results are independent of
/// thread count and strategy order.
///
/// # Errors
///
/// Propagates the first error any run produces.
pub fn compare(
    model: &dyn CostModel,
    query: &Query,
    strategies: &[Strategy],
    config: &CompareConfig,
) -> Result<Comparison> {
    compare_observed(model, query, strategies, config, nautilus_obs::noop())
}

/// [`compare`], streaming every GA run's telemetry to `observer`.
///
/// The observer sees one `RunStart`/`RunEnd` event pair per `(GA strategy,
/// run)` cell; because cells execute in parallel, events from different
/// runs interleave on the stream. Aggregating sinks like
/// [`nautilus_obs::MetricsSink`] handle this natively; for per-run
/// separation prefer [`crate::Nautilus::run_baseline_reported`] /
/// `run_guided_reported` on individual runs. The non-GA strategies
/// (random, annealing, hill climbing) are not event-instrumented.
///
/// # Errors
///
/// As [`compare`].
pub fn compare_observed<'a>(
    model: &'a dyn CostModel,
    query: &Query,
    strategies: &[Strategy],
    config: &CompareConfig,
    observer: &'a dyn SearchObserver,
) -> Result<Comparison> {
    let mut jobs: Vec<(usize, usize)> = Vec::new();
    for s in 0..strategies.len() {
        for r in 0..config.runs {
            jobs.push((s, r));
        }
    }
    let threads = config.threads.clamp(1, 64);
    let chunks: Vec<&[(usize, usize)]> = jobs.chunks(jobs.len().div_ceil(threads)).collect();

    let run_one = |s_idx: usize, run: usize| -> Result<SearchOutcome> {
        let seed = derive_seed(config.seed, (s_idx as u64) << 32 | run as u64);
        let strategy = &strategies[s_idx];
        match strategy.kind() {
            StrategyKind::Baseline => Nautilus::new(model)
                .with_settings(config.settings)
                .with_observer(observer)
                .run_baseline(query, seed),
            StrategyKind::Guided { hints, confidence } => Nautilus::new(model)
                .with_settings(config.settings)
                .with_observer(observer)
                .run_guided(query, hints, *confidence, seed),
            StrategyKind::GuidedFull { hints, confidence } => Nautilus::new(model)
                .with_settings(config.settings)
                .with_observer(observer)
                .with_guided_crossover(true)
                .run_guided(query, hints, *confidence, seed),
            StrategyKind::Random { budget } => crate::baselines::random_search(
                model,
                query,
                *budget,
                config.settings.population as u64,
                seed,
            ),
            StrategyKind::Anneal(cfg) => {
                crate::local::simulated_annealing(model, query, *cfg, seed)
            }
            StrategyKind::HillClimb { budget, patience } => {
                crate::local::hill_climb(model, query, *budget, *patience, seed)
            }
        }
    };

    let mut collected: Vec<(usize, usize, SearchOutcome)> = Vec::with_capacity(jobs.len());
    let mut first_error: Option<crate::error::NautilusError> = None;
    crossbeam::scope(|scope| {
        let handles: Vec<_> = chunks
            .iter()
            .map(|chunk| {
                scope.spawn(move |_| {
                    let mut out = Vec::new();
                    for &(s, r) in *chunk {
                        match run_one(s, r) {
                            Ok(o) => out.push((s, r, o)),
                            Err(e) => return Err(e),
                        }
                    }
                    Ok(out)
                })
            })
            .collect();
        for h in handles {
            match h.join().expect("comparison worker panicked") {
                Ok(mut v) => collected.append(&mut v),
                Err(e) => {
                    first_error.get_or_insert(e);
                }
            }
        }
    })
    .expect("comparison scope panicked");
    if let Some(e) = first_error {
        return Err(e);
    }
    collected.sort_by_key(|(s, r, _)| (*s, *r));

    let results = strategies
        .iter()
        .enumerate()
        .map(|(s_idx, strategy)| {
            let outcomes: Vec<SearchOutcome> = collected
                .iter()
                .filter(|(s, _, _)| *s == s_idx)
                .map(|(_, _, o)| o.clone())
                .collect();
            // Random-search traces have budget-dependent lengths; pad to the
            // longest so averaging stays generation-aligned.
            let padded = pad_traces(outcomes);
            let averaged = average_traces(&padded);
            StrategyResult { name: strategy.name().to_owned(), outcomes: padded, averaged }
        })
        .collect();

    Ok(Comparison { query_name: query.name().to_owned(), direction: query.direction(), results })
}

/// Extends every trace to the longest length by repeating its final point.
fn pad_traces(mut outcomes: Vec<SearchOutcome>) -> Vec<SearchOutcome> {
    let max_len = outcomes.iter().map(|o| o.trace.len()).max().unwrap_or(0);
    for o in &mut outcomes {
        if let Some(&last) = o.trace.last() {
            while o.trace.len() < max_len {
                let mut p = last;
                p.generation = o.trace.len() as u32;
                o.trace.push(p);
            }
        }
    }
    outcomes
}

#[cfg(test)]
mod tests {
    use super::*;
    use nautilus_ga::{Genome, ParamSpace};
    use nautilus_synth::{MetricCatalog, MetricExpr, MetricSet};

    #[derive(Debug)]
    struct Slope {
        space: ParamSpace,
        catalog: MetricCatalog,
    }

    impl Slope {
        fn new() -> Self {
            Slope {
                space: ParamSpace::builder()
                    .int("x", 0, 20, 1)
                    .int("y", 0, 20, 1)
                    .int("z", 0, 20, 1)
                    .build()
                    .unwrap(),
                catalog: MetricCatalog::new([("cost", "u")]).unwrap(),
            }
        }
    }

    impl CostModel for Slope {
        fn name(&self) -> &str {
            "slope"
        }
        fn space(&self) -> &ParamSpace {
            &self.space
        }
        fn catalog(&self) -> &MetricCatalog {
            &self.catalog
        }
        fn evaluate(&self, g: &Genome) -> Option<MetricSet> {
            let v = g.genes().iter().map(|&x| f64::from(x)).sum::<f64>();
            Some(self.catalog.set(vec![v + 1.0]).unwrap())
        }
    }

    fn fixture() -> (Slope, Query, HintSet) {
        let model = Slope::new();
        let q = Query::minimize("cost", MetricExpr::metric(model.catalog.require("cost").unwrap()));
        let hints = HintSet::for_metric("cost")
            .bias("x", 1.0)
            .unwrap()
            .bias("y", 1.0)
            .unwrap()
            .bias("z", 1.0)
            .unwrap()
            .build();
        (model, q, hints)
    }

    fn small_config(runs: usize) -> CompareConfig {
        CompareConfig {
            runs,
            seed: 99,
            settings: GaSettings { generations: 25, ..GaSettings::default() },
            threads: 4,
        }
    }

    #[test]
    fn comparison_runs_all_strategies_and_averages() {
        let (model, q, hints) = fixture();
        let strategies = [
            Strategy::baseline(),
            Strategy::guided("nautilus-strong", hints, Some(Confidence::STRONG)),
            Strategy::random(120),
        ];
        let cmp = compare(&model, &q, &strategies, &small_config(6)).unwrap();
        assert_eq!(cmp.results.len(), 3);
        for r in &cmp.results {
            assert_eq!(r.outcomes.len(), 6);
            assert!(!r.averaged.is_empty());
        }
        // Guided beats baseline in mean final quality on this biased slope.
        let base = cmp.result("baseline").unwrap().mean_best();
        let strong = cmp.result("nautilus-strong").unwrap().mean_best();
        assert!(strong <= base + 1.0, "strong {strong} vs base {base}");
    }

    #[test]
    fn comparison_is_thread_count_invariant() {
        let (model, q, hints) = fixture();
        let strategies = [Strategy::baseline(), Strategy::guided("g", hints, None)];
        let mut c1 = small_config(4);
        c1.threads = 1;
        let mut c8 = small_config(4);
        c8.threads = 8;
        let a = compare(&model, &q, &strategies, &c1).unwrap();
        let b = compare(&model, &q, &strategies, &c8).unwrap();
        for (ra, rb) in a.results.iter().zip(&b.results) {
            assert_eq!(ra.outcomes, rb.outcomes);
        }
    }

    #[test]
    fn evals_ratio_compares_convergence_cost() {
        let (model, q, hints) = fixture();
        let strategies =
            [Strategy::baseline(), Strategy::guided("strong", hints, Some(Confidence::STRONG))];
        let cmp = compare(&model, &q, &strategies, &small_config(8)).unwrap();
        let ratio = cmp.evals_ratio("baseline", "strong", 6.0);
        if let Some(r) = ratio {
            assert!(r > 0.0);
        }
        assert!(cmp.evals_ratio("nope", "strong", 6.0).is_none());
    }

    #[test]
    fn csv_and_table_render() {
        let (model, q, hints) = fixture();
        let strategies = [Strategy::baseline(), Strategy::guided("g", hints, None)];
        let cmp = compare(&model, &q, &strategies, &small_config(3)).unwrap();
        let csv = cmp.to_csv();
        assert!(csv.starts_with("generation,baseline_evals,baseline_best,g_evals,g_best"));
        assert_eq!(csv.lines().count(), 1 + 26);
        let table = cmp.render_table(5);
        assert!(table.contains("baseline"));
        assert!(table.contains("evals"));
    }

    #[test]
    fn observed_comparison_streams_every_ga_run() {
        use nautilus_obs::{InMemorySink, SearchEvent};

        let (model, q, hints) = fixture();
        let strategies =
            [Strategy::baseline(), Strategy::guided("g", hints, Some(Confidence::STRONG))];
        let sink = InMemorySink::new();
        let cmp = compare_observed(&model, &q, &strategies, &small_config(3), &sink).unwrap();

        let events = sink.events();
        let run_starts =
            events.iter().filter(|e| matches!(e, SearchEvent::RunStart { .. })).count();
        let run_ends = events.iter().filter(|e| matches!(e, SearchEvent::RunEnd { .. })).count();
        assert_eq!(run_starts, 2 * 3, "one RunStart per (GA strategy, run) cell");
        assert_eq!(run_ends, run_starts);

        // Per-lookup events across all interleaved runs reconcile with the
        // summed job accounting of the outcomes.
        let evals =
            events.iter().filter(|e| matches!(e, SearchEvent::EvalCompleted { .. })).count() as u64;
        let lookups: u64 = cmp
            .results
            .iter()
            .flat_map(|r| r.outcomes.iter())
            .map(|o| o.jobs.total_lookups())
            .sum();
        assert_eq!(evals, lookups);

        // Observation must not perturb the comparison.
        let plain = compare(&model, &q, &strategies, &small_config(3)).unwrap();
        for (ra, rb) in cmp.results.iter().zip(&plain.results) {
            assert_eq!(ra.outcomes, rb.outcomes);
        }
    }

    #[test]
    fn random_traces_are_padded_for_averaging() {
        let (model, q, _) = fixture();
        let strategies = [Strategy::random(50)];
        let cmp = compare(&model, &q, &strategies, &small_config(5)).unwrap();
        let r = &cmp.results[0];
        let len = r.outcomes[0].trace.len();
        assert!(r.outcomes.iter().all(|o| o.trace.len() == len));
    }

    #[test]
    fn extended_strategy_kinds_run_in_comparisons() {
        let (model, q, hints) = fixture();
        let strategies = [
            Strategy::guided_full("full", hints, Some(Confidence::STRONG)),
            Strategy::anneal(crate::local::AnnealConfig {
                budget: 80,
                ..crate::local::AnnealConfig::default()
            }),
            Strategy::hill_climb(80, 20),
        ];
        let cmp = compare(&model, &q, &strategies, &small_config(3)).unwrap();
        assert_eq!(cmp.results.len(), 3);
        for r in &cmp.results {
            assert_eq!(r.outcomes.len(), 3);
            for o in &r.outcomes {
                assert!(o.best_value.is_finite());
                assert!(o.total_evals() > 0);
            }
        }
        // Budgeted strategies respect their budgets.
        for name in ["simulated-annealing", "hill-climb"] {
            for o in &cmp.result(name).unwrap().outcomes {
                assert!(o.total_evals() <= 80, "{name} overspent: {}", o.total_evals());
            }
        }
    }
}
