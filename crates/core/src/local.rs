//! Local-search comparators: simulated annealing and stochastic hill
//! climbing.
//!
//! The paper's related work notes that "simulated annealing has long been
//! used in physical design automation problems"; these implementations let
//! the evaluation compare Nautilus against the classic single-point
//! metaheuristics on the same synthesis-job accounting.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use nautilus_ga::{Genome, ParamId};
use nautilus_synth::{CostModel, SynthJobRunner};

use crate::error::{NautilusError, Result};
use crate::query::Query;
use crate::trace::{SearchOutcome, TracePoint};

/// Configuration of a simulated-annealing run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnnealConfig {
    /// Distinct-evaluation budget (synthesis jobs).
    pub budget: u64,
    /// Starting temperature, in units of the objective's score scale.
    pub t_initial: f64,
    /// Final temperature.
    pub t_final: f64,
    /// Trace window: record a point every this many distinct evaluations.
    pub window: u64,
}

impl Default for AnnealConfig {
    fn default() -> Self {
        AnnealConfig { budget: 400, t_initial: 50.0, t_final: 0.1, window: 10 }
    }
}

/// Simulated annealing over a cost model's parameter lattice.
///
/// The move set perturbs one uniformly chosen gene to a random other
/// value; acceptance follows Metropolis with a geometric cooling schedule
/// across the evaluation budget. Infeasible proposals are rejected
/// outright (they still count as infeasible attempts in the job stats, as
/// a failed generator run would).
///
/// # Errors
///
/// Returns [`NautilusError::EmptyBudget`] for a zero budget and a
/// feasibility error if no feasible starting point can be sampled.
pub fn simulated_annealing(
    model: &dyn CostModel,
    query: &Query,
    config: AnnealConfig,
    seed: u64,
) -> Result<SearchOutcome> {
    if config.budget == 0 {
        return Err(NautilusError::EmptyBudget);
    }
    let space = model.space();
    let runner = SynthJobRunner::new(model);
    let mut rng = StdRng::seed_from_u64(seed);
    let direction = query.direction();
    let score_of = |runner: &SynthJobRunner<'_>, g: &Genome| -> Option<f64> {
        runner.evaluate(g).and_then(|m| query.objective(&m)).map(|v| direction.to_score(v))
    };

    // Feasible starting point.
    let mut current = None;
    for _ in 0..10_000 {
        let g = space.random_genome(&mut rng);
        if let Some(s) = score_of(&runner, &g) {
            current = Some((g, s));
            break;
        }
        if runner.distinct_jobs() >= config.budget {
            break;
        }
    }
    let (mut cur_g, mut cur_s) = current
        .ok_or(NautilusError::Ga(nautilus_ga::GaError::NoFeasibleGenome { attempts: 10_000 }))?;
    let (mut best_g, mut best_s) = (cur_g.clone(), cur_s);

    let mut trace = Vec::new();
    let mut step = 0u32;
    let t0 = config.t_initial.max(1e-9);
    let t1 = config.t_final.max(1e-12).min(t0);
    let mut attempts: u64 = 0;
    let max_attempts = config.budget.saturating_mul(1000);

    while runner.distinct_jobs() < config.budget && attempts < max_attempts {
        attempts += 1;
        let progress = (runner.distinct_jobs() as f64 / config.budget as f64).clamp(0.0, 1.0);
        let temperature = t0 * (t1 / t0).powf(progress);

        // Single-gene neighbor.
        let mut neighbor = cur_g.clone();
        let idx = rng.random_range(0..space.num_params());
        let id = ParamId::try_from_index(space, idx).expect("index in range");
        let card = space.param(id).cardinality();
        if card > 1 {
            let mut draw = rng.random_range(0..card - 1) as u32;
            if draw >= neighbor.gene(id) {
                draw += 1;
            }
            neighbor.set_gene(id, draw);
        }

        let before = runner.distinct_jobs();
        let Some(s) = score_of(&runner, &neighbor) else {
            continue;
        };
        let was_new = runner.distinct_jobs() > before;
        let accept = s >= cur_s || rng.random::<f64>() < ((s - cur_s) / temperature).exp();
        if accept {
            cur_g = neighbor;
            cur_s = s;
            if cur_s > best_s {
                best_s = cur_s;
                best_g = cur_g.clone();
            }
        }
        let jobs = runner.distinct_jobs();
        if was_new && jobs.is_multiple_of(config.window.max(1)) {
            trace.push(TracePoint {
                generation: step,
                evals: jobs,
                best_in_gen: direction.from_score(cur_s),
                mean_in_gen: direction.from_score(cur_s),
                best_so_far: direction.from_score(best_s),
            });
            step += 1;
        }
    }
    let jobs = runner.distinct_jobs();
    if trace.last().is_none_or(|p| p.evals != jobs) {
        trace.push(TracePoint {
            generation: step,
            evals: jobs,
            best_in_gen: direction.from_score(cur_s),
            mean_in_gen: direction.from_score(cur_s),
            best_so_far: direction.from_score(best_s),
        });
    }

    Ok(SearchOutcome {
        strategy: "simulated-annealing".to_owned(),
        trace,
        best_genome: best_g,
        best_value: direction.from_score(best_s),
        jobs: runner.stats(),
        faults: Default::default(),
        health: Default::default(),
        stop: Default::default(),
    })
}

/// Stochastic first-improvement hill climbing with random restarts.
///
/// From a random feasible start, repeatedly propose single-gene changes
/// and accept any improvement; after `patience` consecutive rejected
/// proposals the climber restarts from a fresh random point. Runs until
/// the distinct-evaluation budget is spent.
///
/// # Errors
///
/// Returns [`NautilusError::EmptyBudget`] for a zero budget and a
/// feasibility error if no feasible point is ever found.
pub fn hill_climb(
    model: &dyn CostModel,
    query: &Query,
    budget: u64,
    patience: u32,
    seed: u64,
) -> Result<SearchOutcome> {
    if budget == 0 {
        return Err(NautilusError::EmptyBudget);
    }
    let space = model.space();
    let runner = SynthJobRunner::new(model);
    let mut rng = StdRng::seed_from_u64(seed);
    let direction = query.direction();
    let patience = patience.max(1);
    let score_of = |runner: &SynthJobRunner<'_>, g: &Genome| -> Option<f64> {
        runner.evaluate(g).and_then(|m| query.objective(&m)).map(|v| direction.to_score(v))
    };

    let mut best: Option<(Genome, f64)> = None;
    let mut trace = Vec::new();
    let mut step = 0u32;
    let mut attempts: u64 = 0;
    let max_attempts = budget.saturating_mul(1000);

    'restarts: while runner.distinct_jobs() < budget && attempts < max_attempts {
        // Fresh random start.
        let mut cur: Option<(Genome, f64)> = None;
        while cur.is_none() && attempts < max_attempts && runner.distinct_jobs() < budget {
            attempts += 1;
            let g = space.random_genome(&mut rng);
            cur = score_of(&runner, &g).map(|s| (g, s));
        }
        let Some((mut cur_g, mut cur_s)) = cur else {
            break 'restarts;
        };
        if best.as_ref().is_none_or(|(_, b)| cur_s > *b) {
            best = Some((cur_g.clone(), cur_s));
        }

        let mut stuck = 0u32;
        while stuck < patience && runner.distinct_jobs() < budget && attempts < max_attempts {
            attempts += 1;
            let mut neighbor = cur_g.clone();
            let idx = rng.random_range(0..space.num_params());
            let id = ParamId::try_from_index(space, idx).expect("index in range");
            let card = space.param(id).cardinality();
            if card > 1 {
                let mut draw = rng.random_range(0..card - 1) as u32;
                if draw >= neighbor.gene(id) {
                    draw += 1;
                }
                neighbor.set_gene(id, draw);
            }
            let before = runner.distinct_jobs();
            let improved = match score_of(&runner, &neighbor) {
                Some(s) if s > cur_s => {
                    cur_g = neighbor;
                    cur_s = s;
                    if best.as_ref().is_none_or(|(_, b)| s > *b) {
                        best = Some((cur_g.clone(), s));
                    }
                    true
                }
                _ => false,
            };
            stuck = if improved { 0 } else { stuck + 1 };
            let jobs = runner.distinct_jobs();
            if runner.distinct_jobs() > before && jobs.is_multiple_of(10) {
                let best_so_far = best.as_ref().map_or(f64::NAN, |(_, s)| direction.from_score(*s));
                trace.push(TracePoint {
                    generation: step,
                    evals: jobs,
                    best_in_gen: direction.from_score(cur_s),
                    mean_in_gen: direction.from_score(cur_s),
                    best_so_far,
                });
                step += 1;
            }
        }
    }

    let (best_genome, best_score) =
        best.ok_or(NautilusError::Ga(nautilus_ga::GaError::NoFeasibleGenome {
            attempts: attempts as usize,
        }))?;
    let jobs = runner.distinct_jobs();
    if trace.last().is_none_or(|p| p.evals != jobs) {
        trace.push(TracePoint {
            generation: step,
            evals: jobs,
            best_in_gen: direction.from_score(best_score),
            mean_in_gen: direction.from_score(best_score),
            best_so_far: direction.from_score(best_score),
        });
    }
    Ok(SearchOutcome {
        strategy: "hill-climb".to_owned(),
        trace,
        best_genome,
        best_value: direction.from_score(best_score),
        jobs: runner.stats(),
        faults: Default::default(),
        health: Default::default(),
        stop: Default::default(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nautilus_ga::ParamSpace;
    use nautilus_synth::{MetricCatalog, MetricExpr, MetricSet};

    /// Two-basin landscape: a deceptive local optimum at (0,0) and the
    /// global optimum at (25, 25), separated by a ridge.
    #[derive(Debug)]
    struct TwoBasins {
        space: ParamSpace,
        catalog: MetricCatalog,
    }

    impl TwoBasins {
        fn new() -> Self {
            TwoBasins {
                space: ParamSpace::builder().int("x", 0, 31, 1).int("y", 0, 31, 1).build().unwrap(),
                catalog: MetricCatalog::new([("v", "units")]).unwrap(),
            }
        }
    }

    impl CostModel for TwoBasins {
        fn name(&self) -> &str {
            "two-basins"
        }
        fn space(&self) -> &ParamSpace {
            &self.space
        }
        fn catalog(&self) -> &MetricCatalog {
            &self.catalog
        }
        fn evaluate(&self, g: &Genome) -> Option<MetricSet> {
            let x = f64::from(g.gene_at(0));
            let y = f64::from(g.gene_at(1));
            let local = 30.0 - ((x * x + y * y).sqrt());
            let global = 45.0 - (((x - 25.0).powi(2) + (y - 25.0).powi(2)).sqrt());
            Some(self.catalog.set(vec![local.max(global)]).unwrap())
        }
    }

    fn q(model: &TwoBasins) -> Query {
        Query::maximize("v", MetricExpr::metric(model.catalog.require("v").unwrap()))
    }

    #[test]
    fn annealing_converges_and_respects_budget() {
        let model = TwoBasins::new();
        let out = simulated_annealing(&model, &q(&model), AnnealConfig::default(), 3).unwrap();
        assert!(out.jobs.jobs <= 400);
        assert!(out.best_value > 35.0, "annealing stuck: {}", out.best_value);
        for w in out.trace.windows(2) {
            assert!(w[1].best_so_far >= w[0].best_so_far);
            assert!(w[1].evals >= w[0].evals);
        }
        assert_eq!(out.strategy, "simulated-annealing");
    }

    #[test]
    fn annealing_is_deterministic_per_seed() {
        let model = TwoBasins::new();
        let a = simulated_annealing(&model, &q(&model), AnnealConfig::default(), 9).unwrap();
        let b = simulated_annealing(&model, &q(&model), AnnealConfig::default(), 9).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn hill_climb_escapes_via_restarts() {
        let model = TwoBasins::new();
        let out = hill_climb(&model, &q(&model), 400, 40, 5).unwrap();
        assert!(out.jobs.jobs <= 400);
        // With restarts, the climber should find the global basin.
        assert!(out.best_value > 40.0, "hill climb stuck: {}", out.best_value);
        assert_eq!(out.strategy, "hill-climb");
    }

    #[test]
    fn zero_budgets_are_rejected() {
        let model = TwoBasins::new();
        assert!(matches!(
            simulated_annealing(
                &model,
                &q(&model),
                AnnealConfig { budget: 0, ..AnnealConfig::default() },
                0
            ),
            Err(NautilusError::EmptyBudget)
        ));
        assert!(matches!(
            hill_climb(&model, &q(&model), 0, 10, 0),
            Err(NautilusError::EmptyBudget)
        ));
    }

    #[test]
    fn minimization_works_for_both() {
        let model = TwoBasins::new();
        let query = Query::minimize("v", MetricExpr::metric(model.catalog.require("v").unwrap()));
        let sa = simulated_annealing(&model, &query, AnnealConfig::default(), 1).unwrap();
        let hc = hill_climb(&model, &query, 300, 30, 1).unwrap();
        // The grid minimum of max(local, global) is ~17.27, on the far
        // edge between the two basins.
        assert!(sa.best_value < 19.0, "sa: {}", sa.best_value);
        assert!(hc.best_value < 19.0, "hc: {}", hc.best_value);
    }
}
