//! Naive search baselines the paper compares against: random sampling and
//! exhaustive (brute-force) search.

use rand::rngs::StdRng;
use rand::SeedableRng;

use nautilus_ga::Genome;
use nautilus_synth::{CostModel, Dataset, SynthJobRunner};

use crate::error::{NautilusError, Result};
use crate::query::Query;
use crate::trace::{SearchOutcome, TracePoint};

/// Uniform random sampling of the design space, evaluating through the
/// synthesis cache until `budget` distinct feasible designs were
/// synthesized.
///
/// A trace point is recorded every `window` distinct evaluations so random
/// search plots on the same axes as the GA strategies (the paper's footnote
/// 3 compares against exactly this strategy).
///
/// # Errors
///
/// Returns [`NautilusError::EmptyBudget`] for a zero budget.
pub fn random_search(
    model: &dyn CostModel,
    query: &Query,
    budget: u64,
    window: u64,
    seed: u64,
) -> Result<SearchOutcome> {
    if budget == 0 {
        return Err(NautilusError::EmptyBudget);
    }
    let window = window.max(1);
    let runner = SynthJobRunner::new(model);
    let mut rng = StdRng::seed_from_u64(seed);
    let direction = query.direction();

    let mut best: Option<(Genome, f64)> = None;
    let mut trace = Vec::new();
    let mut window_values: Vec<f64> = Vec::new();
    let mut step = 0u32;
    // Attempt cap guards against models that are almost entirely infeasible.
    let max_attempts = budget.saturating_mul(1000);
    let mut attempts = 0u64;

    while runner.distinct_jobs() < budget && attempts < max_attempts {
        attempts += 1;
        let g = model.space().random_genome(&mut rng);
        let before = runner.distinct_jobs();
        let value = runner.evaluate(&g).and_then(|m| query.objective(&m));
        let was_new = runner.distinct_jobs() > before;
        if let Some(v) = value {
            if was_new {
                window_values.push(v);
            }
            let better = match &best {
                None => true,
                Some((_, b)) => direction.is_better(v, *b),
            };
            if better {
                best = Some((g, v));
            }
        }
        let jobs = runner.distinct_jobs();
        if was_new && jobs.is_multiple_of(window) {
            push_point(&mut trace, step, jobs, &window_values, &best);
            window_values.clear();
            step += 1;
        }
    }
    // Final partial window.
    let jobs = runner.distinct_jobs();
    if trace.last().is_none_or(|p: &TracePoint| p.evals != jobs) {
        push_point(&mut trace, step, jobs, &window_values, &best);
    }

    let (best_genome, best_value) =
        best.ok_or(NautilusError::Ga(nautilus_ga::GaError::NoFeasibleGenome {
            attempts: attempts as usize,
        }))?;
    Ok(SearchOutcome {
        strategy: "random".to_owned(),
        trace,
        best_genome,
        best_value,
        jobs: runner.stats(),
        faults: Default::default(),
        health: Default::default(),
        stop: Default::default(),
    })
}

fn push_point(
    trace: &mut Vec<TracePoint>,
    step: u32,
    evals: u64,
    window_values: &[f64],
    best: &Option<(Genome, f64)>,
) {
    let best_so_far = best.as_ref().map_or(f64::NAN, |(_, v)| *v);
    let (best_in_gen, mean_in_gen) = if window_values.is_empty() {
        (best_so_far, best_so_far)
    } else {
        let sum: f64 = window_values.iter().sum();
        let mut best_w = window_values[0];
        for &v in window_values {
            // Window best in either direction is ambiguous; report the value
            // closest to the overall best.
            if (v - best_so_far).abs() < (best_w - best_so_far).abs() {
                best_w = v;
            }
        }
        (best_w, sum / window_values.len() as f64)
    };
    trace.push(TracePoint { generation: step, evals, best_in_gen, mean_in_gen, best_so_far });
}

/// Exhaustive search over a characterized dataset: the ground-truth optimum
/// (at the cost the paper calls "prohibitive").
///
/// Returns `(genome, objective value, designs examined)`; constraint- or
/// finiteness-infeasible entries are skipped.
///
/// # Errors
///
/// Returns [`NautilusError::Synth`] with
/// [`nautilus_synth::SynthError::EmptyDataset`] if no entry satisfies the
/// query.
pub fn brute_force(dataset: &Dataset, query: &Query) -> Result<(Genome, f64, u64)> {
    let direction = query.direction();
    let mut best: Option<(Genome, f64)> = None;
    let mut examined = 0u64;
    for (g, m) in dataset.iter() {
        examined += 1;
        if let Some(v) = query.objective(m) {
            let better = match &best {
                None => true,
                Some((_, b)) => direction.is_better(v, *b),
            };
            if better {
                best = Some((g.clone(), v));
            }
        }
    }
    best.map(|(g, v)| (g, v, examined))
        .ok_or(NautilusError::Synth(nautilus_synth::SynthError::EmptyDataset))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nautilus_ga::ParamSpace;
    use nautilus_synth::{MetricCatalog, MetricExpr, MetricSet};

    #[derive(Debug)]
    struct Grid {
        space: ParamSpace,
        catalog: MetricCatalog,
    }

    impl Grid {
        fn new() -> Self {
            Grid {
                space: ParamSpace::builder().int("x", 0, 31, 1).int("y", 0, 31, 1).build().unwrap(),
                catalog: MetricCatalog::new([("v", "units")]).unwrap(),
            }
        }
    }

    impl CostModel for Grid {
        fn name(&self) -> &str {
            "grid"
        }
        fn space(&self) -> &ParamSpace {
            &self.space
        }
        fn catalog(&self) -> &MetricCatalog {
            &self.catalog
        }
        fn evaluate(&self, g: &Genome) -> Option<MetricSet> {
            if g.gene_at(0) == 13 {
                return None; // infeasible stripe
            }
            let v = f64::from(g.gene_at(0)) * 32.0 + f64::from(g.gene_at(1));
            Some(self.catalog.set(vec![v]).unwrap())
        }
    }

    fn q(model: &Grid) -> Query {
        Query::minimize("v", MetricExpr::metric(model.catalog.require("v").unwrap()))
    }

    #[test]
    fn random_search_respects_budget_and_improves() {
        let model = Grid::new();
        let query = q(&model);
        let out = random_search(&model, &query, 100, 10, 42).unwrap();
        assert_eq!(out.jobs.jobs, 100);
        assert_eq!(out.strategy, "random");
        assert!(out.best_value < 100.0, "100 samples should find a decent point");
        // Trace is monotone in both axes.
        for w in out.trace.windows(2) {
            assert!(w[1].evals >= w[0].evals);
            assert!(w[1].best_so_far <= w[0].best_so_far);
        }
        assert_eq!(out.trace.last().unwrap().evals, 100);
    }

    #[test]
    fn random_search_is_deterministic() {
        let model = Grid::new();
        let query = q(&model);
        let a = random_search(&model, &query, 50, 5, 7).unwrap();
        let b = random_search(&model, &query, 50, 5, 7).unwrap();
        assert_eq!(a, b);
        let c = random_search(&model, &query, 50, 5, 8).unwrap();
        assert_ne!(a.best_genome, c.best_genome);
    }

    #[test]
    fn zero_budget_is_rejected() {
        let model = Grid::new();
        let query = q(&model);
        assert_eq!(random_search(&model, &query, 0, 5, 0).unwrap_err(), NautilusError::EmptyBudget);
    }

    #[test]
    fn brute_force_finds_global_optimum() {
        let model = Grid::new();
        let query = q(&model);
        let dataset = Dataset::characterize(&model, 4).unwrap();
        let (g, v, examined) = brute_force(&dataset, &query).unwrap();
        assert_eq!(v, 0.0);
        assert_eq!(g.genes(), &[0, 0]);
        assert_eq!(examined, 31 * 32); // one x stripe infeasible
    }

    #[test]
    fn brute_force_respects_constraints() {
        let model = Grid::new();
        let vexpr = MetricExpr::metric(model.catalog.require("v").unwrap());
        let query = Query::minimize("v", vexpr.clone()).with_constraint(
            vexpr,
            crate::query::ConstraintOp::Ge,
            500.0,
        );
        let dataset = Dataset::characterize(&model, 2).unwrap();
        let (_, v, _) = brute_force(&dataset, &query).unwrap();
        assert_eq!(v, 500.0); // x=15, y=20 -> 15*32 + 20 = 500, the smallest feasible value
    }
}
