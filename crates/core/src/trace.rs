//! Search traces: quality-of-results versus cost, per run and averaged.
//!
//! The paper's Figures 3–7 plot the best objective value of the population
//! against either the generation number or the cumulative number of designs
//! evaluated, averaged over 20–40 runs. [`SearchOutcome`] records one run's
//! curve; [`average_traces`] and [`ReachStats`] provide the aggregations the
//! figures and the in-text convergence claims need.

use serde::{Deserialize, Serialize};

use nautilus_ga::{Direction, FaultStats, Genome, StopReason, SuperviseStats};
use nautilus_synth::JobStats;

/// One point of a search trace (one generation, or one budget step for
/// non-generational strategies).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TracePoint {
    /// Generation number (or step index for random search).
    pub generation: u32,
    /// Cumulative distinct designs evaluated (synthesis jobs) so far.
    pub evals: u64,
    /// Best objective value inside the current population/window.
    pub best_in_gen: f64,
    /// Mean objective value over the current population's feasible members.
    pub mean_in_gen: f64,
    /// Best objective value found so far in the run.
    pub best_so_far: f64,
}

/// The result of one search run.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchOutcome {
    /// Strategy label ("baseline", "nautilus-strong", ...).
    pub strategy: String,
    /// Per-generation curve.
    pub trace: Vec<TracePoint>,
    /// Best design point found.
    pub best_genome: Genome,
    /// Its objective value.
    pub best_value: f64,
    /// Synthesis-job accounting for the whole run.
    pub jobs: JobStats,
    /// Evaluation-failure accounting: retries, recoveries and quarantines.
    /// All-zero unless the run used a fallible evaluator (e.g. a
    /// [`nautilus_synth::FaultyEvaluator`] installed with
    /// [`crate::Nautilus::with_fault_plan`]).
    pub faults: FaultStats,
    /// Supervision health accounting: watchdog firings, hedges and circuit
    /// breaker activity. All-zero unless the run was supervised (a
    /// [`nautilus_ga::SupervisePolicy`] installed with
    /// [`crate::Nautilus::with_supervision`]).
    pub health: SuperviseStats,
    /// Why the search stopped. [`StopReason::Completed`] for a run that
    /// exhausted its configured generations (and for the non-generational
    /// baselines, which always spend their full budget); any other value
    /// means a [`nautilus_ga::RunBudget`] halted the run at a generation
    /// boundary and `trace` covers only the generations scored so far.
    pub stop: StopReason,
}

impl SearchOutcome {
    /// Total distinct designs evaluated by the run.
    #[must_use]
    pub fn total_evals(&self) -> u64 {
        self.jobs.jobs
    }

    /// Cumulative evaluations needed until `best_so_far` reached
    /// `threshold`, or `None` if the run never reached it.
    #[must_use]
    pub fn evals_to_reach(&self, direction: Direction, threshold: f64) -> Option<u64> {
        self.trace
            .iter()
            .find(|p| p.best_so_far.is_finite() && !direction.is_better(threshold, p.best_so_far))
            .map(|p| p.evals)
    }

    /// Generation at which `best_so_far` reached `threshold`.
    #[must_use]
    pub fn generations_to_reach(&self, direction: Direction, threshold: f64) -> Option<u32> {
        self.trace
            .iter()
            .find(|p| p.best_so_far.is_finite() && !direction.is_better(threshold, p.best_so_far))
            .map(|p| p.generation)
    }
}

/// One point of an averaged trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AvgTracePoint {
    /// Generation number.
    pub generation: u32,
    /// Mean cumulative evaluations at this generation.
    pub mean_evals: f64,
    /// Mean best-so-far objective value.
    pub mean_best_so_far: f64,
    /// Sample standard deviation of best-so-far.
    pub std_best_so_far: f64,
    /// Mean of the per-generation population mean ("average fitness").
    pub mean_of_means: f64,
}

/// Averages runs point-wise by generation index (the paper's averaging of
/// 20–40 runs per experiment).
///
/// All runs must have equal-length traces (they do, for a fixed generation
/// budget).
///
/// # Panics
///
/// Panics if `outcomes` is empty or trace lengths differ.
#[must_use]
pub fn average_traces(outcomes: &[SearchOutcome]) -> Vec<AvgTracePoint> {
    assert!(!outcomes.is_empty(), "cannot average zero runs");
    let len = outcomes[0].trace.len();
    assert!(outcomes.iter().all(|o| o.trace.len() == len), "trace lengths differ across runs");
    (0..len)
        .map(|i| {
            let n = outcomes.len() as f64;
            let evals: f64 = outcomes.iter().map(|o| o.trace[i].evals as f64).sum::<f64>() / n;
            let bests: Vec<f64> = outcomes.iter().map(|o| o.trace[i].best_so_far).collect();
            let mean_best = bests.iter().sum::<f64>() / n;
            let var = if outcomes.len() < 2 {
                0.0
            } else {
                bests.iter().map(|b| (b - mean_best).powi(2)).sum::<f64>() / (n - 1.0)
            };
            let mean_of_means: f64 = outcomes
                .iter()
                .map(|o| {
                    let m = o.trace[i].mean_in_gen;
                    if m.is_finite() {
                        m
                    } else {
                        o.trace[i].best_so_far
                    }
                })
                .sum::<f64>()
                / n;
            AvgTracePoint {
                generation: outcomes[0].trace[i].generation,
                mean_evals: evals,
                mean_best_so_far: mean_best,
                std_best_so_far: var.sqrt(),
                mean_of_means,
            }
        })
        .collect()
}

/// Convergence-cost statistics over repeated runs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReachStats {
    /// Runs that reached the threshold.
    pub reached: usize,
    /// Total runs.
    pub total: usize,
    /// Mean evaluations among runs that reached it (None if none did).
    ///
    /// Beware survivorship bias when few runs reach the threshold: the
    /// lucky ones reached it early. Prefer
    /// [`ReachStats::censored_mean_evals`] for cross-strategy cost
    /// comparisons.
    pub mean_evals: Option<f64>,
    /// Mean generations among runs that reached it.
    pub mean_generations: Option<f64>,
    /// Censored mean evaluations: runs that never reached the threshold
    /// contribute their full evaluation budget. A conservative (biased-low)
    /// estimate of the true expected cost, robust to survivorship bias.
    pub censored_mean_evals: Option<f64>,
    /// Censored mean generations (unreached runs contribute their full
    /// generation budget).
    pub censored_mean_generations: Option<f64>,
}

impl ReachStats {
    /// Computes reach statistics of `outcomes` against a quality threshold.
    #[must_use]
    pub fn compute(outcomes: &[SearchOutcome], direction: Direction, threshold: f64) -> Self {
        let evals: Vec<u64> =
            outcomes.iter().filter_map(|o| o.evals_to_reach(direction, threshold)).collect();
        let gens: Vec<u32> =
            outcomes.iter().filter_map(|o| o.generations_to_reach(direction, threshold)).collect();
        let mean = |xs: &[f64]| {
            if xs.is_empty() {
                None
            } else {
                Some(xs.iter().sum::<f64>() / xs.len() as f64)
            }
        };
        let censored_evals: Vec<f64> = outcomes
            .iter()
            .map(|o| o.evals_to_reach(direction, threshold).unwrap_or(o.total_evals()) as f64)
            .collect();
        let censored_gens: Vec<f64> = outcomes
            .iter()
            .map(|o| {
                o.generations_to_reach(direction, threshold).map_or_else(
                    || o.trace.last().map_or(0.0, |p| f64::from(p.generation)),
                    f64::from,
                )
            })
            .collect();
        ReachStats {
            reached: evals.len(),
            total: outcomes.len(),
            mean_evals: mean(&evals.iter().map(|&e| e as f64).collect::<Vec<_>>()),
            mean_generations: mean(&gens.iter().map(|&g| f64::from(g)).collect::<Vec<_>>()),
            censored_mean_evals: mean(&censored_evals),
            censored_mean_generations: mean(&censored_gens),
        }
    }

    /// Fraction of runs that reached the threshold.
    #[must_use]
    pub fn success_rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.reached as f64 / self.total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(bests: &[f64], evals_step: u64) -> SearchOutcome {
        SearchOutcome {
            strategy: "test".into(),
            trace: bests
                .iter()
                .enumerate()
                .map(|(i, &b)| TracePoint {
                    generation: i as u32,
                    evals: (i as u64 + 1) * evals_step,
                    best_in_gen: b,
                    mean_in_gen: b + 1.0,
                    best_so_far: b,
                })
                .collect(),
            best_genome: Genome::from_genes(vec![0]),
            best_value: *bests.last().unwrap(),
            jobs: JobStats { jobs: bests.len() as u64 * evals_step, ..JobStats::default() },
            faults: FaultStats::default(),
            health: SuperviseStats::default(),
            stop: StopReason::Completed,
        }
    }

    #[test]
    fn evals_to_reach_finds_first_crossing() {
        let o = outcome(&[100.0, 80.0, 50.0, 50.0, 20.0], 10);
        assert_eq!(o.evals_to_reach(Direction::Minimize, 60.0), Some(30));
        assert_eq!(o.generations_to_reach(Direction::Minimize, 60.0), Some(2));
        assert_eq!(o.evals_to_reach(Direction::Minimize, 100.0), Some(10));
        assert_eq!(o.evals_to_reach(Direction::Minimize, 10.0), None);
    }

    #[test]
    fn maximize_thresholds_work() {
        let o = outcome(&[1.0, 2.0, 5.0], 5);
        assert_eq!(o.evals_to_reach(Direction::Maximize, 2.0), Some(10));
        assert_eq!(o.evals_to_reach(Direction::Maximize, 6.0), None);
    }

    #[test]
    fn averaging_means_and_stds() {
        let a = outcome(&[10.0, 4.0], 10);
        let b = outcome(&[20.0, 8.0], 20);
        let avg = average_traces(&[a, b]);
        assert_eq!(avg.len(), 2);
        assert_eq!(avg[0].mean_best_so_far, 15.0);
        assert_eq!(avg[1].mean_best_so_far, 6.0);
        assert_eq!(avg[0].mean_evals, 15.0);
        assert!((avg[0].std_best_so_far - (50.0f64).sqrt()).abs() < 1e-12);
        assert_eq!(avg[1].mean_of_means, 7.0);
    }

    #[test]
    #[should_panic(expected = "zero runs")]
    fn averaging_empty_panics() {
        let _ = average_traces(&[]);
    }

    #[test]
    #[should_panic(expected = "lengths differ")]
    fn averaging_ragged_panics() {
        let a = outcome(&[1.0], 1);
        let b = outcome(&[1.0, 2.0], 1);
        let _ = average_traces(&[a, b]);
    }

    #[test]
    fn averaging_single_run_falls_back_on_infeasible_means() {
        // A generation whose population was entirely infeasible records a
        // NaN mean; averaging must fall back to best-so-far, not poison the
        // whole curve.
        let mut a = outcome(&[5.0, 3.0], 10);
        a.trace[1].mean_in_gen = f64::NAN;
        let avg = average_traces(&[a]);
        assert_eq!(avg.len(), 2);
        assert_eq!(avg[0].std_best_so_far, 0.0, "single run has no spread");
        assert_eq!(avg[0].mean_of_means, 6.0);
        assert_eq!(avg[1].mean_of_means, 3.0, "NaN mean falls back to best_so_far");
        assert!(avg.iter().all(|p| p.mean_best_so_far.is_finite()));
    }

    #[test]
    fn reach_stats_when_no_run_reaches_threshold() {
        let a = outcome(&[100.0, 90.0], 10);
        let b = outcome(&[80.0, 70.0], 5);
        let stats = ReachStats::compute(&[a, b], Direction::Minimize, 1.0);
        assert_eq!(stats.reached, 0);
        assert_eq!(stats.total, 2);
        assert_eq!(stats.success_rate(), 0.0);
        // Survivor-only means are undefined when nobody reached it...
        assert_eq!(stats.mean_evals, None);
        assert_eq!(stats.mean_generations, None);
        // ...but censored means still are: each run contributes its budget.
        assert_eq!(stats.censored_mean_evals, Some(15.0));
        assert_eq!(stats.censored_mean_generations, Some(1.0));
    }

    #[test]
    fn reach_stats_aggregate_partial_success() {
        let fast = outcome(&[100.0, 10.0], 10);
        let slow = outcome(&[100.0, 90.0], 10);
        let stats = ReachStats::compute(&[fast, slow], Direction::Minimize, 50.0);
        assert_eq!(stats.reached, 1);
        assert_eq!(stats.total, 2);
        assert_eq!(stats.mean_evals, Some(20.0));
        assert_eq!(stats.mean_generations, Some(1.0));
        // Censored: the unreached run contributes its full 20 evals /
        // final generation, removing survivorship bias.
        assert_eq!(stats.censored_mean_evals, Some(20.0));
        assert_eq!(stats.censored_mean_generations, Some(1.0));
        assert_eq!(stats.success_rate(), 0.5);
        let none = ReachStats::compute(&[], Direction::Minimize, 1.0);
        assert_eq!(none.success_rate(), 0.0);
        assert_eq!(none.mean_evals, None);
        assert_eq!(none.censored_mean_evals, None);
    }
}
