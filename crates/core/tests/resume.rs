//! Crash-safe search at the Nautilus level: a budget-interrupted,
//! checkpointed run resumed with [`Nautilus::resume_from`] must reproduce
//! the uninterrupted run bit-for-bit — outcome, report (modulo the
//! durability block and wall-clock timings), and telemetry stream — at
//! every worker count.

use std::path::PathBuf;

use nautilus::{
    BreakerPolicy, Confidence, FaultPlan, HintSet, InMemorySink, Nautilus, Query, RunBudget,
    RunReport, SearchEvent, StopReason, SupervisePolicy,
};
use nautilus_ga::{Genome, ParamSpace, ParamValue};
use nautilus_synth::{CostModel, MetricCatalog, MetricExpr, MetricSet};

#[derive(Debug)]
struct RidgeModel {
    space: ParamSpace,
    catalog: MetricCatalog,
}

impl RidgeModel {
    fn new() -> Self {
        RidgeModel {
            space: ParamSpace::builder()
                .int("x", 0, 15, 1)
                .int("y", 0, 15, 1)
                .choices("mode", ["slow", "fast"])
                .build()
                .unwrap(),
            catalog: MetricCatalog::new([("cost", "units")]).unwrap(),
        }
    }
}

impl CostModel for RidgeModel {
    fn name(&self) -> &str {
        "ridge"
    }
    fn space(&self) -> &ParamSpace {
        &self.space
    }
    fn catalog(&self) -> &MetricCatalog {
        &self.catalog
    }
    fn evaluate(&self, g: &Genome) -> Option<MetricSet> {
        let x = f64::from(g.gene_at(0));
        let y = f64::from(g.gene_at(1));
        let mode = if g.gene_at(2) == 0 { 25.0 } else { 0.0 };
        Some(self.catalog.set(vec![(x - 3.0).powi(2) + y * 2.0 + mode + 1.0]).unwrap())
    }
}

fn query(model: &RidgeModel) -> Query {
    Query::minimize("cost", MetricExpr::metric(model.catalog.require("cost").unwrap()))
}

fn hints() -> HintSet {
    HintSet::for_metric("cost")
        .importance("x", 90)
        .unwrap()
        .bias("x", 0.3)
        .unwrap()
        .target("mode", ParamValue::Sym("fast".into()))
        .unwrap()
        .importance("mode", 80)
        .unwrap()
        .build()
}

fn tempdir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("nautilus-core-resume-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Event-stream digest ignoring span timings, terminal markers, and the
/// durability events that only interrupted/resumed runs emit.
fn strip(events: &[SearchEvent]) -> Vec<String> {
    events
        .iter()
        .filter(|e| {
            !matches!(
                e,
                SearchEvent::SpanEnd { .. }
                    | SearchEvent::RunEnd { .. }
                    | SearchEvent::EvalBatch { .. }
                    | SearchEvent::CheckpointWritten { .. }
                    | SearchEvent::CheckpointRestored { .. }
                    | SearchEvent::CheckpointCorruptSkipped { .. }
                    | SearchEvent::RunInterrupted { .. }
                    | SearchEvent::RunResumed { .. }
            )
        })
        .map(SearchEvent::to_json)
        .collect()
}

/// Blanks out the fields a resume is allowed to differ in: wall-clock
/// timings, process-local span stats, and the durability block itself.
fn normalize(mut report: RunReport) -> RunReport {
    report.wall_nanos = 0;
    report.spans.clear();
    report.durability = Default::default();
    report
}

#[test]
fn interrupted_then_resumed_guided_run_matches_straight_run() {
    let model = RidgeModel::new();
    let q = query(&model);
    let h = hints();

    for workers in [1usize, 2, 8] {
        let straight_sink = InMemorySink::new();
        let (straight, straight_report) = Nautilus::new(&model)
            .with_eval_workers(workers)
            .with_observer(&straight_sink)
            .run_guided_reported(&q, &h, Some(Confidence::STRONG), 77)
            .unwrap();
        assert_eq!(straight.stop, StopReason::Completed);

        let dir = tempdir(&format!("guided-w{workers}"));
        let cut_sink = InMemorySink::new();
        let (cut, _cut_report) = Nautilus::new(&model)
            .with_eval_workers(workers)
            .with_observer(&cut_sink)
            .with_checkpoints(&dir)
            .with_budget(RunBudget::new().with_max_generations(5))
            .run_guided_reported(&q, &h, Some(Confidence::STRONG), 77)
            .unwrap();
        assert_eq!(cut.stop, StopReason::GenerationBudget);
        assert_eq!(cut.trace.len(), 6, "budget run holds generations 0..=5");

        let resumed_sink = InMemorySink::new();
        let (resumed, resumed_report) = Nautilus::new(&model)
            .with_eval_workers(workers)
            .with_observer(&resumed_sink)
            .resume_from_reported(&q, Some((&h, Some(Confidence::STRONG))), &dir)
            .unwrap();

        assert_eq!(resumed, straight, "resumed outcome diverged at {workers} workers");
        assert_eq!(resumed.stop, StopReason::Completed);
        assert_eq!(
            normalize(resumed_report),
            normalize(straight_report.clone()),
            "resumed report diverged at {workers} workers"
        );

        // Interrupted events followed by resumed events replay the straight
        // run's stream exactly (modulo durability markers).
        let mut spliced = strip(&cut_sink.events());
        spliced.extend(strip(&resumed_sink.events()));
        assert_eq!(spliced, strip(&straight_sink.events()), "stream diverged at {workers} workers");

        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn resume_carries_job_accounting_across_the_restart() {
    let model = RidgeModel::new();
    let q = query(&model);

    let straight = Nautilus::new(&model).run_baseline(&q, 9).unwrap();

    let dir = tempdir("jobs");
    let cut = Nautilus::new(&model)
        .with_checkpoints(&dir)
        .with_budget(RunBudget::new().with_max_generations(3))
        .run_baseline(&q, 9)
        .unwrap();
    assert!(cut.jobs.jobs > 0 && cut.jobs.jobs < straight.jobs.jobs);

    let resumed = Nautilus::new(&model).resume_from(&q, None, &dir).unwrap();
    // JobStats are cumulative across the interruption: the resumed process
    // adds the checkpointed offset to its own fresh counters.
    assert_eq!(resumed.jobs, straight.jobs);
    assert_eq!(resumed, straight);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn eval_budget_and_checkpointed_resume_compose() {
    let model = RidgeModel::new();
    let q = query(&model);
    let dir = tempdir("evalbudget");

    let cut = Nautilus::new(&model)
        .with_checkpoints(&dir)
        .with_budget(RunBudget::new().with_max_evaluations(40))
        .run_baseline(&q, 4)
        .unwrap();
    assert_eq!(cut.stop, StopReason::EvalBudget);
    assert!(cut.total_evals() >= 40);

    let straight = Nautilus::new(&model).run_baseline(&q, 4).unwrap();
    let resumed = Nautilus::new(&model).resume_from(&q, None, &dir).unwrap();
    assert_eq!(resumed, straight);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_validates_strategy_against_checkpoint_label() {
    let model = RidgeModel::new();
    let q = query(&model);
    let h = hints();
    let dir = tempdir("label");

    Nautilus::new(&model)
        .with_checkpoints(&dir)
        .with_budget(RunBudget::new().with_max_generations(2))
        .run_guided(&q, &h, Some(Confidence::STRONG), 5)
        .unwrap();

    // A guided checkpoint must not silently continue as a baseline search.
    let err = Nautilus::new(&model).resume_from(&q, None, &dir).unwrap_err();
    assert!(err.to_string().contains("nautilus-strong"), "unexpected error: {err}");

    // The matching configuration resumes fine.
    let resumed =
        Nautilus::new(&model).resume_from(&q, Some((&h, Some(Confidence::STRONG))), &dir).unwrap();
    let straight = Nautilus::new(&model).run_guided(&q, &h, Some(Confidence::STRONG), 5).unwrap();
    assert_eq!(resumed, straight);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn supervised_storm_resumes_with_health_counters_intact() {
    let model = RidgeModel::new();
    let q = query(&model);
    // A storm heavy enough to trip the circuit breaker mid-run: most
    // attempts fail persistently, a slice of the rest hang.
    let plan = FaultPlan::new(31).with_persistent_rate(0.8).with_hang_rate(0.1);
    let policy = SupervisePolicy {
        breaker: BreakerPolicy {
            window: 8,
            min_samples: 4,
            trip_failure_rate: 0.7,
            cooldown_sheds: 6,
            probe_quota: 2,
            probes_to_close: 2,
        },
        ..SupervisePolicy::default()
    };
    let build = || Nautilus::new(&model).with_fault_plan(plan).with_supervision(policy);

    let straight = build().run_baseline(&q, 19).unwrap();
    assert!(straight.health.breaker_trips > 0, "storm never tripped: {:?}", straight.health);
    assert!(straight.health.evals_shed > 0, "open breaker never shed: {:?}", straight.health);

    let dir = tempdir("supervised");
    let cut = build()
        .with_checkpoints(&dir)
        .with_budget(RunBudget::new().with_max_generations(5))
        .run_baseline(&q, 19)
        .unwrap();
    assert_eq!(cut.stop, StopReason::GenerationBudget);

    // The resumed run continues in the checkpointed breaker state and its
    // outcome — health counters included — matches the uninterrupted run.
    let resumed = build().resume_from(&q, None, &dir).unwrap();
    assert_eq!(resumed, straight, "supervised resume diverged (incl. health counters)");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_from_empty_directory_errors_cleanly() {
    let model = RidgeModel::new();
    let q = query(&model);
    let dir = tempdir("empty");
    let err = Nautilus::new(&model).resume_from(&q, None, &dir).unwrap_err();
    assert!(err.to_string().contains("no intact checkpoint"), "unexpected error: {err}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_or_start_is_idempotent_across_interruptions() {
    let model = RidgeModel::new();
    let q = query(&model);
    let h = hints();
    let seed = 4242;

    let (straight, straight_report) =
        Nautilus::new(&model).run_guided_reported(&q, &h, Some(Confidence::STRONG), seed).unwrap();

    // Empty directory: nothing to resume, so the call starts fresh and
    // checkpoints into the same directory.
    let dir = tempdir("resume-or-start");
    assert!(!Nautilus::has_resumable_checkpoint(&dir));
    let (first, first_report) = Nautilus::new(&model)
        .with_checkpoints(&dir)
        .resume_or_start_reported(&q, Some((&h, Some(Confidence::STRONG))), seed)
        .unwrap();
    assert_eq!(first, straight, "fresh start must match a plain guided run");
    assert_eq!(normalize(first_report), normalize(straight_report.clone()));
    assert!(Nautilus::has_resumable_checkpoint(&dir));

    // Interrupt a run part-way, then let resume_or_start pick it up: it
    // must resume (not restart) and still land on the straight result.
    let cut_dir = tempdir("resume-or-start-cut");
    let (cut, _) = Nautilus::new(&model)
        .with_checkpoints(&cut_dir)
        .with_budget(RunBudget::new().with_max_generations(3))
        .run_guided_reported(&q, &h, Some(Confidence::STRONG), seed)
        .unwrap();
    assert_eq!(cut.stop, StopReason::GenerationBudget);
    assert!(Nautilus::has_resumable_checkpoint(&cut_dir));
    let (resumed, resumed_report) = Nautilus::new(&model)
        .with_checkpoints(&cut_dir)
        .resume_or_start_reported(&q, Some((&h, Some(Confidence::STRONG))), seed)
        .unwrap();
    assert_eq!(resumed, straight, "adopted run must replay the uninterrupted one");
    assert_eq!(normalize(resumed_report), normalize(straight_report));

    // Without a configured checkpoint directory the call is a config error,
    // and a directory of corrupt records is not "resumable".
    let err = Nautilus::new(&model)
        .resume_or_start_reported(&q, Some((&h, Some(Confidence::STRONG))), seed)
        .expect_err("missing with_checkpoints must be rejected");
    assert!(err.to_string().contains("with_checkpoints"), "{err}");
    let junk_dir = tempdir("resume-or-start-junk");
    std::fs::write(junk_dir.join("ckpt-00000001.nckpt"), b"not a checkpoint").unwrap();
    assert!(!Nautilus::has_resumable_checkpoint(&junk_dir));

    for dir in [dir, cut_dir, junk_dir] {
        let _ = std::fs::remove_dir_all(dir);
    }
}
