//! # nautilus-proc — out-of-process synthesis evaluators
//!
//! Real deployments of the Nautilus search (DAC 2015) shell out to EDA
//! tools: every evaluation is an external process that can crash, hang,
//! or print garbage. This crate generalizes the in-process
//! `FallibleEvaluator`/`SupervisableEvaluator` boundary across a process
//! boundary:
//!
//! * [`protocol`] — the `NAUTPROC` length-prefixed, CRC-trailed
//!   stdin/stdout framing (versioned records mirroring the `NAUTCKPT`
//!   checkpoint discipline).
//! * [`server`] — the child-side serve loop a synthesis-tool shim runs,
//!   generic over `Read`/`Write` so every pathway is unit-testable
//!   in-memory. Fault knobs mirror the in-process `FaultyEvaluator`.
//! * [`evaluator`] — the parent side: a [`SubprocessEvaluator`] keeping a
//!   pool of warm child processes, routing each genome to a
//!   deterministic slot, mapping child death / garbage / silence onto
//!   the engine's failure taxonomy, and respawning with backoff.
//!
//! The design invariant carried over from the rest of the repo: a search
//! driven through a subprocess evaluator produces **byte-identical
//! outcomes and logically identical event streams** to the same search
//! run in-process, at any worker count, including under fault storms.
//! The trick is that all timing on the wire is *virtual* (the same
//! seeded fault-plan costs the in-process path uses) and every
//! scheduling-dependent effect (which child serves which request) is
//! either deterministic by construction or invisible to accounting.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod evaluator;
pub mod protocol;
pub mod server;

pub use evaluator::{
    ProcError, StashModel, SubprocessConfig, SubprocessEvaluator, SubprocessStats,
};
pub use protocol::{
    Frame, ProtoError, WireOutcome, MAGIC, MAX_BODY_LEN, VERSION, WIRE_FAULT_PERSISTENT,
    WIRE_FAULT_TIMEOUT, WIRE_FAULT_TRANSIENT,
};
pub use server::{serve, ServeExit, ServeOptions};

#[cfg(test)]
pub(crate) mod testmodel;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Frame>();
        assert_send_sync::<WireOutcome>();
        assert_send_sync::<ProtoError>();
        assert_send_sync::<ServeOptions>();
        assert_send_sync::<ServeExit>();
        assert_send_sync::<SubprocessConfig>();
        assert_send_sync::<SubprocessStats>();
        assert_send_sync::<ProcError>();
        assert_send_sync::<SubprocessEvaluator<'static>>();
        assert_send_sync::<StashModel<'static>>();
    }
}
