//! The `NAUTPROC` wire protocol: length-prefixed, CRC-trailed frames over
//! a child process's stdin/stdout.
//!
//! Every frame is one self-delimiting record mirroring the `NAUTCKPT`
//! checkpoint discipline:
//!
//! ```text
//! | MAGIC(8) | version u32 LE | body_len u64 LE | body | crc32 u32 LE |
//! ```
//!
//! * `MAGIC` is the fixed tag `b"NAUTPROC"`.
//! * `version` is [`VERSION`]; readers reject anything else outright.
//! * `body` opens with a one-byte frame kind followed by the kind's
//!   [`WireWriter`]-encoded fields.
//! * The CRC-32 trailer covers everything before it (magic, version,
//!   length, body) using the checkpoint crate's [`crc32`].
//!
//! The conversation is strictly parent-driven after the handshake:
//!
//! ```text
//! child  -> parent   Hello   { model, gene_len, metric_len }
//! parent -> child    Eval    { id, attempt, genes }
//! child  -> parent   Result  { id, outcome }
//! ...                (one Result per Eval, in order)
//! parent -> child    Shutdown
//! ```
//!
//! Decoding distinguishes a *clean* end of stream (EOF exactly on a frame
//! boundary, [`ProtoError::CleanEof`]) from a mid-frame truncation
//! ([`ProtoError::Truncated`]) — the first is how a child notices the
//! parent closed its stdin; the second is always a fault.

use std::io::{Read, Write};

use nautilus_ga::checkpoint::crc32;
use nautilus_obs::{WireReader, WireWriter};

/// Fixed 8-byte tag opening every protocol frame.
pub const MAGIC: &[u8; 8] = b"NAUTPROC";

/// Current protocol version. Bump on any layout change; readers reject
/// unknown versions outright rather than guessing.
pub const VERSION: u32 = 1;

/// Upper bound on a frame body, enforced *before* allocation so a
/// corrupted length prefix cannot drive an OOM.
pub const MAX_BODY_LEN: u64 = 16 * 1024 * 1024;

const KIND_HELLO: u8 = 0;
const KIND_EVAL: u8 = 1;
const KIND_RESULT: u8 = 2;
const KIND_SHUTDOWN: u8 = 3;

const OUTCOME_METRICS: u8 = 0;
const OUTCOME_INFEASIBLE: u8 = 1;
const OUTCOME_FAULT: u8 = 2;

/// Errors from framing, checksum validation, or structural decoding.
#[derive(Debug)]
#[non_exhaustive]
pub enum ProtoError {
    /// The stream ended cleanly on a frame boundary (zero bytes of the
    /// next frame were read). Not a fault for a child waiting on stdin.
    CleanEof,
    /// The stream ended mid-frame.
    Truncated,
    /// The frame does not start with [`MAGIC`].
    BadMagic,
    /// The frame's protocol version is not one this build understands.
    UnsupportedVersion(u32),
    /// The declared body length exceeds [`MAX_BODY_LEN`].
    Oversized(u64),
    /// The CRC-32 over the frame does not match its trailer.
    BadCrc {
        /// Checksum recomputed from the received bytes.
        computed: u32,
        /// Checksum stored in the frame trailer.
        stored: u32,
    },
    /// The body failed structural decoding despite a valid checksum.
    Malformed(String),
    /// An I/O failure other than end-of-stream.
    Io(std::io::Error),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::CleanEof => write!(f, "clean end of stream"),
            ProtoError::Truncated => write!(f, "truncated frame"),
            ProtoError::BadMagic => write!(f, "not a NAUTPROC frame (bad magic)"),
            ProtoError::UnsupportedVersion(v) => {
                write!(f, "unsupported protocol version {v}")
            }
            ProtoError::Oversized(n) => write!(f, "frame body of {n} bytes exceeds cap"),
            ProtoError::BadCrc { computed, stored } => {
                write!(f, "checksum mismatch: computed {computed:#010x}, stored {stored:#010x}")
            }
            ProtoError::Malformed(reason) => write!(f, "malformed frame body: {reason}"),
            ProtoError::Io(e) => write!(f, "i/o failure: {e}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl ProtoError {
    /// Short, deterministic label for telemetry payloads — no byte counts
    /// or OS error text, so event streams stay byte-identical run to run.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            ProtoError::CleanEof => "clean_eof",
            ProtoError::Truncated => "truncated",
            ProtoError::BadMagic => "bad_magic",
            ProtoError::UnsupportedVersion(_) => "unsupported_version",
            ProtoError::Oversized(_) => "oversized",
            ProtoError::BadCrc { .. } => "bad_crc",
            ProtoError::Malformed(_) => "malformed",
            ProtoError::Io(_) => "io",
        }
    }
}

/// How an evaluation attempt ended, as reported by the child.
///
/// The variants deliberately mirror what the in-process
/// `FaultyEvaluator` produces, so a parent can reconstruct the exact
/// same `EvalFailure` taxonomy from the wire.
#[derive(Debug, Clone, PartialEq)]
pub enum WireOutcome {
    /// The tool produced metric values (one per catalog entry).
    Metrics {
        /// True when the tool's output is to be treated as corrupted:
        /// the parent charges the backend, then surfaces NaN so the
        /// engine quarantines the design after retries.
        garbled: bool,
        /// Simulated tool wall time, seconds.
        tool_secs: u64,
        /// Virtual attempt cost for supervision accounting, ms.
        cost_ms: u64,
        /// Metric values in catalog order.
        values: Vec<f64>,
    },
    /// The design point is infeasible for this generator.
    Infeasible {
        /// Virtual attempt cost for supervision accounting, ms.
        cost_ms: u64,
    },
    /// The attempt failed with a classified fault.
    Fault {
        /// Failure class ([`WIRE_FAULT_TRANSIENT`] and friends).
        kind: u8,
        /// Elapsed virtual ms (timeout faults).
        elapsed_ms: u64,
        /// Deadline virtual ms (timeout faults).
        limit_ms: u64,
        /// Human-readable detail; never surfaces in telemetry.
        message: String,
        /// Virtual attempt cost for supervision accounting, ms.
        cost_ms: u64,
        /// True when the child will exit immediately after flushing this
        /// frame (a "dying gasp"): the parent must reap and respawn the
        /// slot before serving the next request.
        dying: bool,
    },
}

/// [`WireOutcome::Fault`] kind: transient worker crash, retryable.
pub const WIRE_FAULT_TRANSIENT: u8 = 0;
/// [`WireOutcome::Fault`] kind: attempt exceeded its deadline.
pub const WIRE_FAULT_TIMEOUT: u8 = 1;
/// [`WireOutcome::Fault`] kind: the generator rejects this design.
pub const WIRE_FAULT_PERSISTENT: u8 = 2;

/// One protocol frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Child -> parent handshake, sent once at startup.
    Hello {
        /// Cost-model name, validated against the parent's model.
        model: String,
        /// Genome length (number of parameters).
        gene_len: u32,
        /// Metric catalog arity.
        metric_len: u32,
    },
    /// Parent -> child evaluation request.
    Eval {
        /// Request id; the matching [`Frame::Result`] echoes it.
        id: u64,
        /// Retry attempt index (drives deterministic fault fates).
        attempt: u32,
        /// Genome gene values.
        genes: Vec<u32>,
    },
    /// Child -> parent evaluation reply.
    Result {
        /// Echo of the request id.
        id: u64,
        /// How the attempt ended.
        outcome: WireOutcome,
    },
    /// Parent -> child orderly-exit request.
    Shutdown,
}

impl Frame {
    /// Encodes this frame as one complete wire record.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut body = WireWriter::new();
        match self {
            Frame::Hello { model, gene_len, metric_len } => {
                body.u8(KIND_HELLO);
                body.str(model);
                body.u32(*gene_len);
                body.u32(*metric_len);
            }
            Frame::Eval { id, attempt, genes } => {
                body.u8(KIND_EVAL);
                body.u64(*id);
                body.u32(*attempt);
                body.usize(genes.len());
                for &g in genes {
                    body.u32(g);
                }
            }
            Frame::Result { id, outcome } => {
                body.u8(KIND_RESULT);
                body.u64(*id);
                encode_outcome(&mut body, outcome);
            }
            Frame::Shutdown => body.u8(KIND_SHUTDOWN),
        }
        let body = body.into_bytes();
        let mut record = Vec::with_capacity(MAGIC.len() + 12 + body.len() + 4);
        record.extend_from_slice(MAGIC);
        record.extend_from_slice(&VERSION.to_le_bytes());
        record.extend_from_slice(&(body.len() as u64).to_le_bytes());
        record.extend_from_slice(&body);
        let crc = crc32(&record);
        record.extend_from_slice(&crc.to_le_bytes());
        record
    }

    /// Decodes one complete wire record.
    pub fn decode(record: &[u8]) -> Result<Frame, ProtoError> {
        let header = MAGIC.len() + 4 + 8;
        if record.len() < header + 4 {
            return Err(if record.len() >= MAGIC.len() && &record[..MAGIC.len()] != MAGIC {
                ProtoError::BadMagic
            } else {
                ProtoError::Truncated
            });
        }
        if &record[..MAGIC.len()] != MAGIC {
            return Err(ProtoError::BadMagic);
        }
        let version = u32::from_le_bytes(record[8..12].try_into().expect("4 bytes"));
        if version != VERSION {
            return Err(ProtoError::UnsupportedVersion(version));
        }
        let body_len = u64::from_le_bytes(record[12..20].try_into().expect("8 bytes"));
        if body_len > MAX_BODY_LEN {
            return Err(ProtoError::Oversized(body_len));
        }
        let body_len = usize::try_from(body_len).map_err(|_| ProtoError::Oversized(u64::MAX))?;
        let crc_offset = header.checked_add(body_len).ok_or(ProtoError::Oversized(u64::MAX))?;
        match record.len() {
            n if n < crc_offset + 4 => return Err(ProtoError::Truncated),
            n if n > crc_offset + 4 => {
                return Err(ProtoError::Malformed("trailing bytes after crc".into()))
            }
            _ => {}
        }
        let computed = crc32(&record[..crc_offset]);
        let stored = u32::from_le_bytes(record[crc_offset..crc_offset + 4].try_into().expect("4"));
        if computed != stored {
            return Err(ProtoError::BadCrc { computed, stored });
        }
        decode_body(&record[header..crc_offset])
    }

    /// Writes this frame to `w` and flushes.
    pub fn write_to(&self, w: &mut impl Write) -> Result<(), ProtoError> {
        w.write_all(&self.encode()).map_err(ProtoError::Io)?;
        w.flush().map_err(ProtoError::Io)
    }

    /// Reads exactly one frame from `r`.
    ///
    /// EOF before the first byte is [`ProtoError::CleanEof`]; EOF anywhere
    /// later is [`ProtoError::Truncated`]. The header is validated before
    /// the body is allocated, so garbage lengths fail fast.
    pub fn read_from(r: &mut impl Read) -> Result<Frame, ProtoError> {
        let mut header = [0u8; 20];
        read_exact_or(r, &mut header, ProtoError::CleanEof)?;
        if &header[..MAGIC.len()] != MAGIC {
            return Err(ProtoError::BadMagic);
        }
        let version = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes"));
        if version != VERSION {
            return Err(ProtoError::UnsupportedVersion(version));
        }
        let body_len = u64::from_le_bytes(header[12..20].try_into().expect("8 bytes"));
        if body_len > MAX_BODY_LEN {
            return Err(ProtoError::Oversized(body_len));
        }
        let body_len = usize::try_from(body_len).map_err(|_| ProtoError::Oversized(u64::MAX))?;
        let mut rest = vec![0u8; body_len + 4];
        read_exact_or(r, &mut rest, ProtoError::Truncated)?;
        let mut record = Vec::with_capacity(20 + rest.len());
        record.extend_from_slice(&header);
        record.extend_from_slice(&rest);
        Frame::decode(&record)
    }
}

/// `read_exact` that maps a zero-progress EOF to `on_empty_eof` and a
/// partial-read EOF to [`ProtoError::Truncated`].
fn read_exact_or(
    r: &mut impl Read,
    buf: &mut [u8],
    on_empty_eof: ProtoError,
) -> Result<(), ProtoError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(if filled == 0 { on_empty_eof } else { ProtoError::Truncated });
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(ProtoError::Io(e)),
        }
    }
    Ok(())
}

fn encode_outcome(w: &mut WireWriter, outcome: &WireOutcome) {
    match outcome {
        WireOutcome::Metrics { garbled, tool_secs, cost_ms, values } => {
            w.u8(OUTCOME_METRICS);
            w.bool(*garbled);
            w.u64(*tool_secs);
            w.u64(*cost_ms);
            w.usize(values.len());
            for &v in values {
                w.f64(v);
            }
        }
        WireOutcome::Infeasible { cost_ms } => {
            w.u8(OUTCOME_INFEASIBLE);
            w.u64(*cost_ms);
        }
        WireOutcome::Fault { kind, elapsed_ms, limit_ms, message, cost_ms, dying } => {
            w.u8(OUTCOME_FAULT);
            w.u8(*kind);
            w.u64(*elapsed_ms);
            w.u64(*limit_ms);
            w.str(message);
            w.u64(*cost_ms);
            w.bool(*dying);
        }
    }
}

fn decode_body(body: &[u8]) -> Result<Frame, ProtoError> {
    let mut r = WireReader::new(body);
    let frame = (|| -> Result<Frame, nautilus_obs::WireError> {
        let kind = r.u8()?;
        let frame = match kind {
            KIND_HELLO => {
                Frame::Hello { model: r.str()?, gene_len: r.u32()?, metric_len: r.u32()? }
            }
            KIND_EVAL => {
                let id = r.u64()?;
                let attempt = r.u32()?;
                let n = r.len_prefix()?;
                let mut genes = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    genes.push(r.u32()?);
                }
                Frame::Eval { id, attempt, genes }
            }
            KIND_RESULT => {
                let id = r.u64()?;
                let outcome = decode_outcome(&mut r)?;
                Frame::Result { id, outcome }
            }
            KIND_SHUTDOWN => Frame::Shutdown,
            other => return Err(nautilus_obs::WireError(format!("unknown frame kind {other}"))),
        };
        r.finish()?;
        Ok(frame)
    })();
    frame.map_err(|e| ProtoError::Malformed(e.0))
}

fn decode_outcome(r: &mut WireReader<'_>) -> Result<WireOutcome, nautilus_obs::WireError> {
    Ok(match r.u8()? {
        OUTCOME_METRICS => {
            let garbled = r.bool()?;
            let tool_secs = r.u64()?;
            let cost_ms = r.u64()?;
            let n = r.len_prefix()?;
            let mut values = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                values.push(r.f64()?);
            }
            WireOutcome::Metrics { garbled, tool_secs, cost_ms, values }
        }
        OUTCOME_INFEASIBLE => WireOutcome::Infeasible { cost_ms: r.u64()? },
        OUTCOME_FAULT => WireOutcome::Fault {
            kind: r.u8()?,
            elapsed_ms: r.u64()?,
            limit_ms: r.u64()?,
            message: r.str()?,
            cost_ms: r.u64()?,
            dying: r.bool()?,
        },
        other => return Err(nautilus_obs::WireError(format!("unknown outcome tag {other}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn samples() -> Vec<Frame> {
        vec![
            Frame::Hello { model: "router".into(), gene_len: 9, metric_len: 4 },
            Frame::Eval { id: 7, attempt: 2, genes: vec![0, 3, 1, 4, 1, 5] },
            Frame::Result {
                id: 7,
                outcome: WireOutcome::Metrics {
                    garbled: false,
                    tool_secs: 1_234,
                    cost_ms: 456,
                    values: vec![1.5, -0.25, f64::NAN, 1e300],
                },
            },
            Frame::Result { id: 8, outcome: WireOutcome::Infeasible { cost_ms: 77 } },
            Frame::Result {
                id: 9,
                outcome: WireOutcome::Fault {
                    kind: WIRE_FAULT_TIMEOUT,
                    elapsed_ms: 1_001,
                    limit_ms: 1_000,
                    message: "injected".into(),
                    cost_ms: 100,
                    dying: false,
                },
            },
            Frame::Result {
                id: 10,
                outcome: WireOutcome::Fault {
                    kind: WIRE_FAULT_TRANSIENT,
                    elapsed_ms: 0,
                    limit_ms: 0,
                    message: "crash".into(),
                    cost_ms: 250,
                    dying: true,
                },
            },
            Frame::Shutdown,
        ]
    }

    /// NaN-tolerant frame equality (wire f64 is bit-pattern preserving).
    fn frames_eq(a: &Frame, b: &Frame) -> bool {
        format!("{a:?}") == format!("{b:?}")
    }

    #[test]
    fn every_sample_round_trips_through_bytes() {
        for frame in samples() {
            let bytes = frame.encode();
            let back = Frame::decode(&bytes).expect("decode");
            assert!(frames_eq(&frame, &back), "{frame:?} != {back:?}");
        }
    }

    #[test]
    fn every_sample_round_trips_through_a_stream() {
        let mut stream = Vec::new();
        for frame in samples() {
            frame.write_to(&mut stream).unwrap();
        }
        let mut r = &stream[..];
        for frame in samples() {
            let back = Frame::read_from(&mut r).expect("read");
            assert!(frames_eq(&frame, &back));
        }
        assert!(matches!(Frame::read_from(&mut r), Err(ProtoError::CleanEof)));
    }

    #[test]
    fn golden_frame_bytes_are_stable() {
        // A committed fixture: if this assertion ever fails, the wire
        // format changed and VERSION must be bumped with a migration.
        let frame = Frame::Eval { id: 0x0102_0304, attempt: 5, genes: vec![6, 7] };
        let expected: Vec<u8> = {
            let mut v = Vec::new();
            v.extend_from_slice(b"NAUTPROC");
            v.extend_from_slice(&1u32.to_le_bytes()); // version
            v.extend_from_slice(&29u64.to_le_bytes()); // body_len
            v.push(1); // kind: Eval
            v.extend_from_slice(&0x0102_0304u64.to_le_bytes());
            v.extend_from_slice(&5u32.to_le_bytes());
            v.extend_from_slice(&2u64.to_le_bytes()); // gene count
            v.extend_from_slice(&6u32.to_le_bytes());
            v.extend_from_slice(&7u32.to_le_bytes());
            let crc = crc32(&v);
            v.extend_from_slice(&crc.to_le_bytes());
            v
        };
        assert_eq!(frame.encode(), expected);
        // Golden CRC value, hand-pinned so the checksum algorithm itself
        // cannot drift (poly 0xEDB88320, reflected, inverted).
        let crc = u32::from_le_bytes(expected[expected.len() - 4..].try_into().unwrap());
        assert_eq!(crc, crc32(&expected[..expected.len() - 4]));
    }

    #[test]
    fn every_single_bit_flip_is_rejected() {
        let bytes = Frame::Eval { id: 42, attempt: 1, genes: vec![1, 2, 3] }.encode();
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut corrupt = bytes.clone();
                corrupt[byte] ^= 1 << bit;
                assert!(
                    Frame::decode(&corrupt).is_err(),
                    "bit {bit} of byte {byte} flipped undetected"
                );
            }
        }
    }

    #[test]
    fn every_truncation_is_rejected() {
        let bytes = samples()[2].encode();
        for cut in 0..bytes.len() {
            let err = Frame::decode(&bytes[..cut]).expect_err("truncation accepted");
            assert!(
                matches!(err, ProtoError::Truncated | ProtoError::BadMagic),
                "cut at {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn stream_truncation_mid_frame_is_not_a_clean_eof() {
        let bytes = samples()[1].encode();
        for cut in 1..bytes.len() {
            let mut r = &bytes[..cut];
            let err = Frame::read_from(&mut r).expect_err("truncation accepted");
            assert!(matches!(err, ProtoError::Truncated), "cut at {cut} gave {err:?}");
        }
    }

    #[test]
    fn oversized_body_length_is_rejected_before_allocation() {
        let mut bytes = Frame::Shutdown.encode();
        bytes[12..20].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(Frame::decode(&bytes), Err(ProtoError::Oversized(_))));
        let mut r = &bytes[..];
        assert!(matches!(Frame::read_from(&mut r), Err(ProtoError::Oversized(_))));
    }

    #[test]
    fn wrong_version_and_magic_are_rejected() {
        let mut bytes = Frame::Shutdown.encode();
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(Frame::decode(&bytes), Err(ProtoError::UnsupportedVersion(99))));
        let mut bytes = Frame::Shutdown.encode();
        bytes[..8].copy_from_slice(b"NAUTCKPT");
        assert!(matches!(Frame::decode(&bytes), Err(ProtoError::BadMagic)));
    }

    #[test]
    fn trailing_garbage_after_crc_is_rejected() {
        let mut bytes = Frame::Shutdown.encode();
        bytes.push(0);
        assert!(matches!(Frame::decode(&bytes), Err(ProtoError::Malformed(_))));
    }

    #[test]
    fn error_labels_are_stable() {
        assert_eq!(ProtoError::Truncated.label(), "truncated");
        assert_eq!(ProtoError::BadMagic.label(), "bad_magic");
        assert_eq!(ProtoError::BadCrc { computed: 0, stored: 1 }.label(), "bad_crc");
        assert_eq!(ProtoError::Malformed(String::new()).label(), "malformed");
    }

    proptest! {
        #[test]
        fn arbitrary_eval_frames_round_trip(
            id in any::<u64>(),
            attempt in any::<u32>(),
            genes in proptest::collection::vec(any::<u32>(), 0..64),
        ) {
            let frame = Frame::Eval { id, attempt, genes };
            let back = Frame::decode(&frame.encode()).unwrap();
            prop_assert!(frames_eq(&frame, &back));
        }

        #[test]
        fn arbitrary_metric_results_round_trip(
            id in any::<u64>(),
            garbled in any::<bool>(),
            tool_secs in any::<u64>(),
            cost_ms in any::<u64>(),
            values in proptest::collection::vec(any::<f64>(), 0..16),
        ) {
            let frame = Frame::Result {
                id,
                outcome: WireOutcome::Metrics { garbled, tool_secs, cost_ms, values },
            };
            let back = Frame::decode(&frame.encode()).unwrap();
            prop_assert!(frames_eq(&frame, &back));
        }

        #[test]
        fn arbitrary_fault_results_round_trip(
            id in any::<u64>(),
            kind in 0u8..3,
            elapsed_ms in any::<u64>(),
            limit_ms in any::<u64>(),
            message in ".{0,40}",
            cost_ms in any::<u64>(),
            dying in any::<bool>(),
        ) {
            let frame = Frame::Result {
                id,
                outcome: WireOutcome::Fault { kind, elapsed_ms, limit_ms, message, cost_ms, dying },
            };
            let back = Frame::decode(&frame.encode()).unwrap();
            prop_assert!(frames_eq(&frame, &back));
        }

        #[test]
        fn random_byte_soup_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
            let _ = Frame::decode(&bytes);
            let mut r = &bytes[..];
            let _ = Frame::read_from(&mut r);
        }
    }
}
