//! The parent side: a pooled subprocess evaluator.
//!
//! [`SubprocessEvaluator`] keeps N warm child processes (spawned from a
//! [`SubprocessConfig`]), routes every genome to a deterministic slot
//! (`stable_hash % pool`), and speaks the [`crate::protocol`] framing
//! over each child's stdin/stdout. It implements both engine
//! boundaries — `FallibleEvaluator` for retry/quarantine runs and
//! `SupervisableEvaluator` for watchdog/hedging runs — mapping child
//! behavior onto the engine's failure taxonomy:
//!
//! | child behavior                   | surfaced as                      |
//! |----------------------------------|----------------------------------|
//! | classified `Fault` reply         | the same `EvalFailure` kind      |
//! | garbled `Metrics` reply          | `Ok(Some(NaN))` → `Corrupted`    |
//! | death without a reply            | transparent respawn + retry, then `Transient` |
//! | garbage bytes / bad CRC / desync | kill + respawn, `Corrupted`      |
//! | silence past the I/O deadline    | SIGKILL + respawn; `Hang` (supervised) or `Timeout` |
//! | unspawnable slot                 | `Persistent`                     |
//!
//! ## Determinism and the stash
//!
//! Backend accounting (job counts, cache hits, simulated tool seconds,
//! `EvalCompleted` telemetry) must be byte-identical to an in-process
//! run. The evaluator therefore never bypasses the synthesis job
//! runner: after a successful round-trip it *stashes* the child's
//! metric values in a thread-local and re-enters the normal scoring
//! path, where a [`StashModel`] standing in for the real cost model
//! serves the stashed reply. The runner charges jobs, caches, and emits
//! telemetry exactly as if it had computed the metrics itself.

use std::io::Read as _;
use std::path::PathBuf;
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError};
use std::sync::Mutex;
use std::time::Duration;

use nautilus_ga::{
    AttemptOutcome, EvalFailure, FallibleEvaluator, FitnessFn, Genome, SupervisableEvaluator,
};
use nautilus_obs::{SearchEvent, SearchObserver};
use nautilus_synth::{CostModel, MetricCatalog, MetricSet};

use crate::protocol::{
    Frame, ProtoError, WireOutcome, WIRE_FAULT_PERSISTENT, WIRE_FAULT_TIMEOUT, WIRE_FAULT_TRANSIENT,
};

/// Salt for the genome → slot routing hash. Routing must not correlate
/// with any fault-plan or cache-shard hash, so it gets its own salt.
const ROUTE_SALT: u64 = 0x726f_7574_6532;

/// Respawn backoff: `BACKOFF_BASE_MS << (failures - 1)`, capped.
const BACKOFF_BASE_MS: u64 = 1;
const BACKOFF_CAP_MS: u64 = 64;

std::thread_local! {
    static STASH: std::cell::RefCell<Option<Stash>> = const { std::cell::RefCell::new(None) };
}

/// One child reply parked for the scoring path to consume.
#[derive(Debug, Clone)]
struct Stash {
    hash: u64,
    tool_secs: u64,
    values: Option<Vec<f64>>,
}

/// A [`CostModel`] that serves the calling thread's stashed subprocess
/// reply instead of computing anything.
///
/// The search's job runner is constructed over this model when a
/// subprocess evaluator is installed; every metric it "computes" is the
/// value the child tool reported for the same genome. Calling
/// [`StashModel::evaluate`] without a stashed reply (or for a different
/// genome than was stashed) is a contract violation and panics — it
/// means something evaluated the model outside the subprocess path.
pub struct StashModel<'m> {
    inner: &'m dyn CostModel,
}

impl<'m> StashModel<'m> {
    /// Wraps the real model, delegating space/catalog/name to it.
    #[must_use]
    pub fn new(inner: &'m dyn CostModel) -> StashModel<'m> {
        StashModel { inner }
    }
}

impl std::fmt::Debug for StashModel<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StashModel").field("inner", &self.inner.name()).finish()
    }
}

fn with_stash<R>(genome: &Genome, f: impl FnOnce(&Stash) -> R) -> R {
    STASH.with(|cell| {
        let borrowed = cell.borrow();
        let stash =
            borrowed.as_ref().expect("StashModel invoked outside the subprocess evaluation path");
        assert_eq!(
            stash.hash,
            genome.stable_hash(0),
            "StashModel invoked for a different genome than the stashed subprocess reply"
        );
        f(stash)
    })
}

impl CostModel for StashModel<'_> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn space(&self) -> &nautilus_ga::ParamSpace {
        self.inner.space()
    }

    fn catalog(&self) -> &MetricCatalog {
        self.inner.catalog()
    }

    fn evaluate(&self, genome: &Genome) -> Option<MetricSet> {
        with_stash(genome, |stash| {
            stash.values.as_ref().map(|values| {
                self.inner
                    .catalog()
                    .set(values.clone())
                    .expect("metric arity validated before stashing")
            })
        })
    }

    fn synth_time(&self, genome: &Genome) -> Duration {
        with_stash(genome, |stash| Duration::from_secs(stash.tool_secs))
    }
}

/// How to launch and operate the child-process pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubprocessConfig {
    program: PathBuf,
    args: Vec<String>,
    pool_size: usize,
    io_timeout: Duration,
    handshake_timeout: Duration,
    transport_retries: u32,
}

impl SubprocessConfig {
    /// A single-child pool running `program` with no arguments, a 10 s
    /// I/O deadline, a 30 s handshake deadline, and 2 transparent
    /// transport retries.
    #[must_use]
    pub fn new(program: impl Into<PathBuf>) -> SubprocessConfig {
        SubprocessConfig {
            program: program.into(),
            args: Vec::new(),
            pool_size: 1,
            io_timeout: Duration::from_secs(10),
            handshake_timeout: Duration::from_secs(30),
            transport_retries: 2,
        }
    }

    /// Appends one command-line argument.
    #[must_use]
    pub fn arg(mut self, arg: impl Into<String>) -> Self {
        self.args.push(arg.into());
        self
    }

    /// Appends several command-line arguments.
    #[must_use]
    pub fn args<S: Into<String>>(mut self, args: impl IntoIterator<Item = S>) -> Self {
        self.args.extend(args.into_iter().map(Into::into));
        self
    }

    /// Number of warm children to keep (clamped to at least 1). Each
    /// genome routes to `stable_hash % pool_size`, so the mapping — and
    /// with it every child's request set — is independent of engine
    /// worker count.
    #[must_use]
    pub fn with_pool_size(mut self, n: usize) -> Self {
        self.pool_size = n.max(1);
        self
    }

    /// Wall-clock deadline for a child to answer one request. A silent
    /// child is SIGKILLed and respawned when it expires.
    #[must_use]
    pub fn with_io_timeout(mut self, d: Duration) -> Self {
        self.io_timeout = d;
        self
    }

    /// Wall-clock deadline for a freshly spawned child's `Hello`. Kept
    /// separate from [`with_io_timeout`](Self::with_io_timeout) because
    /// startup legitimately includes expensive one-time setup (loading a
    /// dataset, licensing a tool) that a tight per-request hang deadline
    /// must not race — a lost race would kill the respawn, dead-end the
    /// slot, and turn scheduling jitter into outcome divergence.
    #[must_use]
    pub fn with_handshake_timeout(mut self, d: Duration) -> Self {
        self.handshake_timeout = d;
        self
    }

    /// How many times a request is transparently re-sent after the child
    /// dies *without replying* (crash mid-eval, clean exit without a
    /// reply). Transparent retries keep innocent genomes from absorbing
    /// failures that depend on scheduling, which would break cross-worker
    /// determinism; only after exhaustion does the request surface as
    /// [`EvalFailure::Transient`].
    #[must_use]
    pub fn with_transport_retries(mut self, n: u32) -> Self {
        self.transport_retries = n;
        self
    }

    /// The configured program path.
    #[must_use]
    pub fn program(&self) -> &std::path::Path {
        &self.program
    }

    /// The configured pool size.
    #[must_use]
    pub fn pool_size(&self) -> usize {
        self.pool_size
    }

    /// The configured I/O deadline.
    #[must_use]
    pub fn io_timeout(&self) -> Duration {
        self.io_timeout
    }

    /// The configured handshake deadline.
    #[must_use]
    pub fn handshake_timeout(&self) -> Duration {
        self.handshake_timeout
    }
}

/// Errors constructing a subprocess evaluator.
#[derive(Debug)]
#[non_exhaustive]
pub enum ProcError {
    /// A child failed to launch.
    Spawn {
        /// Pool slot that failed.
        slot: usize,
        /// Launch failure detail.
        reason: String,
    },
    /// A child launched but its handshake was wrong or never arrived.
    Handshake {
        /// Pool slot that failed.
        slot: usize,
        /// Handshake failure detail.
        reason: String,
    },
}

impl std::fmt::Display for ProcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProcError::Spawn { slot, reason } => {
                write!(f, "subprocess slot {slot} failed to spawn: {reason}")
            }
            ProcError::Handshake { slot, reason } => {
                write!(f, "subprocess slot {slot} failed its handshake: {reason}")
            }
        }
    }
}

impl std::error::Error for ProcError {}

/// Child-lifecycle counters, exact under fault storms.
///
/// The eager-respawn invariant: every involuntary child departure
/// (crash, kill, dying gasp) is immediately followed by a respawn, so
/// `killed == respawned` whenever every slot is still serviceable.
/// Shutdown kills at drop time are deliberately uncounted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SubprocessStats {
    /// Children spawned eagerly at pool construction.
    pub spawned: u64,
    /// Children that left service involuntarily (killed or reaped).
    pub killed: u64,
    /// Children respawned to replace a killed one.
    pub respawned: u64,
    /// Undecodable or out-of-protocol replies.
    pub protocol_errors: u64,
    /// Requests transparently re-sent after a child died mid-request.
    pub transport_retries: u64,
}

impl SubprocessStats {
    /// Whether every kill was matched by a respawn.
    #[must_use]
    pub fn reconciles(&self) -> bool {
        self.killed == self.respawned
    }
}

/// What the parent and child agreed the tool looks like.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Expectation {
    model: String,
    gene_len: u32,
    metric_len: u32,
}

/// A live connection to one child.
struct Conn {
    child: Child,
    stdin: ChildStdin,
    rx: Receiver<Result<Frame, ProtoError>>,
}

/// One pool slot. Guarded by a mutex: a slot serves one request at a
/// time, and every lifecycle transition happens while the affected
/// request holds the lock — which is what pins lifecycle telemetry to a
/// deterministic position in the event stream for plan-driven faults.
struct Slot {
    conn: Option<Conn>,
    dead: bool,
    failures: u32,
    next_id: u64,
}

/// How one wire round-trip ended, before failure mapping.
enum Roundtrip {
    Outcome(WireOutcome),
    HungKilled,
    TransportLost,
    Garbage(&'static str),
    DeadSlot,
}

/// A pooled out-of-process evaluator over the `NAUTPROC` protocol.
///
/// See the [module docs](self) for the failure mapping and the stash
/// mechanism that keeps backend accounting identical to in-process runs.
pub struct SubprocessEvaluator<'a> {
    score: &'a dyn FitnessFn,
    observer: &'a dyn SearchObserver,
    config: SubprocessConfig,
    expect: Expectation,
    slots: Vec<Mutex<Slot>>,
    spawned: AtomicU64,
    killed: AtomicU64,
    respawned: AtomicU64,
    protocol_errors: AtomicU64,
    transport_retries: AtomicU64,
}

impl std::fmt::Debug for SubprocessEvaluator<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SubprocessEvaluator")
            .field("config", &self.config)
            .field("expect", &self.expect)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl<'a> SubprocessEvaluator<'a> {
    /// Spawns the warm-child pool and validates every handshake against
    /// `model` (name, parameter count, metric arity).
    ///
    /// `score` is the scoring path re-entered after each successful
    /// round-trip (normally the engine's query-over-runner fitness over a
    /// [`StashModel`]); `observer` receives child lifecycle telemetry.
    ///
    /// # Errors
    ///
    /// Fails if any child cannot be launched or its handshake disagrees
    /// with `model`.
    pub fn spawn(
        config: SubprocessConfig,
        model: &dyn CostModel,
        score: &'a dyn FitnessFn,
        observer: &'a dyn SearchObserver,
    ) -> Result<SubprocessEvaluator<'a>, ProcError> {
        let expect = Expectation {
            model: model.name().to_owned(),
            gene_len: model.space().num_params() as u32,
            metric_len: model.catalog().len() as u32,
        };
        let eval = SubprocessEvaluator {
            score,
            observer,
            config,
            expect,
            slots: Vec::new(),
            spawned: AtomicU64::new(0),
            killed: AtomicU64::new(0),
            respawned: AtomicU64::new(0),
            protocol_errors: AtomicU64::new(0),
            transport_retries: AtomicU64::new(0),
        };
        let mut eval = eval;
        for slot in 0..eval.config.pool_size() {
            let conn = eval.open_conn(slot)?;
            eval.slots.push(Mutex::new(Slot {
                conn: Some(conn),
                dead: false,
                failures: 0,
                next_id: 0,
            }));
            eval.spawned.fetch_add(1, Ordering::Relaxed);
            eval.emit(|| SearchEvent::ChildSpawned { slot: slot as u32 });
        }
        Ok(eval)
    }

    /// Current lifecycle counters.
    #[must_use]
    pub fn stats(&self) -> SubprocessStats {
        SubprocessStats {
            spawned: self.spawned.load(Ordering::Relaxed),
            killed: self.killed.load(Ordering::Relaxed),
            respawned: self.respawned.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            transport_retries: self.transport_retries.load(Ordering::Relaxed),
        }
    }

    fn emit(&self, event: impl FnOnce() -> SearchEvent) {
        if self.observer.enabled() {
            self.observer.on_event(&event());
        }
    }

    /// Launches one child and consumes its handshake.
    fn open_conn(&self, slot: usize) -> Result<Conn, ProcError> {
        let mut child = Command::new(&self.config.program)
            .args(&self.config.args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .map_err(|e| ProcError::Spawn { slot, reason: e.to_string() })?;
        let stdin = child.stdin.take().expect("piped stdin");
        let mut stdout = child.stdout.take().expect("piped stdout");
        let (tx, rx) = mpsc::channel();
        std::thread::spawn(move || loop {
            match Frame::read_from(&mut stdout) {
                Ok(frame) => {
                    if tx.send(Ok(frame)).is_err() {
                        // Parent dropped the slot: drain to EOF so the
                        // child never blocks on a full stdout pipe.
                        let mut sink = Vec::new();
                        let _ = stdout.read_to_end(&mut sink);
                        return;
                    }
                }
                Err(e) => {
                    let _ = tx.send(Err(e));
                    return;
                }
            }
        });
        let fail = |mut child: Child, reason: String| {
            let _ = child.kill();
            let _ = child.wait();
            Err(ProcError::Handshake { slot, reason })
        };
        match rx.recv_timeout(self.config.handshake_timeout) {
            Ok(Ok(Frame::Hello { model, gene_len, metric_len })) => {
                let got = Expectation { model, gene_len, metric_len };
                if got != self.expect {
                    return fail(
                        child,
                        format!("tool identifies as {got:?}, expected {:?}", self.expect),
                    );
                }
                Ok(Conn { child, stdin, rx })
            }
            Ok(Ok(other)) => fail(child, format!("expected Hello, got {other:?}")),
            Ok(Err(e)) => fail(child, format!("handshake failed: {e}")),
            Err(_) => fail(child, "handshake timed out".to_owned()),
        }
    }

    /// Reaps (or kills) the slot's child and eagerly respawns it.
    ///
    /// Runs while the triggering request holds the slot lock, so the
    /// kill/respawn telemetry lands at that request's deterministic
    /// position in the event stream.
    fn replace_child(&self, idx: usize, slot: &mut Slot, reason: &'static str) {
        if let Some(mut conn) = slot.conn.take() {
            let _ = conn.child.kill();
            let _ = conn.child.wait();
            self.killed.fetch_add(1, Ordering::Relaxed);
            self.emit(|| SearchEvent::ChildKilled { slot: idx as u32, reason: reason.to_owned() });
        }
        slot.failures = slot.failures.saturating_add(1);
        let backoff_ms = (BACKOFF_BASE_MS << (slot.failures - 1).min(16)).min(BACKOFF_CAP_MS);
        std::thread::sleep(Duration::from_millis(backoff_ms));
        match self.open_conn(idx) {
            Ok(conn) => {
                slot.conn = Some(conn);
                self.respawned.fetch_add(1, Ordering::Relaxed);
                self.emit(|| SearchEvent::ChildRespawned { slot: idx as u32, backoff_ms });
            }
            Err(_) => {
                slot.dead = true;
                self.protocol_errors.fetch_add(1, Ordering::Relaxed);
                self.emit(|| SearchEvent::ChildProtocolError {
                    slot: idx as u32,
                    detail: "respawn_failed".to_owned(),
                });
            }
        }
    }

    /// One evaluation round-trip, including transparent transport
    /// retries and all kill/respawn bookkeeping.
    fn roundtrip(&self, genome: &Genome, attempt: u32) -> Roundtrip {
        let idx = (genome.stable_hash(ROUTE_SALT) % self.slots.len() as u64) as usize;
        let mut slot = match self.slots[idx].lock() {
            Ok(slot) => slot,
            Err(poisoned) => poisoned.into_inner(),
        };
        let max_sends = u64::from(self.config.transport_retries) + 1;
        let mut sends = 0u64;
        while sends < max_sends {
            if slot.dead {
                return Roundtrip::DeadSlot;
            }
            if slot.conn.is_none() {
                self.replace_child(idx, &mut slot, "exited");
                continue;
            }
            sends += 1;
            slot.next_id += 1;
            let id = slot.next_id;
            let request = Frame::Eval { id, attempt, genes: genome.genes().to_vec() };
            let conn = slot.conn.as_mut().expect("live connection");
            if request.write_to(&mut conn.stdin).is_err() {
                // EPIPE: the child is gone; retry on a fresh one.
                self.transport_retries.fetch_add(1, Ordering::Relaxed);
                self.replace_child(idx, &mut slot, "exited");
                continue;
            }
            match conn.rx.recv_timeout(self.config.io_timeout) {
                Ok(Ok(Frame::Result { id: reply_id, outcome })) if reply_id == id => {
                    if matches!(outcome, WireOutcome::Fault { dying: true, .. }) {
                        // Dying gasp: the reply is good but the child is
                        // exiting right now. Replace it before releasing
                        // the slot.
                        self.replace_child(idx, &mut slot, "exited");
                    } else {
                        slot.failures = 0;
                    }
                    return Roundtrip::Outcome(outcome);
                }
                Ok(Ok(_)) => {
                    self.protocol_errors.fetch_add(1, Ordering::Relaxed);
                    self.emit(|| SearchEvent::ChildProtocolError {
                        slot: idx as u32,
                        detail: "unexpected_frame".to_owned(),
                    });
                    self.replace_child(idx, &mut slot, "protocol_error");
                    return Roundtrip::Garbage("unexpected_frame");
                }
                Ok(Err(e)) => match e {
                    ProtoError::CleanEof | ProtoError::Truncated | ProtoError::Io(_) => {
                        // Died without replying (SIGKILL, crash, clean
                        // exit): transparently retry on a fresh child.
                        self.transport_retries.fetch_add(1, Ordering::Relaxed);
                        self.replace_child(idx, &mut slot, "exited");
                        continue;
                    }
                    garbage => {
                        self.protocol_errors.fetch_add(1, Ordering::Relaxed);
                        let label = garbage.label();
                        self.emit(|| SearchEvent::ChildProtocolError {
                            slot: idx as u32,
                            detail: label.to_owned(),
                        });
                        self.replace_child(idx, &mut slot, "protocol_error");
                        return Roundtrip::Garbage(label);
                    }
                },
                Err(RecvTimeoutError::Timeout) => {
                    self.replace_child(idx, &mut slot, "io_timeout");
                    return Roundtrip::HungKilled;
                }
                Err(RecvTimeoutError::Disconnected) => {
                    self.transport_retries.fetch_add(1, Ordering::Relaxed);
                    self.replace_child(idx, &mut slot, "exited");
                    continue;
                }
            }
        }
        Roundtrip::TransportLost
    }

    /// Re-enters the scoring path with the child's reply stashed, so the
    /// job runner charges and caches exactly as in-process.
    fn charge(&self, genome: &Genome, values: Option<Vec<f64>>, tool_secs: u64) -> Option<f64> {
        STASH.with(|cell| {
            *cell.borrow_mut() = Some(Stash { hash: genome.stable_hash(0), tool_secs, values });
        });
        let value = self.score.fitness(genome);
        STASH.with(|cell| cell.borrow_mut().take());
        value
    }

    /// The full attempt: round-trip, charge, failure mapping.
    fn run_attempt(&self, genome: &Genome, attempt: u32) -> AttemptOutcome {
        match self.roundtrip(genome, attempt) {
            Roundtrip::Outcome(WireOutcome::Metrics { garbled, tool_secs, cost_ms, values }) => {
                if values.len() != self.expect.metric_len as usize {
                    return AttemptOutcome::Finished {
                        result: Err(EvalFailure::Corrupted(format!(
                            "subprocess replied {} metric values for a {}-metric catalog",
                            values.len(),
                            self.expect.metric_len
                        ))),
                        cost_ms,
                    };
                }
                let value = self.charge(genome, Some(values), tool_secs);
                let result = if garbled { Ok(Some(f64::NAN)) } else { Ok(value) };
                AttemptOutcome::Finished { result, cost_ms }
            }
            Roundtrip::Outcome(WireOutcome::Infeasible { cost_ms }) => {
                let value = self.charge(genome, None, 0);
                debug_assert!(value.is_none(), "infeasible reply scored feasible");
                AttemptOutcome::Finished { result: Ok(value), cost_ms }
            }
            Roundtrip::Outcome(WireOutcome::Fault {
                kind,
                elapsed_ms,
                limit_ms,
                message,
                cost_ms,
                dying: _,
            }) => {
                let failure = match kind {
                    WIRE_FAULT_TRANSIENT => EvalFailure::Transient(message),
                    WIRE_FAULT_TIMEOUT => EvalFailure::Timeout { elapsed_ms, limit_ms },
                    WIRE_FAULT_PERSISTENT => EvalFailure::Persistent(message),
                    other => EvalFailure::Corrupted(format!("unknown wire fault kind {other}")),
                };
                AttemptOutcome::Finished { result: Err(failure), cost_ms }
            }
            Roundtrip::HungKilled => AttemptOutcome::Hang,
            Roundtrip::TransportLost => AttemptOutcome::Finished {
                result: Err(EvalFailure::Transient("subprocess died without replying".to_owned())),
                cost_ms: 0,
            },
            Roundtrip::Garbage(label) => AttemptOutcome::Finished {
                result: Err(EvalFailure::Corrupted(format!("subprocess protocol error: {label}"))),
                cost_ms: 0,
            },
            Roundtrip::DeadSlot => AttemptOutcome::Finished {
                result: Err(EvalFailure::Persistent("subprocess worker slot is dead".to_owned())),
                cost_ms: 0,
            },
        }
    }
}

impl FallibleEvaluator for SubprocessEvaluator<'_> {
    fn try_fitness(&self, genome: &Genome, attempt: u32) -> Result<Option<f64>, EvalFailure> {
        match self.run_attempt(genome, attempt) {
            AttemptOutcome::Finished { result, .. } => result,
            AttemptOutcome::Hang => {
                // Unsupervised view of a hung child: the I/O deadline is
                // the only clock, so the hang degrades to a timeout —
                // mirroring how an unsupervised fault plan degrades
                // injected hangs.
                let limit_ms = self.config.io_timeout.as_millis() as u64;
                Err(EvalFailure::Timeout { elapsed_ms: limit_ms + 1, limit_ms })
            }
        }
    }
}

impl SupervisableEvaluator for SubprocessEvaluator<'_> {
    fn attempt(&self, genome: &Genome, attempt: u32) -> AttemptOutcome {
        self.run_attempt(genome, attempt)
    }
}

impl Drop for SubprocessEvaluator<'_> {
    fn drop(&mut self) {
        for slot in &self.slots {
            let mut slot = match slot.lock() {
                Ok(slot) => slot,
                Err(poisoned) => poisoned.into_inner(),
            };
            if let Some(conn) = slot.conn.take() {
                let Conn { mut child, mut stdin, rx: _rx } = conn;
                let _ = Frame::Shutdown.write_to(&mut stdin);
                drop(stdin);
                // Give a cooperative child a moment to exit cleanly,
                // then force the issue. Shutdown kills are uncounted.
                for _ in 0..100 {
                    if matches!(child.try_wait(), Ok(Some(_))) {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                let _ = child.kill();
                let _ = child.wait();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testmodel::TestModel;
    use nautilus_ga::{Direction, FnFitness};
    use nautilus_obs::NoopObserver;

    fn score() -> FnFitness<impl Fn(&Genome) -> Option<f64> + Send + Sync> {
        FnFitness::new(Direction::Minimize, |_g: &Genome| Some(1.0))
    }

    #[test]
    fn unspawnable_program_is_a_spawn_error() {
        let model = TestModel::new();
        let score = score();
        let err = SubprocessEvaluator::spawn(
            SubprocessConfig::new("/nonexistent/mock-synth-binary"),
            &model,
            &score,
            &NoopObserver,
        )
        .expect_err("spawned a nonexistent program");
        assert!(matches!(err, ProcError::Spawn { slot: 0, .. }), "{err:?}");
    }

    #[test]
    fn immediate_exit_fails_the_handshake() {
        let model = TestModel::new();
        let score = score();
        let err = SubprocessEvaluator::spawn(
            SubprocessConfig::new("/bin/sh").args(["-c", "exit 0"]),
            &model,
            &score,
            &NoopObserver,
        )
        .expect_err("handshake with a dead child succeeded");
        assert!(matches!(err, ProcError::Handshake { slot: 0, .. }), "{err:?}");
    }

    #[test]
    fn garbage_handshake_is_rejected() {
        let model = TestModel::new();
        let score = score();
        let err = SubprocessEvaluator::spawn(
            SubprocessConfig::new("/bin/sh")
                .args(["-c", "printf 'XXXXXXXXXXXXXXXXXXXXXXXX'; sleep 5"]),
            &model,
            &score,
            &NoopObserver,
        )
        .expect_err("garbage handshake accepted");
        match err {
            ProcError::Handshake { slot: 0, reason } => {
                assert!(reason.contains("bad magic"), "{reason}");
            }
            other => panic!("expected handshake failure, got {other:?}"),
        }
    }

    #[test]
    fn silent_child_times_out_the_handshake() {
        let model = TestModel::new();
        let score = score();
        let err = SubprocessEvaluator::spawn(
            SubprocessConfig::new("/bin/sh")
                .args(["-c", "sleep 30"])
                .with_io_timeout(Duration::from_millis(200)),
            &model,
            &score,
            &NoopObserver,
        )
        .expect_err("silent handshake accepted");
        match err {
            ProcError::Handshake { slot: 0, reason } => {
                assert!(reason.contains("timed out"), "{reason}");
            }
            other => panic!("expected handshake timeout, got {other:?}"),
        }
    }

    #[test]
    fn wrong_tool_identity_is_rejected() {
        // A child that speaks the protocol but identifies as a different
        // model: feed it a pre-encoded Hello via a temp file.
        let hello = Frame::Hello { model: "impostor".into(), gene_len: 2, metric_len: 2 };
        let path = std::env::temp_dir().join(format!("nautproc-hello-{}.bin", std::process::id()));
        std::fs::write(&path, hello.encode()).unwrap();
        let model = TestModel::new();
        let score = score();
        let err = SubprocessEvaluator::spawn(
            SubprocessConfig::new("/bin/sh")
                .args(["-c", &format!("cat {}; sleep 5", path.display())]),
            &model,
            &score,
            &NoopObserver,
        )
        .expect_err("impostor tool accepted");
        std::fs::remove_file(&path).ok();
        match err {
            ProcError::Handshake { slot: 0, reason } => {
                assert!(reason.contains("impostor"), "{reason}");
            }
            other => panic!("expected identity mismatch, got {other:?}"),
        }
    }

    #[test]
    fn hello_with_wrong_version_is_a_clean_protocol_error() {
        // A tool built against a future protocol: its Hello is structurally
        // fine but carries version 99. The version field is vetted before
        // the checksum, so no CRC fixup is needed — and the reader must
        // reject it outright instead of guessing at the layout.
        let mut bytes =
            Frame::Hello { model: "proc-test-bowl".into(), gene_len: 2, metric_len: 2 }.encode();
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        let path =
            std::env::temp_dir().join(format!("nautproc-hello-v99-{}.bin", std::process::id()));
        std::fs::write(&path, &bytes).unwrap();
        let model = TestModel::new();
        let score = score();
        let err = SubprocessEvaluator::spawn(
            SubprocessConfig::new("/bin/sh")
                .args(["-c", &format!("cat {}; sleep 5", path.display())]),
            &model,
            &score,
            &NoopObserver,
        )
        .expect_err("future-versioned tool accepted");
        std::fs::remove_file(&path).ok();
        match err {
            ProcError::Handshake { slot: 0, reason } => {
                assert!(reason.contains("unsupported protocol version 99"), "{reason}");
            }
            other => panic!("expected handshake failure, got {other:?}"),
        }
    }

    #[test]
    fn mid_run_version_mismatch_is_killed_and_respawned_without_hanging() {
        // The child handshakes correctly, then replies to the first eval
        // with a version-99 frame. That must surface as one clean protocol
        // error — accounted, child killed and respawned — never a hang or
        // a panic.
        let hello =
            Frame::Hello { model: "proc-test-bowl".into(), gene_len: 2, metric_len: 2 }.encode();
        let mut bad =
            Frame::Result { id: 1, outcome: WireOutcome::Infeasible { cost_ms: 0 } }.encode();
        bad[8..12].copy_from_slice(&99u32.to_le_bytes());
        let mut replay = hello;
        replay.extend_from_slice(&bad);
        let path =
            std::env::temp_dir().join(format!("nautproc-midrun-v99-{}.bin", std::process::id()));
        std::fs::write(&path, &replay).unwrap();

        let model = TestModel::new();
        let score = score();
        let evaluator = SubprocessEvaluator::spawn(
            SubprocessConfig::new("/bin/sh")
                .args(["-c", &format!("cat {}; sleep 5", path.display())]),
            &model,
            &score,
            &NoopObserver,
        )
        .expect("handshake itself is valid");

        let err = evaluator
            .try_fitness(&Genome::from_genes(vec![1, 2]), 0)
            .expect_err("version-99 reply scored");
        match err {
            EvalFailure::Corrupted(reason) => {
                assert!(reason.contains("unsupported_version"), "{reason}");
            }
            other => panic!("expected a corrupted-reply failure, got {other:?}"),
        }

        let stats = evaluator.stats();
        assert_eq!(stats.protocol_errors, 1, "{stats:?}");
        assert_eq!(stats.killed, 1, "{stats:?}");
        assert_eq!(stats.respawned, 1, "{stats:?}");
        assert!(stats.reconciles(), "{stats:?}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn config_builder_accumulates() {
        let cfg = SubprocessConfig::new("tool")
            .arg("--model")
            .args(["router", "--plan-seed", "7"])
            .with_pool_size(0)
            .with_io_timeout(Duration::from_millis(123))
            .with_handshake_timeout(Duration::from_secs(2))
            .with_transport_retries(5);
        assert_eq!(cfg.pool_size(), 1, "pool size clamps to 1");
        assert_eq!(cfg.io_timeout(), Duration::from_millis(123));
        assert_eq!(cfg.handshake_timeout(), Duration::from_secs(2));
        assert_eq!(
            SubprocessConfig::new("tool")
                .with_io_timeout(Duration::from_millis(1))
                .handshake_timeout(),
            Duration::from_secs(30),
            "tightening the per-request deadline must not tighten the handshake"
        );
        assert_eq!(cfg.program(), std::path::Path::new("tool"));
    }

    #[test]
    fn stats_reconcile_when_untouched() {
        let stats = SubprocessStats::default();
        assert!(stats.reconciles());
        let skewed = SubprocessStats { killed: 2, respawned: 1, ..SubprocessStats::default() };
        assert!(!skewed.reconciles());
    }
}
