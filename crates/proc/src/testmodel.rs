//! A tiny closed-form cost model shared by this crate's tests.

use std::time::Duration;

use nautilus_ga::{Genome, ParamSpace};
use nautilus_synth::{CostModel, MetricCatalog, MetricSet};

/// Quadratic bowl over a 12x12 integer lattice with one infeasible
/// stripe (`x == 7`), mirroring the synth crate's internal test model.
#[derive(Debug)]
pub struct TestModel {
    space: ParamSpace,
    catalog: MetricCatalog,
}

impl TestModel {
    pub fn new() -> TestModel {
        let space = ParamSpace::builder()
            .int_list("x", (0..12).collect::<Vec<i64>>())
            .int_list("y", (0..12).collect::<Vec<i64>>())
            .build()
            .expect("valid test space");
        let catalog =
            MetricCatalog::new([("cost", "units"), ("gain", "units")]).expect("valid catalog");
        TestModel { space, catalog }
    }
}

impl CostModel for TestModel {
    fn name(&self) -> &str {
        "proc-test-bowl"
    }

    fn space(&self) -> &ParamSpace {
        &self.space
    }

    fn catalog(&self) -> &MetricCatalog {
        &self.catalog
    }

    fn evaluate(&self, genome: &Genome) -> Option<MetricSet> {
        let x = genome.gene_at(0) as f64;
        let y = genome.gene_at(1) as f64;
        if genome.gene_at(0) == 7 {
            return None;
        }
        let cost = (x - 3.0).powi(2) + (y - 5.0).powi(2);
        Some(self.catalog.set(vec![cost, 100.0 - cost]).expect("arity"))
    }

    fn synth_time(&self, _genome: &Genome) -> Duration {
        Duration::from_secs(60)
    }
}
