//! The child-side serve loop: what a synthesis-tool shim runs.
//!
//! [`serve`] is generic over `Read`/`Write` so the exact conversation a
//! `mock-synth` process holds over stdin/stdout is also unit-testable
//! in-memory against byte buffers. The loop sends the [`Frame::Hello`]
//! handshake, then answers one [`Frame::Result`] per [`Frame::Eval`]
//! until a [`Frame::Shutdown`] (or clean EOF) arrives.
//!
//! Fault knobs mirror the in-process `FaultyEvaluator` bit for bit: the
//! same seeded [`FaultPlan`] decides each (genome, attempt) fate, and the
//! reply carries the same classification, virtual timings, and attempt
//! costs the in-process path would have produced — that is what makes
//! in-process and out-of-process runs byte-identical under fault storms.

use std::io::{Read, Write};

use nautilus_ga::rng::{hash_combine, mix_to_unit, splitmix64};
use nautilus_ga::Genome;
use nautilus_synth::{CostModel, FaultPlan, InjectedFault};

use crate::protocol::{
    Frame, ProtoError, WireOutcome, WIRE_FAULT_PERSISTENT, WIRE_FAULT_TIMEOUT, WIRE_FAULT_TRANSIENT,
};

/// Salt for the independent garbage-output fate draw (`--garbage-rate`).
const SALT_GARBAGE: u64 = 0x6761_7262;

/// Deterministic byte count of a garbage burst.
const GARBAGE_LEN: usize = 64;

/// Fault and shaping knobs for one serve session.
///
/// All knobs are deterministic functions of the genome (and attempt)
/// being evaluated — never of wall time or request order — with one
/// deliberate exception: [`ServeOptions::crash_after`] counts requests
/// *per child*, modelling a tool that leaks until it dies.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServeOptions {
    /// Inject classified faults per this plan (same rules as in-process).
    pub plan: Option<FaultPlan>,
    /// Crash without replying on the K-th request this child serves.
    pub crash_after: Option<u64>,
    /// Hang forever on the genome whose `stable_hash(0)` equals this.
    pub hang_on_hash: Option<u64>,
    /// Probability a reply is replaced by garbage bytes, drawn per
    /// (genome, attempt) under [`ServeOptions::garbage_seed`].
    pub garbage_rate: f64,
    /// Seed for the garbage draw.
    pub garbage_seed: u64,
    /// Sleep this long before every reply (simulated tool latency).
    pub slow_ms: u64,
}

/// Why [`serve`] returned control to the caller.
///
/// The serve loop never exits the process or blocks forever itself;
/// it reports *what the tool would do next* and the binary decides
/// (exit nonzero, sleep forever, ...). That keeps every pathway
/// drivable from an in-memory unit test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeExit {
    /// Orderly shutdown: a [`Frame::Shutdown`] or clean EOF arrived.
    Shutdown,
    /// A dying-gasp transient fault was flushed; the tool now exits
    /// nonzero. The parent got the classified reply *before* the death,
    /// so accounting stays exact while the crash is still real.
    Dying,
    /// `--crash-after` fired: the tool dies without replying at all.
    CrashRequested,
    /// A hang fate fired: the tool goes silent forever (the parent's
    /// watchdog or I/O deadline is the only way out).
    HangRequested,
    /// Garbage bytes were written in place of a frame; the tool exits.
    WroteGarbage,
}

/// Runs the child side of the protocol until the conversation ends.
///
/// `on_request` observes every evaluation request as
/// `(stable_hash(0), attempt)` — the request-log hook `mock-synth --log`
/// uses to prove a quarantined genome is never re-requested after a
/// checkpoint resume.
///
/// # Errors
///
/// Returns any framing or I/O error. A genome whose length disagrees
/// with the model's parameter count is [`ProtoError::Malformed`]: the
/// parent and child disagree about the space, and continuing would
/// corrupt accounting silently.
pub fn serve(
    model: &dyn CostModel,
    opts: &ServeOptions,
    r: &mut impl Read,
    w: &mut impl Write,
    mut on_request: impl FnMut(u64, u32),
) -> Result<ServeExit, ProtoError> {
    let space = model.space();
    let hello = Frame::Hello {
        model: model.name().to_owned(),
        gene_len: space.num_params() as u32,
        metric_len: model.catalog().len() as u32,
    };
    hello.write_to(w)?;

    let mut served: u64 = 0;
    loop {
        let frame = match Frame::read_from(r) {
            Ok(frame) => frame,
            Err(ProtoError::CleanEof) => return Ok(ServeExit::Shutdown),
            Err(e) => return Err(e),
        };
        let (id, attempt, genes) = match frame {
            Frame::Shutdown => return Ok(ServeExit::Shutdown),
            Frame::Eval { id, attempt, genes } => (id, attempt, genes),
            other => {
                return Err(ProtoError::Malformed(format!(
                    "unexpected frame from parent: {other:?}"
                )))
            }
        };
        if genes.len() != space.num_params() {
            return Err(ProtoError::Malformed(format!(
                "genome length {} does not match the {}-parameter space",
                genes.len(),
                space.num_params()
            )));
        }

        served += 1;
        if opts.crash_after.is_some_and(|k| served >= k.max(1)) {
            return Ok(ServeExit::CrashRequested);
        }

        let genome = Genome::from_genes(genes);
        on_request(genome.stable_hash(0), attempt);

        if opts.hang_on_hash == Some(genome.stable_hash(0)) {
            return Ok(ServeExit::HangRequested);
        }

        if opts.slow_ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(opts.slow_ms));
        }

        if garbage_fate(opts, &genome, attempt) {
            w.write_all(&garbage_bytes(opts, &genome, attempt)).map_err(ProtoError::Io)?;
            w.flush().map_err(ProtoError::Io)?;
            return Ok(ServeExit::WroteGarbage);
        }

        let fate = opts.plan.and_then(|p| p.decide_full(&genome, attempt));
        let cost_ms = match &opts.plan {
            Some(plan) => plan.attempt_cost_ms(&genome, attempt),
            None => opts.slow_ms,
        };
        let outcome = match fate {
            Some(InjectedFault::Hang) => return Ok(ServeExit::HangRequested),
            Some(InjectedFault::Transient) => {
                // Dying gasp: classify the fault on the wire, then die for
                // real. The parent reaps and respawns this child.
                let gasp = Frame::Result {
                    id,
                    outcome: WireOutcome::Fault {
                        kind: WIRE_FAULT_TRANSIENT,
                        elapsed_ms: 0,
                        limit_ms: 0,
                        message: "injected: synthesis worker crashed".into(),
                        cost_ms,
                        dying: true,
                    },
                };
                gasp.write_to(w)?;
                return Ok(ServeExit::Dying);
            }
            Some(InjectedFault::Timeout) => WireOutcome::Fault {
                kind: WIRE_FAULT_TIMEOUT,
                elapsed_ms: 1_001,
                limit_ms: 1_000,
                message: "injected: synthesis tool deadline".into(),
                cost_ms,
                dying: false,
            },
            Some(InjectedFault::Persistent) => WireOutcome::Fault {
                kind: WIRE_FAULT_PERSISTENT,
                elapsed_ms: 0,
                limit_ms: 0,
                message: "injected: generator rejects this design".into(),
                cost_ms,
                dying: false,
            },
            Some(InjectedFault::Corrupted) => evaluate(model, &genome, cost_ms, true),
            None => evaluate(model, &genome, cost_ms, false),
        };
        Frame::Result { id, outcome }.write_to(w)?;
    }
}

/// Evaluates `genome` through the real cost model and packages the reply.
fn evaluate(model: &dyn CostModel, genome: &Genome, cost_ms: u64, garbled: bool) -> WireOutcome {
    match model.evaluate(genome) {
        Some(metrics) => WireOutcome::Metrics {
            garbled,
            tool_secs: model.synth_time(genome).as_secs(),
            cost_ms,
            values: metrics.values().to_vec(),
        },
        None => WireOutcome::Infeasible { cost_ms },
    }
}

/// The seeded per-(genome, attempt) garbage draw. Mixing the attempt in
/// keeps garbage retryable, mirroring the plan's retryable fault kinds.
fn garbage_fate(opts: &ServeOptions, genome: &Genome, attempt: u32) -> bool {
    if opts.garbage_rate <= 0.0 {
        return false;
    }
    let g = genome.stable_hash(splitmix64(opts.garbage_seed) ^ SALT_GARBAGE);
    let a = hash_combine(g, splitmix64(u64::from(attempt)));
    mix_to_unit(hash_combine(a, SALT_GARBAGE)) < opts.garbage_rate
}

/// A deterministic garbage burst that can never be mistaken for a frame:
/// the first byte always disagrees with `MAGIC[0]`.
fn garbage_bytes(opts: &ServeOptions, genome: &Genome, attempt: u32) -> Vec<u8> {
    let mut x = hash_combine(
        genome.stable_hash(splitmix64(opts.garbage_seed) ^ SALT_GARBAGE),
        u64::from(attempt),
    );
    let mut out = Vec::with_capacity(GARBAGE_LEN);
    for _ in 0..GARBAGE_LEN {
        x = splitmix64(x);
        out.push((x >> 32) as u8);
    }
    if out[0] == crate::protocol::MAGIC[0] {
        out[0] ^= 0xFF;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testmodel::TestModel;

    /// Drives `serve` against an in-memory request script and returns
    /// (exit, reply frames decoded from the output buffer).
    fn drive(
        model: &dyn CostModel,
        opts: &ServeOptions,
        requests: &[Frame],
    ) -> (ServeExit, Vec<Frame>, Vec<(u64, u32)>) {
        let mut input = Vec::new();
        for f in requests {
            f.write_to(&mut input).unwrap();
        }
        let mut output = Vec::new();
        let mut seen = Vec::new();
        let exit = serve(model, opts, &mut &input[..], &mut output, |h, a| seen.push((h, a)))
            .expect("serve");
        let mut frames = Vec::new();
        let mut r = &output[..];
        loop {
            match Frame::read_from(&mut r) {
                Ok(f) => frames.push(f),
                Err(ProtoError::CleanEof) => break,
                Err(e) => panic!("undecodable server output: {e}"),
            }
        }
        (exit, frames, seen)
    }

    fn eval(id: u64, genes: Vec<u32>) -> Frame {
        Frame::Eval { id, attempt: 0, genes }
    }

    #[test]
    fn serves_hello_then_metrics_then_shutdown() {
        let model = TestModel::new();
        let (exit, frames, seen) =
            drive(&model, &ServeOptions::default(), &[eval(1, vec![3, 11]), Frame::Shutdown]);
        assert_eq!(exit, ServeExit::Shutdown);
        assert_eq!(seen.len(), 1);
        assert!(matches!(
            &frames[0],
            Frame::Hello { gene_len: 2, metric_len, .. } if *metric_len == model.catalog().len() as u32
        ));
        let expected = model.evaluate(&Genome::from_genes(vec![3, 11])).unwrap();
        match &frames[1] {
            Frame::Result {
                id: 1,
                outcome: WireOutcome::Metrics { garbled, values, tool_secs, .. },
            } => {
                assert!(!garbled);
                assert_eq!(values, expected.values());
                assert_eq!(
                    *tool_secs,
                    model.synth_time(&Genome::from_genes(vec![3, 11])).as_secs()
                );
            }
            other => panic!("expected metrics, got {other:?}"),
        }
    }

    #[test]
    fn infeasible_points_reply_infeasible() {
        // TestModel's x == 7 stripe is infeasible.
        let model = TestModel::new();
        let (_, frames, _) = drive(&model, &ServeOptions::default(), &[eval(2, vec![7, 0])]);
        assert!(matches!(
            frames[1],
            Frame::Result { id: 2, outcome: WireOutcome::Infeasible { .. } }
        ));
    }

    #[test]
    fn clean_eof_is_an_orderly_shutdown() {
        let model = TestModel::new();
        let (exit, frames, _) = drive(&model, &ServeOptions::default(), &[]);
        assert_eq!(exit, ServeExit::Shutdown);
        assert_eq!(frames.len(), 1); // just the Hello
    }

    #[test]
    fn crash_after_dies_without_replying() {
        let model = TestModel::new();
        let opts = ServeOptions { crash_after: Some(2), ..ServeOptions::default() };
        let (exit, frames, _) =
            drive(&model, &opts, &[eval(1, vec![0, 0]), eval(2, vec![1, 1]), eval(3, vec![2, 2])]);
        assert_eq!(exit, ServeExit::CrashRequested);
        // Hello + exactly one reply: request 2 died unanswered.
        assert_eq!(frames.len(), 2);
        assert!(matches!(frames[1], Frame::Result { id: 1, .. }));
    }

    #[test]
    fn hang_on_hash_goes_silent_on_the_victim_only() {
        let model = TestModel::new();
        let victim = Genome::from_genes(vec![5, 5]).stable_hash(0);
        let opts = ServeOptions { hang_on_hash: Some(victim), ..ServeOptions::default() };
        let (exit, frames, _) = drive(&model, &opts, &[eval(1, vec![1, 2]), eval(2, vec![5, 5])]);
        assert_eq!(exit, ServeExit::HangRequested);
        assert_eq!(frames.len(), 2); // Hello + reply to the innocent request
    }

    #[test]
    fn plan_fates_mirror_the_in_process_evaluator() {
        let model = TestModel::new();
        let plan = FaultPlan::new(11)
            .with_transient_rate(0.2)
            .with_timeout_rate(0.2)
            .with_corrupt_rate(0.2)
            .with_persistent_rate(0.2);
        let opts = ServeOptions { plan: Some(plan), ..ServeOptions::default() };
        // Sweep genomes until every fate class has been observed, checking
        // each wire reply against the plan's own decision.
        let mut hit = [false; 4];
        'outer: for x in 0..12u32 {
            for y in 0..12u32 {
                let genes = vec![x, y];
                let genome = Genome::from_genes(genes.clone());
                let fate = plan.decide_full(&genome, 0);
                let (exit, frames, _) = drive(&model, &opts, &[eval(9, genes)]);
                match fate {
                    Some(InjectedFault::Transient) => {
                        hit[0] = true;
                        assert_eq!(exit, ServeExit::Dying);
                        assert!(matches!(
                            &frames[1],
                            Frame::Result {
                                outcome: WireOutcome::Fault {
                                    kind: WIRE_FAULT_TRANSIENT,
                                    dying: true,
                                    cost_ms,
                                    ..
                                },
                                ..
                            } if *cost_ms == plan.attempt_cost_ms(&genome, 0)
                        ));
                    }
                    Some(InjectedFault::Timeout) => {
                        hit[1] = true;
                        assert!(matches!(
                            &frames[1],
                            Frame::Result {
                                outcome: WireOutcome::Fault {
                                    kind: WIRE_FAULT_TIMEOUT,
                                    elapsed_ms: 1_001,
                                    limit_ms: 1_000,
                                    dying: false,
                                    ..
                                },
                                ..
                            }
                        ));
                    }
                    Some(InjectedFault::Corrupted) => {
                        hit[2] = true;
                        assert!(matches!(
                            &frames[1],
                            Frame::Result {
                                outcome: WireOutcome::Metrics { garbled: true, .. },
                                ..
                            }
                        ));
                    }
                    Some(InjectedFault::Persistent) => {
                        hit[3] = true;
                        assert!(matches!(
                            &frames[1],
                            Frame::Result {
                                outcome: WireOutcome::Fault { kind: WIRE_FAULT_PERSISTENT, .. },
                                ..
                            }
                        ));
                    }
                    Some(InjectedFault::Hang) => unreachable!("no hang rate configured"),
                    None => {
                        assert!(matches!(
                            &frames[1],
                            Frame::Result {
                                outcome: WireOutcome::Metrics { garbled: false, .. },
                                ..
                            } | Frame::Result { outcome: WireOutcome::Infeasible { .. }, .. }
                        ));
                    }
                }
                if hit.iter().all(|&h| h) {
                    break 'outer;
                }
            }
        }
        assert!(hit.iter().all(|&h| h), "fate sweep never hit all four kinds: {hit:?}");
    }

    #[test]
    fn garbage_bursts_are_deterministic_and_never_frames() {
        let model = TestModel::new();
        let opts = ServeOptions { garbage_rate: 1.0, garbage_seed: 3, ..ServeOptions::default() };
        let mut input = Vec::new();
        eval(1, vec![4, 4]).write_to(&mut input).unwrap();
        let mut out = Vec::new();
        let exit_a = serve(&model, &opts, &mut &input[..], &mut out, |_, _| {}).unwrap();
        assert_eq!(exit_a, ServeExit::WroteGarbage);
        // Re-serve and compare raw output bytes for determinism.
        let run = |input: &[u8]| {
            let mut out = Vec::new();
            let mut r = input;
            serve(&model, &opts, &mut r, &mut out, |_, _| {}).unwrap();
            out
        };
        let a = run(&input);
        let b = run(&input);
        assert_eq!(a, b);
        // After the Hello, the burst must not decode as a frame.
        let hello_len = {
            let mut r = &a[..];
            Frame::read_from(&mut r).unwrap();
            a.len() - r.len()
        };
        let mut r = &a[hello_len..];
        assert!(Frame::read_from(&mut r).is_err());
    }

    #[test]
    fn genome_length_mismatch_is_a_protocol_error() {
        let model = TestModel::new();
        let mut input = Vec::new();
        eval(1, vec![1, 2, 3]).write_to(&mut input).unwrap();
        let mut out = Vec::new();
        let err = serve(&model, &ServeOptions::default(), &mut &input[..], &mut out, |_, _| {})
            .expect_err("length mismatch accepted");
        assert!(matches!(err, ProtoError::Malformed(_)));
    }
}
