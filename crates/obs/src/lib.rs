//! `nautilus-obs` — dependency-free observability for the Nautilus search
//! stack.
//!
//! The engine in `nautilus-ga` / `nautilus` is otherwise a black box
//! between "run the search" and a final `SearchOutcome`. This crate makes
//! the inside visible without adding any external dependency (the build
//! environment is offline): std atomics, `Mutex`, and a hand-rolled JSON
//! emitter are the whole footprint. Four pillars:
//!
//! 1. **Metrics registry** ([`MetricsRegistry`]) — lock-free [`Counter`]s,
//!    [`Gauge`]s and fixed-bucket [`Histogram`]s with a cheap
//!    [`MetricsRegistry::snapshot`]. [`MetricsSink`] folds the event
//!    stream into a registry (evals, cache hits, infeasible attempts,
//!    mutations per parameter, hint applications by kind, ...).
//! 2. **Structured event bus** — the [`SearchObserver`] trait receives
//!    typed [`SearchEvent`]s; [`span`] gives span-style scoped timers.
//!    The default [`noop`] observer reports itself disabled so emitters
//!    pay one predictable branch and never allocate. [`JsonlSink`]
//!    streams events as JSON Lines; [`InMemorySink`] buffers them for
//!    tests; [`Fanout`] broadcasts to several observers at once.
//! 3. **Per-run reports** — [`ReportBuilder`] aggregates one run's events
//!    into a [`RunReport`] (per-generation hint/decay/cache dynamics plus
//!    whole-run tallies) that serializes to a summary JSON document.
//! 4. **Time-attribution profiling** — a [`Tracer`] collects per-thread
//!    [`Phase`] span timelines through buffered [`SpanRecorder`]s (flushed
//!    only at deterministic merge points, so tracing never perturbs a
//!    search), exports Chrome/Perfetto trace JSON via [`TraceSink`], and
//!    aggregates [`Tracer::phase_stats`] for the report's `phases` block.
//!    [`BatchEventBuffer`] / [`capture_events`] defer worker-side events
//!    to the same merge points so parallel event streams replay exactly
//!    like serial ones.
//!
//! A typical instrumented run fans a streaming sink and a report builder
//! out to the same engine:
//!
//! ```no_run
//! use nautilus_obs::{Fanout, JsonlSink, ReportBuilder, SearchObserver};
//!
//! let jsonl = JsonlSink::create("run.jsonl").unwrap();
//! let report = ReportBuilder::new();
//! let fan = Fanout::pair(&jsonl, &report);
//! // ... hand `&fan` to the engine as its `&dyn SearchObserver` ...
//! # fan.on_event(&nautilus_obs::SearchEvent::ParetoUpdated { size: 0 });
//! jsonl.flush().unwrap();
//! let summary = report.finish().to_json();
//! # let _ = summary;
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod buffer;
pub mod event;
pub mod json;
pub mod metrics;
pub mod observer;
pub mod report;
pub mod sink;
pub mod span;
pub mod wire;

pub use buffer::{capture_events, BatchEventBuffer};
pub use event::{FailureKind, HealthState, HintKind, SearchEvent};
pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSink, MetricsSnapshot,
};
pub use observer::{noop, span, Fanout, NoopObserver, SearchObserver, SpanGuard};
pub use report::{
    DurabilityTally, EdgeTally, EvalTally, FaultTally, GenerationTelemetry, HealthTally, HintTally,
    ReportBuilder, RunReport, ServiceTally, SpanStat, SubprocessTally,
};
pub use sink::{InMemorySink, JsonlSink};
pub use span::{Phase, PhaseStat, SpanRecord, SpanRecorder, SpanStart, TraceSink, Tracer};
pub use wire::{WireError, WireReader, WireWriter};
