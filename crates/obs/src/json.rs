//! A minimal, dependency-free JSON emitter and validator.
//!
//! The observability layer must not pull in `serde_json` (the build
//! environment is offline), so events, metric snapshots and run reports
//! serialize through this hand-rolled writer. The emitted subset is plain
//! JSON: objects, arrays, strings, bools, `u64`/`i64`/`f64` numbers and
//! `null`. Non-finite floats serialize as `null` so the output always
//! parses.

use std::fmt::Write as _;

/// Escapes `s` into `out` as the body of a JSON string literal.
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Writes `v` as a JSON number, or `null` when it is not finite.
fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // Rust's shortest round-trip formatting; integral values gain a
        // trailing ".0" so readers see a float, not an int.
        if v == v.trunc() && v.abs() < 1e15 {
            let _ = write!(out, "{v:.1}");
        } else {
            let _ = write!(out, "{v}");
        }
    } else {
        out.push_str("null");
    }
}

/// An incremental JSON **object** builder.
///
/// ```
/// use nautilus_obs::json::JsonObj;
/// let mut o = JsonObj::new();
/// o.str("type", "eval_completed").bool("cached", false).u64("tool_secs", 60);
/// assert_eq!(o.finish(), r#"{"type":"eval_completed","cached":false,"tool_secs":60}"#);
/// ```
#[derive(Debug, Clone)]
pub struct JsonObj {
    buf: String,
    first: bool,
}

impl Default for JsonObj {
    fn default() -> Self {
        JsonObj::new()
    }
}

impl JsonObj {
    /// Starts an empty object.
    #[must_use]
    pub fn new() -> Self {
        JsonObj { buf: String::from("{"), first: true }
    }

    fn key(&mut self, k: &str) -> &mut String {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        self.buf.push('"');
        escape_into(&mut self.buf, k);
        self.buf.push_str("\":");
        &mut self.buf
    }

    /// Adds a string field.
    pub fn str(&mut self, k: &str, v: &str) -> &mut Self {
        let buf = self.key(k);
        buf.push('"');
        escape_into(buf, v);
        buf.push('"');
        self
    }

    /// Adds an unsigned integer field.
    pub fn u64(&mut self, k: &str, v: u64) -> &mut Self {
        let buf = self.key(k);
        let _ = write!(buf, "{v}");
        self
    }

    /// Adds a signed integer field.
    pub fn i64(&mut self, k: &str, v: i64) -> &mut Self {
        let buf = self.key(k);
        let _ = write!(buf, "{v}");
        self
    }

    /// Adds a float field (`null` when not finite).
    pub fn f64(&mut self, k: &str, v: f64) -> &mut Self {
        let buf = self.key(k);
        push_f64(buf, v);
        self
    }

    /// Adds a boolean field.
    pub fn bool(&mut self, k: &str, v: bool) -> &mut Self {
        let buf = self.key(k);
        buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Adds a field whose value is already-serialized JSON.
    pub fn raw(&mut self, k: &str, json: &str) -> &mut Self {
        let buf = self.key(k);
        buf.push_str(json);
        self
    }

    /// Adds an array-of-strings field.
    pub fn arr_str<S: AsRef<str>>(&mut self, k: &str, vs: &[S]) -> &mut Self {
        let buf = self.key(k);
        buf.push('[');
        for (i, v) in vs.iter().enumerate() {
            if i > 0 {
                buf.push(',');
            }
            buf.push('"');
            escape_into(buf, v.as_ref());
            buf.push('"');
        }
        buf.push(']');
        self
    }

    /// Adds an array-of-u64 field.
    pub fn arr_u64(&mut self, k: &str, vs: &[u64]) -> &mut Self {
        let buf = self.key(k);
        buf.push('[');
        for (i, v) in vs.iter().enumerate() {
            if i > 0 {
                buf.push(',');
            }
            let _ = write!(buf, "{v}");
        }
        buf.push(']');
        self
    }

    /// Adds an array-of-f64 field (non-finite entries become `null`).
    pub fn arr_f64(&mut self, k: &str, vs: &[f64]) -> &mut Self {
        let buf = self.key(k);
        buf.push('[');
        for (i, v) in vs.iter().enumerate() {
            if i > 0 {
                buf.push(',');
            }
            push_f64(buf, *v);
        }
        buf.push(']');
        self
    }

    /// Adds an array field of already-serialized JSON values.
    pub fn arr_raw<S: AsRef<str>>(&mut self, k: &str, vs: &[S]) -> &mut Self {
        let buf = self.key(k);
        buf.push('[');
        for (i, v) in vs.iter().enumerate() {
            if i > 0 {
                buf.push(',');
            }
            buf.push_str(v.as_ref());
        }
        buf.push(']');
        self
    }

    /// Closes the object and returns the JSON text.
    #[must_use]
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// Validates that `s` is exactly one well-formed JSON value.
///
/// A tiny recursive-descent checker used by tests and by readers of the
/// JSONL streams; it accepts the standard JSON grammar (RFC 8259).
#[must_use]
pub fn is_valid_json(s: &str) -> bool {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    if !parse_value(bytes, &mut pos, 0) {
        return false;
    }
    skip_ws(bytes, &mut pos);
    pos == bytes.len()
}

const MAX_DEPTH: usize = 128;

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize, depth: usize) -> bool {
    if depth > MAX_DEPTH || *pos >= b.len() {
        return false;
    }
    match b[*pos] {
        b'{' => parse_object(b, pos, depth + 1),
        b'[' => parse_array(b, pos, depth + 1),
        b'"' => parse_string(b, pos),
        b't' => parse_lit(b, pos, b"true"),
        b'f' => parse_lit(b, pos, b"false"),
        b'n' => parse_lit(b, pos, b"null"),
        b'-' | b'0'..=b'9' => parse_number(b, pos),
        _ => false,
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &[u8]) -> bool {
    if b.len() - *pos >= lit.len() && &b[*pos..*pos + lit.len()] == lit {
        *pos += lit.len();
        true
    } else {
        false
    }
}

fn parse_object(b: &[u8], pos: &mut usize, depth: usize) -> bool {
    *pos += 1; // consume '{'
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == b'}' {
        *pos += 1;
        return true;
    }
    loop {
        skip_ws(b, pos);
        if *pos >= b.len() || b[*pos] != b'"' || !parse_string(b, pos) {
            return false;
        }
        skip_ws(b, pos);
        if *pos >= b.len() || b[*pos] != b':' {
            return false;
        }
        *pos += 1;
        skip_ws(b, pos);
        if !parse_value(b, pos, depth) {
            return false;
        }
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return true;
            }
            _ => return false,
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize, depth: usize) -> bool {
    *pos += 1; // consume '['
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == b']' {
        *pos += 1;
        return true;
    }
    loop {
        skip_ws(b, pos);
        if !parse_value(b, pos, depth) {
            return false;
        }
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return true;
            }
            _ => return false,
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> bool {
    *pos += 1; // consume '"'
    while *pos < b.len() {
        match b[*pos] {
            b'"' => {
                *pos += 1;
                return true;
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            if !matches!(b.get(*pos), Some(c) if c.is_ascii_hexdigit()) {
                                return false;
                            }
                            *pos += 1;
                        }
                    }
                    _ => return false,
                }
            }
            0x00..=0x1F => return false,
            _ => *pos += 1,
        }
    }
    false
}

fn parse_number(b: &[u8], pos: &mut usize) -> bool {
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    match b.get(*pos) {
        Some(b'0') => *pos += 1,
        Some(b'1'..=b'9') => {
            while matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
                *pos += 1;
            }
        }
        _ => return false,
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
            return false;
        }
        while matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
            *pos += 1;
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
            return false;
        }
        while matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
            *pos += 1;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_builder_emits_valid_json() {
        let mut o = JsonObj::new();
        o.str("s", "he\"llo\n")
            .u64("u", 42)
            .i64("i", -7)
            .f64("f", 1.5)
            .f64("nan", f64::NAN)
            .bool("b", true)
            .arr_str("names", &["a", "b"])
            .arr_u64("counts", &[1, 2, 3])
            .arr_f64("xs", &[0.5, f64::INFINITY]);
        let json = o.finish();
        assert!(is_valid_json(&json), "invalid: {json}");
        assert!(json.contains(r#""nan":null"#));
        assert!(json.contains(r#""xs":[0.5,null]"#));
        assert!(json.contains(r#""s":"he\"llo\n""#));
    }

    #[test]
    fn empty_object_is_valid() {
        assert_eq!(JsonObj::new().finish(), "{}");
        assert!(is_valid_json("{}"));
    }

    #[test]
    fn integral_floats_keep_a_decimal_point() {
        let mut o = JsonObj::new();
        o.f64("v", 3.0);
        assert_eq!(o.finish(), r#"{"v":3.0}"#);
    }

    #[test]
    fn raw_and_nested_fields_compose() {
        let mut inner = JsonObj::new();
        inner.u64("n", 1);
        let mut outer = JsonObj::new();
        outer.raw("inner", &inner.clone().finish());
        outer.arr_raw("list", &[inner.finish()]);
        let json = outer.finish();
        assert!(is_valid_json(&json), "invalid: {json}");
        assert_eq!(json, r#"{"inner":{"n":1},"list":[{"n":1}]}"#);
    }

    #[test]
    fn validator_accepts_standard_json() {
        for ok in [
            "null",
            "true",
            "-0.5e10",
            "[1, 2, 3]",
            r#"{"a": [true, {"b": "c"}], "d": 1e-3}"#,
            r#""é\\""#,
            "  [ ]  ",
        ] {
            assert!(is_valid_json(ok), "should accept: {ok}");
        }
    }

    #[test]
    fn validator_rejects_malformed_json() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "nul",
            "01",
            "1.",
            "\"unterminated",
            "{}extra",
            "{\"a\":1,}",
            "\"bad\\q\"",
        ] {
            assert!(!is_valid_json(bad), "should reject: {bad}");
        }
    }

    #[test]
    fn validator_bounds_recursion_depth() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(!is_valid_json(&deep));
        let ok = "[".repeat(50) + &"]".repeat(50);
        assert!(is_valid_json(&ok));
    }
}
