//! A minimal, dependency-free JSON emitter and validator.
//!
//! The observability layer must not pull in `serde_json` (the build
//! environment is offline), so events, metric snapshots and run reports
//! serialize through this hand-rolled writer. The emitted subset is plain
//! JSON: objects, arrays, strings, bools, `u64`/`i64`/`f64` numbers and
//! `null`. Non-finite floats serialize as `null` so the output always
//! parses.

use std::fmt::Write as _;

/// Escapes `s` into `out` as the body of a JSON string literal.
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Writes `v` as a JSON number, or `null` when it is not finite.
fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // Rust's shortest round-trip formatting; integral values gain a
        // trailing ".0" so readers see a float, not an int.
        if v == v.trunc() && v.abs() < 1e15 {
            let _ = write!(out, "{v:.1}");
        } else {
            let _ = write!(out, "{v}");
        }
    } else {
        out.push_str("null");
    }
}

/// An incremental JSON **object** builder.
///
/// ```
/// use nautilus_obs::json::JsonObj;
/// let mut o = JsonObj::new();
/// o.str("type", "eval_completed").bool("cached", false).u64("tool_secs", 60);
/// assert_eq!(o.finish(), r#"{"type":"eval_completed","cached":false,"tool_secs":60}"#);
/// ```
#[derive(Debug, Clone)]
pub struct JsonObj {
    buf: String,
    first: bool,
}

impl Default for JsonObj {
    fn default() -> Self {
        JsonObj::new()
    }
}

impl JsonObj {
    /// Starts an empty object.
    #[must_use]
    pub fn new() -> Self {
        JsonObj { buf: String::from("{"), first: true }
    }

    fn key(&mut self, k: &str) -> &mut String {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        self.buf.push('"');
        escape_into(&mut self.buf, k);
        self.buf.push_str("\":");
        &mut self.buf
    }

    /// Adds a string field.
    pub fn str(&mut self, k: &str, v: &str) -> &mut Self {
        let buf = self.key(k);
        buf.push('"');
        escape_into(buf, v);
        buf.push('"');
        self
    }

    /// Adds an unsigned integer field.
    pub fn u64(&mut self, k: &str, v: u64) -> &mut Self {
        let buf = self.key(k);
        let _ = write!(buf, "{v}");
        self
    }

    /// Adds a signed integer field.
    pub fn i64(&mut self, k: &str, v: i64) -> &mut Self {
        let buf = self.key(k);
        let _ = write!(buf, "{v}");
        self
    }

    /// Adds a float field (`null` when not finite).
    pub fn f64(&mut self, k: &str, v: f64) -> &mut Self {
        let buf = self.key(k);
        push_f64(buf, v);
        self
    }

    /// Adds a boolean field.
    pub fn bool(&mut self, k: &str, v: bool) -> &mut Self {
        let buf = self.key(k);
        buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Adds a field whose value is already-serialized JSON.
    pub fn raw(&mut self, k: &str, json: &str) -> &mut Self {
        let buf = self.key(k);
        buf.push_str(json);
        self
    }

    /// Adds an array-of-strings field.
    pub fn arr_str<S: AsRef<str>>(&mut self, k: &str, vs: &[S]) -> &mut Self {
        let buf = self.key(k);
        buf.push('[');
        for (i, v) in vs.iter().enumerate() {
            if i > 0 {
                buf.push(',');
            }
            buf.push('"');
            escape_into(buf, v.as_ref());
            buf.push('"');
        }
        buf.push(']');
        self
    }

    /// Adds an array-of-u64 field.
    pub fn arr_u64(&mut self, k: &str, vs: &[u64]) -> &mut Self {
        let buf = self.key(k);
        buf.push('[');
        for (i, v) in vs.iter().enumerate() {
            if i > 0 {
                buf.push(',');
            }
            let _ = write!(buf, "{v}");
        }
        buf.push(']');
        self
    }

    /// Adds an array-of-f64 field (non-finite entries become `null`).
    pub fn arr_f64(&mut self, k: &str, vs: &[f64]) -> &mut Self {
        let buf = self.key(k);
        buf.push('[');
        for (i, v) in vs.iter().enumerate() {
            if i > 0 {
                buf.push(',');
            }
            push_f64(buf, *v);
        }
        buf.push(']');
        self
    }

    /// Adds an array field of already-serialized JSON values.
    pub fn arr_raw<S: AsRef<str>>(&mut self, k: &str, vs: &[S]) -> &mut Self {
        let buf = self.key(k);
        buf.push('[');
        for (i, v) in vs.iter().enumerate() {
            if i > 0 {
                buf.push(',');
            }
            buf.push_str(v.as_ref());
        }
        buf.push(']');
        self
    }

    /// Closes the object and returns the JSON text.
    #[must_use]
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// Validates that `s` is exactly one well-formed JSON value.
///
/// A tiny recursive-descent checker used by tests and by readers of the
/// JSONL streams; it accepts the standard JSON grammar (RFC 8259).
#[must_use]
pub fn is_valid_json(s: &str) -> bool {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    if !parse_value(bytes, &mut pos, 0) {
        return false;
    }
    skip_ws(bytes, &mut pos);
    pos == bytes.len()
}

const MAX_DEPTH: usize = 128;

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize, depth: usize) -> bool {
    if depth > MAX_DEPTH || *pos >= b.len() {
        return false;
    }
    match b[*pos] {
        b'{' => parse_object(b, pos, depth + 1),
        b'[' => parse_array(b, pos, depth + 1),
        b'"' => parse_string(b, pos),
        b't' => parse_lit(b, pos, b"true"),
        b'f' => parse_lit(b, pos, b"false"),
        b'n' => parse_lit(b, pos, b"null"),
        b'-' | b'0'..=b'9' => parse_number(b, pos),
        _ => false,
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &[u8]) -> bool {
    if b.len() - *pos >= lit.len() && &b[*pos..*pos + lit.len()] == lit {
        *pos += lit.len();
        true
    } else {
        false
    }
}

fn parse_object(b: &[u8], pos: &mut usize, depth: usize) -> bool {
    *pos += 1; // consume '{'
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == b'}' {
        *pos += 1;
        return true;
    }
    loop {
        skip_ws(b, pos);
        if *pos >= b.len() || b[*pos] != b'"' || !parse_string(b, pos) {
            return false;
        }
        skip_ws(b, pos);
        if *pos >= b.len() || b[*pos] != b':' {
            return false;
        }
        *pos += 1;
        skip_ws(b, pos);
        if !parse_value(b, pos, depth) {
            return false;
        }
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return true;
            }
            _ => return false,
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize, depth: usize) -> bool {
    *pos += 1; // consume '['
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == b']' {
        *pos += 1;
        return true;
    }
    loop {
        skip_ws(b, pos);
        if !parse_value(b, pos, depth) {
            return false;
        }
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return true;
            }
            _ => return false,
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> bool {
    *pos += 1; // consume '"'
    while *pos < b.len() {
        match b[*pos] {
            b'"' => {
                *pos += 1;
                return true;
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            if !matches!(b.get(*pos), Some(c) if c.is_ascii_hexdigit()) {
                                return false;
                            }
                            *pos += 1;
                        }
                    }
                    _ => return false,
                }
            }
            0x00..=0x1F => return false,
            _ => *pos += 1,
        }
    }
    false
}

fn parse_number(b: &[u8], pos: &mut usize) -> bool {
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    match b.get(*pos) {
        Some(b'0') => *pos += 1,
        Some(b'1'..=b'9') => {
            while matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
                *pos += 1;
            }
        }
        _ => return false,
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
            return false;
        }
        while matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
            *pos += 1;
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
            return false;
        }
        while matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
            *pos += 1;
        }
    }
    true
}

/// A parsed JSON value (the same subset the emitter produces; numbers
/// are `f64`).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, preserving member order (duplicate keys: first wins in
    /// [`JsonValue::get`]).
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object member lookup (`None` for non-objects and missing keys).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is one exactly.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(v) if v.fract() == 0.0 && *v >= 0.0 && *v <= 2f64.powi(53) => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The string slice, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    #[must_use]
    pub fn as_obj(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(members) => Some(members),
            _ => None,
        }
    }
}

/// A JSON parse failure, with the byte offset where parsing stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

fn err<T>(message: impl Into<String>, offset: usize) -> Result<T, JsonError> {
    Err(JsonError { message: message.into(), offset })
}

/// Parses exactly one JSON value from `s` (RFC 8259 grammar, recursion
/// depth capped as in [`is_valid_json`]).
///
/// # Errors
///
/// Returns a [`JsonError`] locating the first malformed construct, a
/// trailing-garbage error when `s` continues past the value, or a
/// depth-cap error on pathological nesting.
pub fn parse_json(s: &str) -> Result<JsonValue, JsonError> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    let value = value_at(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return err("trailing characters after JSON value", pos);
    }
    Ok(value)
}

fn value_at(b: &[u8], pos: &mut usize, depth: usize) -> Result<JsonValue, JsonError> {
    if depth > MAX_DEPTH {
        return err("nesting deeper than supported", *pos);
    }
    match b.get(*pos) {
        Some(b'{') => object_at(b, pos, depth + 1),
        Some(b'[') => array_at(b, pos, depth + 1),
        Some(b'"') => string_at(b, pos).map(JsonValue::Str),
        Some(b't') => lit_at(b, pos, b"true", JsonValue::Bool(true)),
        Some(b'f') => lit_at(b, pos, b"false", JsonValue::Bool(false)),
        Some(b'n') => lit_at(b, pos, b"null", JsonValue::Null),
        Some(b'-' | b'0'..=b'9') => number_at(b, pos),
        Some(_) => err("unexpected character", *pos),
        None => err("unexpected end of input", *pos),
    }
}

fn lit_at(b: &[u8], pos: &mut usize, lit: &[u8], value: JsonValue) -> Result<JsonValue, JsonError> {
    if parse_lit(b, pos, lit) {
        Ok(value)
    } else {
        err(format!("expected `{}`", String::from_utf8_lossy(lit)), *pos)
    }
}

fn object_at(b: &[u8], pos: &mut usize, depth: usize) -> Result<JsonValue, JsonError> {
    *pos += 1; // consume '{'
    skip_ws(b, pos);
    let mut members = Vec::new();
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Obj(members));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return err("expected object key", *pos);
        }
        let key = string_at(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return err("expected `:`", *pos);
        }
        *pos += 1;
        skip_ws(b, pos);
        let value = value_at(b, pos, depth)?;
        members.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Obj(members));
            }
            _ => return err("expected `,` or `}`", *pos),
        }
    }
}

fn array_at(b: &[u8], pos: &mut usize, depth: usize) -> Result<JsonValue, JsonError> {
    *pos += 1; // consume '['
    skip_ws(b, pos);
    let mut items = Vec::new();
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Arr(items));
    }
    loop {
        skip_ws(b, pos);
        items.push(value_at(b, pos, depth)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            _ => return err("expected `,` or `]`", *pos),
        }
    }
}

fn string_at(b: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    let start = *pos;
    *pos += 1; // consume '"'
    let mut out = String::new();
    while *pos < b.len() {
        match b[*pos] {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        *pos += 1;
                        let hi = hex4_at(b, pos)?;
                        let c = if (0xD800..0xDC00).contains(&hi) {
                            // High surrogate: require a low surrogate next.
                            if b.get(*pos) == Some(&b'\\') && b.get(*pos + 1) == Some(&b'u') {
                                *pos += 2;
                                let lo = hex4_at(b, pos)?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return err("unpaired surrogate", *pos);
                                }
                                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(cp).ok_or(())
                            } else {
                                Err(())
                            }
                        } else {
                            char::from_u32(hi).ok_or(())
                        };
                        match c {
                            Ok(c) => out.push(c),
                            Err(()) => return err("invalid \\u escape", *pos),
                        }
                        continue; // hex4_at already advanced past the digits
                    }
                    _ => return err("invalid escape", *pos),
                }
                *pos += 1;
            }
            0x00..=0x1F => return err("control character in string", *pos),
            _ => {
                // Multi-byte UTF-8 is passed through; the input is a &str
                // so byte-level copying stays valid.
                let ch_len = utf8_len(b[*pos]);
                let end = *pos + ch_len;
                if end > b.len() {
                    return err("truncated UTF-8", *pos);
                }
                out.push_str(
                    std::str::from_utf8(&b[*pos..end])
                        .map_err(|_| JsonError { message: "invalid UTF-8".into(), offset: *pos })?,
                );
                *pos = end;
            }
        }
    }
    err("unterminated string", start)
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

fn hex4_at(b: &[u8], pos: &mut usize) -> Result<u32, JsonError> {
    let mut v = 0u32;
    for _ in 0..4 {
        let Some(c) = b.get(*pos).copied().filter(u8::is_ascii_hexdigit) else {
            return err("expected 4 hex digits", *pos);
        };
        v = v * 16 + (c as char).to_digit(16).expect("hex digit");
        *pos += 1;
    }
    Ok(v)
}

fn number_at(b: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    let start = *pos;
    if !parse_number(b, pos) {
        return err("malformed number", start);
    }
    let text = std::str::from_utf8(&b[start..*pos]).expect("number bytes are ASCII");
    match text.parse::<f64>() {
        Ok(v) => Ok(JsonValue::Num(v)),
        Err(_) => err("unrepresentable number", start),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_builder_emits_valid_json() {
        let mut o = JsonObj::new();
        o.str("s", "he\"llo\n")
            .u64("u", 42)
            .i64("i", -7)
            .f64("f", 1.5)
            .f64("nan", f64::NAN)
            .bool("b", true)
            .arr_str("names", &["a", "b"])
            .arr_u64("counts", &[1, 2, 3])
            .arr_f64("xs", &[0.5, f64::INFINITY]);
        let json = o.finish();
        assert!(is_valid_json(&json), "invalid: {json}");
        assert!(json.contains(r#""nan":null"#));
        assert!(json.contains(r#""xs":[0.5,null]"#));
        assert!(json.contains(r#""s":"he\"llo\n""#));
    }

    #[test]
    fn empty_object_is_valid() {
        assert_eq!(JsonObj::new().finish(), "{}");
        assert!(is_valid_json("{}"));
    }

    #[test]
    fn integral_floats_keep_a_decimal_point() {
        let mut o = JsonObj::new();
        o.f64("v", 3.0);
        assert_eq!(o.finish(), r#"{"v":3.0}"#);
    }

    #[test]
    fn raw_and_nested_fields_compose() {
        let mut inner = JsonObj::new();
        inner.u64("n", 1);
        let mut outer = JsonObj::new();
        outer.raw("inner", &inner.clone().finish());
        outer.arr_raw("list", &[inner.finish()]);
        let json = outer.finish();
        assert!(is_valid_json(&json), "invalid: {json}");
        assert_eq!(json, r#"{"inner":{"n":1},"list":[{"n":1}]}"#);
    }

    #[test]
    fn validator_accepts_standard_json() {
        for ok in [
            "null",
            "true",
            "-0.5e10",
            "[1, 2, 3]",
            r#"{"a": [true, {"b": "c"}], "d": 1e-3}"#,
            r#""é\\""#,
            "  [ ]  ",
        ] {
            assert!(is_valid_json(ok), "should accept: {ok}");
        }
    }

    #[test]
    fn validator_rejects_malformed_json() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "nul",
            "01",
            "1.",
            "\"unterminated",
            "{}extra",
            "{\"a\":1,}",
            "\"bad\\q\"",
        ] {
            assert!(!is_valid_json(bad), "should reject: {bad}");
        }
    }

    #[test]
    fn validator_bounds_recursion_depth() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(!is_valid_json(&deep));
        let ok = "[".repeat(50) + &"]".repeat(50);
        assert!(is_valid_json(&ok));
    }
}
