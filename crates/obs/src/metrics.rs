//! A lock-free metrics registry: counters, gauges and fixed-bucket
//! histograms with a cheap serializable snapshot.
//!
//! Individual instruments are plain atomics — incrementing a [`Counter`]
//! is one relaxed `fetch_add`. The registry itself guards its name table
//! with a `Mutex`, but that lock is only taken at registration and
//! snapshot time, never on the hot increment path (callers hold an
//! `Arc` to the instrument).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::event::{FailureKind, HintKind, SearchEvent};
use crate::json::JsonObj;
use crate::observer::SearchObserver;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    #[must_use]
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins float gauge (stored as `f64` bits in an atomic).
#[derive(Debug)]
pub struct Gauge(AtomicU64);

impl Default for Gauge {
    fn default() -> Self {
        Gauge(AtomicU64::new(0f64.to_bits()))
    }
}

impl Gauge {
    /// A gauge at zero.
    #[must_use]
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Replaces the value.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// The current value.
    #[must_use]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A fixed-boundary histogram of `f64` observations.
///
/// `bounds` are the inclusive upper edges of the first `bounds.len()`
/// buckets; one final overflow bucket catches everything above the last
/// edge. The running sum is kept in integral nano-units so recording stays
/// a single `fetch_add` (no CAS loop); values are clamped to the
/// representable range.
#[derive(Debug)]
pub struct Histogram {
    bounds: Box<[f64]>,
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum_nanos: AtomicU64,
}

const NANO: f64 = 1e9;

impl Histogram {
    /// Creates a histogram with the given ascending bucket upper edges.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly ascending.
    #[must_use]
    pub fn new(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket edge");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        Histogram {
            bounds: bounds.into(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_nanos: AtomicU64::new(0),
        }
    }

    /// Exponential bucket edges: `start, start*factor, ...` (`n` edges).
    ///
    /// # Panics
    ///
    /// Panics if `start <= 0`, `factor <= 1` or `n == 0`.
    #[must_use]
    pub fn exponential(start: f64, factor: f64, n: usize) -> Self {
        assert!(start > 0.0 && factor > 1.0 && n > 0, "invalid exponential layout");
        let mut edge = start;
        let bounds: Vec<f64> = (0..n)
            .map(|_| {
                let e = edge;
                edge *= factor;
                e
            })
            .collect();
        Histogram::new(&bounds)
    }

    /// Records one observation.
    pub fn record(&self, v: f64) {
        let idx = self.bounds.partition_point(|&b| b < v);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        if v > 0.0 {
            let nanos = (v * NANO).min(u64::MAX as f64 / 2.0) as u64;
            self.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
        }
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of positive observations.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum_nanos.load(Ordering::Relaxed) as f64 / NANO
    }

    /// An immutable snapshot.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.to_vec(),
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            count: self.count(),
            sum: self.sum(),
        }
    }
}

/// Snapshot of one [`Histogram`].
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Inclusive upper edges of the leading buckets.
    pub bounds: Vec<f64>,
    /// Bucket counts (`bounds.len() + 1` entries; last is overflow).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of positive observations.
    pub sum: f64,
}

impl HistogramSnapshot {
    /// Serializes as a JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut o = JsonObj::new();
        o.arr_f64("bounds", &self.bounds)
            .arr_u64("buckets", &self.buckets)
            .u64("count", self.count)
            .f64("sum", self.sum);
        o.finish()
    }
}

/// A named registry of counters, gauges and histograms.
///
/// ```
/// use nautilus_obs::MetricsRegistry;
/// let reg = MetricsRegistry::new();
/// let evals = reg.counter("evals_total");
/// evals.add(3);
/// assert_eq!(reg.snapshot().counters["evals_total"], 3);
/// ```
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Returns the counter named `name`, registering it on first use.
    ///
    /// # Panics
    ///
    /// Panics if the registry mutex is poisoned.
    #[must_use]
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().expect("metrics registry poisoned");
        Arc::clone(map.entry(name.to_owned()).or_default())
    }

    /// Returns the gauge named `name`, registering it on first use.
    ///
    /// # Panics
    ///
    /// Panics if the registry mutex is poisoned.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().expect("metrics registry poisoned");
        Arc::clone(map.entry(name.to_owned()).or_default())
    }

    /// Returns the histogram named `name`, creating it with `bounds` on
    /// first use (later calls ignore `bounds`).
    ///
    /// # Panics
    ///
    /// Panics if the registry mutex is poisoned, or on first registration
    /// with invalid bounds (see [`Histogram::new`]).
    #[must_use]
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Arc<Histogram> {
        let mut map = self.histograms.lock().expect("metrics registry poisoned");
        Arc::clone(map.entry(name.to_owned()).or_insert_with(|| Arc::new(Histogram::new(bounds))))
    }

    /// A point-in-time copy of every registered instrument.
    ///
    /// # Panics
    ///
    /// Panics if a registry mutex is poisoned.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .lock()
                .expect("metrics registry poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .expect("metrics registry poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .expect("metrics registry poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// Serializable snapshot of a [`MetricsRegistry`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Serializes as one JSON object with `counters` / `gauges` /
    /// `histograms` sections.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut counters = JsonObj::new();
        for (k, v) in &self.counters {
            counters.u64(k, *v);
        }
        let mut gauges = JsonObj::new();
        for (k, v) in &self.gauges {
            gauges.f64(k, *v);
        }
        let mut hists = JsonObj::new();
        for (k, v) in &self.histograms {
            hists.raw(k, &v.to_json());
        }
        let mut o = JsonObj::new();
        o.raw("counters", &counters.finish())
            .raw("gauges", &gauges.finish())
            .raw("histograms", &hists.finish());
        o.finish()
    }
}

/// An observer that folds the event stream into a [`MetricsRegistry`].
///
/// Maintained counters: `runs_total`, `generations_total`, `evals_total`,
/// `evals_cached`, `evals_infeasible`, `eval_tool_secs`,
/// `mutations_total`, `hint_applied_<kind>` per [`HintKind`],
/// `mutations_param_<name>` per parameter (after a `RunStart` supplies the
/// names), `crossovers_total`, `selections_total`, `pareto_updates`,
/// `importance_decays`, `eval_batches`, `cache_shard_contentions`,
/// `eval_failures_total`, `eval_failures_<kind>` per [`FailureKind`],
/// `eval_retries_total`, `evals_recovered`, `genomes_quarantined`,
/// `checkpoints_written`, `checkpoints_restored`,
/// `checkpoints_corrupt_skipped`, `runs_interrupted`, `runs_resumed`,
/// `watchdog_fired`, `hedges_issued`, `hedges_won`, `hedges_wasted`,
/// `breaker_transitions`, `evals_shed`, `children_spawned`,
/// `children_killed`, `children_respawned`, `child_protocol_errors`,
/// `jobs_queued`, `jobs_started`, `jobs_finished`, `jobs_cancelled`,
/// `jobs_rejected` and `jobs_adopted`.
/// Span durations land in `span_<name>_secs` histograms, batch sizes in
/// the `eval_batch_size` histogram, retry backoffs in the
/// `retry_backoff_secs` histogram, checkpoint record sizes in the
/// `checkpoint_bytes` histogram, checkpoint write latencies in the
/// `checkpoint_write_secs` histogram, and the latest `best_so_far` in the
/// `best_value` gauge.
pub struct MetricsSink {
    registry: Arc<MetricsRegistry>,
    runs: Arc<Counter>,
    generations: Arc<Counter>,
    evals: Arc<Counter>,
    evals_cached: Arc<Counter>,
    evals_infeasible: Arc<Counter>,
    tool_secs: Arc<Counter>,
    mutations: Arc<Counter>,
    hint_kinds: [Arc<Counter>; HintKind::ALL.len()],
    crossovers: Arc<Counter>,
    selections: Arc<Counter>,
    pareto_updates: Arc<Counter>,
    importance_decays: Arc<Counter>,
    eval_batches: Arc<Counter>,
    batch_sizes: Arc<Histogram>,
    shard_contentions: Arc<Counter>,
    eval_failures: Arc<Counter>,
    failure_kinds: [Arc<Counter>; FailureKind::ALL.len()],
    eval_retries: Arc<Counter>,
    retry_backoffs: Arc<Histogram>,
    evals_recovered: Arc<Counter>,
    genomes_quarantined: Arc<Counter>,
    checkpoints_written: Arc<Counter>,
    checkpoint_bytes: Arc<Histogram>,
    checkpoint_write_secs: Arc<Histogram>,
    checkpoints_restored: Arc<Counter>,
    checkpoints_corrupt_skipped: Arc<Counter>,
    runs_interrupted: Arc<Counter>,
    runs_resumed: Arc<Counter>,
    watchdog_fired: Arc<Counter>,
    hedges_issued: Arc<Counter>,
    hedges_won: Arc<Counter>,
    hedges_wasted: Arc<Counter>,
    breaker_transitions: Arc<Counter>,
    evals_shed: Arc<Counter>,
    children_spawned: Arc<Counter>,
    children_killed: Arc<Counter>,
    children_respawned: Arc<Counter>,
    child_protocol_errors: Arc<Counter>,
    jobs_queued: Arc<Counter>,
    jobs_started: Arc<Counter>,
    jobs_finished: Arc<Counter>,
    jobs_cancelled: Arc<Counter>,
    jobs_rejected: Arc<Counter>,
    jobs_adopted: Arc<Counter>,
    durable_write_failures: Arc<Counter>,
    conns_shed: Arc<Counter>,
    conn_stalls: Arc<Counter>,
    accept_backoffs: Arc<Counter>,
    dedupe_hits: Arc<Counter>,
    best_value: Arc<Gauge>,
    per_param: Mutex<Vec<Arc<Counter>>>,
}

impl std::fmt::Debug for MetricsSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsSink").field("snapshot", &self.registry.snapshot()).finish()
    }
}

impl MetricsSink {
    /// Creates a sink feeding `registry`.
    #[must_use]
    pub fn new(registry: Arc<MetricsRegistry>) -> Self {
        let hint_kinds =
            HintKind::ALL.map(|k| registry.counter(&format!("hint_applied_{}", k.as_str())));
        let failure_kinds =
            FailureKind::ALL.map(|k| registry.counter(&format!("eval_failures_{}", k.as_str())));
        MetricsSink {
            runs: registry.counter("runs_total"),
            generations: registry.counter("generations_total"),
            evals: registry.counter("evals_total"),
            evals_cached: registry.counter("evals_cached"),
            evals_infeasible: registry.counter("evals_infeasible"),
            tool_secs: registry.counter("eval_tool_secs"),
            mutations: registry.counter("mutations_total"),
            hint_kinds,
            crossovers: registry.counter("crossovers_total"),
            selections: registry.counter("selections_total"),
            pareto_updates: registry.counter("pareto_updates"),
            importance_decays: registry.counter("importance_decays"),
            eval_batches: registry.counter("eval_batches"),
            batch_sizes: registry
                .histogram("eval_batch_size", &[1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 500.0]),
            shard_contentions: registry.counter("cache_shard_contentions"),
            eval_failures: registry.counter("eval_failures_total"),
            failure_kinds,
            eval_retries: registry.counter("eval_retries_total"),
            retry_backoffs: registry.histogram(
                "retry_backoff_secs",
                &[1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0, 30.0, 120.0],
            ),
            evals_recovered: registry.counter("evals_recovered"),
            genomes_quarantined: registry.counter("genomes_quarantined"),
            checkpoints_written: registry.counter("checkpoints_written"),
            checkpoint_bytes: registry
                .histogram("checkpoint_bytes", &[1e3, 1e4, 1e5, 1e6, 1e7, 1e8]),
            checkpoint_write_secs: registry
                .histogram("checkpoint_write_secs", &[1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0]),
            checkpoints_restored: registry.counter("checkpoints_restored"),
            checkpoints_corrupt_skipped: registry.counter("checkpoints_corrupt_skipped"),
            runs_interrupted: registry.counter("runs_interrupted"),
            runs_resumed: registry.counter("runs_resumed"),
            watchdog_fired: registry.counter("watchdog_fired"),
            hedges_issued: registry.counter("hedges_issued"),
            hedges_won: registry.counter("hedges_won"),
            hedges_wasted: registry.counter("hedges_wasted"),
            breaker_transitions: registry.counter("breaker_transitions"),
            evals_shed: registry.counter("evals_shed"),
            children_spawned: registry.counter("children_spawned"),
            children_killed: registry.counter("children_killed"),
            children_respawned: registry.counter("children_respawned"),
            child_protocol_errors: registry.counter("child_protocol_errors"),
            jobs_queued: registry.counter("jobs_queued"),
            jobs_started: registry.counter("jobs_started"),
            jobs_finished: registry.counter("jobs_finished"),
            jobs_cancelled: registry.counter("jobs_cancelled"),
            jobs_rejected: registry.counter("jobs_rejected"),
            jobs_adopted: registry.counter("jobs_adopted"),
            durable_write_failures: registry.counter("durable_write_failures"),
            conns_shed: registry.counter("conns_shed"),
            conn_stalls: registry.counter("conn_stalls"),
            accept_backoffs: registry.counter("accept_backoffs"),
            dedupe_hits: registry.counter("dedupe_hits"),
            best_value: registry.gauge("best_value"),
            per_param: Mutex::new(Vec::new()),
            registry,
        }
    }

    /// The registry this sink feeds.
    #[must_use]
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }
}

impl SearchObserver for MetricsSink {
    fn on_event(&self, event: &SearchEvent) {
        match event {
            SearchEvent::RunStart { params, .. } => {
                self.runs.inc();
                *self.per_param.lock().expect("metrics sink poisoned") = params
                    .iter()
                    .map(|p| self.registry.counter(&format!("mutations_param_{p}")))
                    .collect();
            }
            SearchEvent::GenerationStart { .. } => self.generations.inc(),
            SearchEvent::GenerationEnd { best_so_far, .. } => {
                if best_so_far.is_finite() {
                    self.best_value.set(*best_so_far);
                }
            }
            SearchEvent::EvalCompleted { cached, feasible, tool_secs } => {
                if *cached {
                    self.evals_cached.inc();
                } else if *feasible {
                    self.evals.inc();
                    self.tool_secs.add(*tool_secs);
                } else {
                    self.evals_infeasible.inc();
                }
            }
            SearchEvent::MutationHintApplied { param, hint_kind, .. } => {
                self.mutations.inc();
                let idx = HintKind::ALL.iter().position(|k| k == hint_kind).unwrap_or(0);
                self.hint_kinds[idx].inc();
                if let Some(c) =
                    self.per_param.lock().expect("metrics sink poisoned").get(*param as usize)
                {
                    c.inc();
                }
            }
            SearchEvent::EvalBatch { size, .. } => {
                self.eval_batches.inc();
                self.batch_sizes.record(*size as f64);
            }
            SearchEvent::CacheShardContended { .. } => self.shard_contentions.inc(),
            SearchEvent::EvalAttemptFailed { kind, .. } => {
                self.eval_failures.inc();
                let idx = FailureKind::ALL.iter().position(|k| k == kind).unwrap_or(0);
                self.failure_kinds[idx].inc();
            }
            SearchEvent::EvalRetried { backoff_nanos, .. } => {
                self.eval_retries.inc();
                self.retry_backoffs.record(*backoff_nanos as f64 / NANO);
            }
            SearchEvent::EvalRecovered { .. } => self.evals_recovered.inc(),
            SearchEvent::GenomeQuarantined { .. } => self.genomes_quarantined.inc(),
            SearchEvent::ImportanceDecayed { .. } => self.importance_decays.inc(),
            SearchEvent::CrossoverApplied { .. } => self.crossovers.inc(),
            SearchEvent::SelectionInvoked { .. } => self.selections.inc(),
            SearchEvent::ParetoUpdated { .. } => self.pareto_updates.inc(),
            SearchEvent::SpanEnd { name, nanos } => {
                self.registry
                    .histogram(
                        &format!("span_{name}_secs"),
                        &[1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0, 100.0],
                    )
                    .record(*nanos as f64 / NANO);
            }
            SearchEvent::RunEnd { .. } => {}
            SearchEvent::CheckpointWritten { bytes, write_nanos, .. } => {
                self.checkpoints_written.inc();
                self.checkpoint_bytes.record(*bytes as f64);
                self.checkpoint_write_secs.record(*write_nanos as f64 / NANO);
            }
            SearchEvent::CheckpointRestored { .. } => self.checkpoints_restored.inc(),
            SearchEvent::CheckpointCorruptSkipped { .. } => self.checkpoints_corrupt_skipped.inc(),
            SearchEvent::RunInterrupted { .. } => self.runs_interrupted.inc(),
            SearchEvent::RunResumed { .. } => self.runs_resumed.inc(),
            SearchEvent::WatchdogFired { .. } => self.watchdog_fired.inc(),
            SearchEvent::HedgeIssued { .. } => self.hedges_issued.inc(),
            SearchEvent::HedgeResolved { won } => {
                if *won {
                    self.hedges_won.inc();
                } else {
                    self.hedges_wasted.inc();
                }
            }
            SearchEvent::BreakerTransition { .. } => self.breaker_transitions.inc(),
            SearchEvent::EvalShed => self.evals_shed.inc(),
            SearchEvent::ChildSpawned { .. } => self.children_spawned.inc(),
            SearchEvent::ChildKilled { .. } => self.children_killed.inc(),
            SearchEvent::ChildRespawned { .. } => self.children_respawned.inc(),
            SearchEvent::ChildProtocolError { .. } => self.child_protocol_errors.inc(),
            SearchEvent::JobQueued { .. } => self.jobs_queued.inc(),
            SearchEvent::JobStarted { .. } => self.jobs_started.inc(),
            SearchEvent::JobFinished { .. } => self.jobs_finished.inc(),
            SearchEvent::JobCancelled { .. } => self.jobs_cancelled.inc(),
            SearchEvent::JobRejected { .. } => self.jobs_rejected.inc(),
            SearchEvent::JobAdopted { .. } => self.jobs_adopted.inc(),
            SearchEvent::DurableWriteFailed { .. } => self.durable_write_failures.inc(),
            SearchEvent::ConnShed { .. } => self.conns_shed.inc(),
            SearchEvent::ConnStalled { .. } => self.conn_stalls.inc(),
            SearchEvent::AcceptBackoff { .. } => self.accept_backoffs.inc(),
            SearchEvent::DuplicateSubmit { .. } => self.dedupe_hits.inc(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        assert_eq!(g.get(), 0.0);
        g.set(-2.5);
        assert_eq!(g.get(), -2.5);
    }

    #[test]
    fn histogram_buckets_observations() {
        let h = Histogram::new(&[1.0, 10.0]);
        for v in [0.5, 0.9, 5.0, 100.0] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.buckets, vec![2, 1, 1]);
        assert_eq!(s.count, 4);
        assert!((s.sum - 106.4).abs() < 1e-6, "sum {}", s.sum);
        assert!(crate::json::is_valid_json(&s.to_json()));
    }

    #[test]
    fn histogram_edge_values_land_in_lower_bucket() {
        let h = Histogram::new(&[1.0, 2.0]);
        h.record(1.0);
        h.record(2.0);
        assert_eq!(h.snapshot().buckets, vec![1, 1, 0]);
    }

    #[test]
    fn exponential_layout_builds_ascending_edges() {
        let h = Histogram::exponential(1.0, 10.0, 3);
        assert_eq!(h.snapshot().bounds, vec![1.0, 10.0, 100.0]);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn unordered_bounds_panic() {
        let _ = Histogram::new(&[2.0, 1.0]);
    }

    #[test]
    fn registry_reuses_instruments_by_name() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.inc();
        b.inc();
        assert_eq!(reg.counter("x").get(), 2);
        let snap = reg.snapshot();
        assert_eq!(snap.counters["x"], 2);
        assert!(crate::json::is_valid_json(&snap.to_json()));
    }

    #[test]
    fn counters_are_safe_under_concurrency() {
        let reg = Arc::new(MetricsRegistry::new());
        let c = reg.counter("hits");
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.get(), 8000);
    }

    #[test]
    fn metrics_sink_folds_events_into_counters() {
        let reg = Arc::new(MetricsRegistry::new());
        let sink = MetricsSink::new(Arc::clone(&reg));
        sink.on_event(&SearchEvent::RunStart {
            strategy: "s".into(),
            seed: 0,
            params: vec!["depth".into(), "width".into()],
            population: 10,
            generations: 2,
        });
        sink.on_event(&SearchEvent::EvalCompleted { cached: false, feasible: true, tool_secs: 60 });
        sink.on_event(&SearchEvent::EvalCompleted { cached: true, feasible: true, tool_secs: 0 });
        sink.on_event(&SearchEvent::EvalCompleted { cached: false, feasible: false, tool_secs: 0 });
        sink.on_event(&SearchEvent::MutationHintApplied {
            generation: 0,
            param: 1,
            hint_kind: HintKind::Bias,
            accepted: true,
        });
        sink.on_event(&SearchEvent::SelectionInvoked { generation: 0, kind: "t".into() });
        sink.on_event(&SearchEvent::EvalBatch { generation: 0, size: 7, workers: 4 });
        sink.on_event(&SearchEvent::CacheShardContended { shard: 2 });
        sink.on_event(&SearchEvent::CacheShardContended { shard: 2 });
        sink.on_event(&SearchEvent::EvalAttemptFailed {
            kind: FailureKind::Transient,
            attempt: 1,
            retryable: true,
        });
        sink.on_event(&SearchEvent::EvalRetried { attempt: 1, backoff_nanos: 2_000_000 });
        sink.on_event(&SearchEvent::EvalRecovered { failed_attempts: 1 });
        sink.on_event(&SearchEvent::EvalAttemptFailed {
            kind: FailureKind::Corrupted,
            attempt: 1,
            retryable: false,
        });
        sink.on_event(&SearchEvent::GenomeQuarantined {
            attempts: 1,
            kind: FailureKind::Corrupted,
        });
        sink.on_event(&SearchEvent::SpanEnd { name: "scoring", nanos: 1_000 });
        sink.on_event(&SearchEvent::GenerationEnd {
            generation: 0,
            best: 2.0,
            mean: 2.5,
            best_so_far: 2.0,
            distinct_evals: 1,
            cache_hits: 1,
            infeasible: 1,
        });
        let snap = reg.snapshot();
        assert_eq!(snap.counters["evals_total"], 1);
        assert_eq!(snap.counters["evals_cached"], 1);
        assert_eq!(snap.counters["evals_infeasible"], 1);
        assert_eq!(snap.counters["eval_tool_secs"], 60);
        assert_eq!(snap.counters["mutations_total"], 1);
        assert_eq!(snap.counters["hint_applied_bias"], 1);
        assert_eq!(snap.counters["mutations_param_width"], 1);
        assert_eq!(snap.counters["selections_total"], 1);
        assert_eq!(snap.gauges["best_value"], 2.0);
        assert_eq!(snap.histograms["span_scoring_secs"].count, 1);
        assert_eq!(snap.counters["eval_batches"], 1);
        assert_eq!(snap.counters["cache_shard_contentions"], 2);
        assert_eq!(snap.histograms["eval_batch_size"].count, 1);
        assert!((snap.histograms["eval_batch_size"].sum - 7.0).abs() < 1e-9);
        assert_eq!(snap.counters["eval_failures_total"], 2);
        assert_eq!(snap.counters["eval_failures_transient"], 1);
        assert_eq!(snap.counters["eval_failures_corrupted"], 1);
        assert_eq!(snap.counters["eval_retries_total"], 1);
        assert_eq!(snap.counters["evals_recovered"], 1);
        assert_eq!(snap.counters["genomes_quarantined"], 1);
        assert_eq!(snap.histograms["retry_backoff_secs"].count, 1);
        assert!((snap.histograms["retry_backoff_secs"].sum - 0.002).abs() < 1e-9);
    }

    #[test]
    fn metrics_sink_folds_durability_events() {
        let reg = Arc::new(MetricsRegistry::new());
        let sink = MetricsSink::new(Arc::clone(&reg));
        sink.on_event(&SearchEvent::CheckpointWritten {
            generation: 1,
            bytes: 2048,
            write_nanos: 3_000_000,
            path: "ckpt/ckpt-00000001.nckpt".into(),
        });
        sink.on_event(&SearchEvent::CheckpointWritten {
            generation: 2,
            bytes: 4096,
            write_nanos: 1_000_000,
            path: "ckpt/ckpt-00000002.nckpt".into(),
        });
        sink.on_event(&SearchEvent::CheckpointCorruptSkipped {
            path: "ckpt/ckpt-00000002.nckpt".into(),
            reason: "crc mismatch".into(),
        });
        sink.on_event(&SearchEvent::CheckpointRestored {
            generation: 1,
            path: "ckpt/ckpt-00000001.nckpt".into(),
        });
        sink.on_event(&SearchEvent::RunInterrupted { generation: 2, reason: "cancelled".into() });
        sink.on_event(&SearchEvent::RunResumed {
            strategy: "baseline".into(),
            seed: 7,
            generation: 2,
        });
        let snap = reg.snapshot();
        assert_eq!(snap.counters["checkpoints_written"], 2);
        assert_eq!(snap.counters["checkpoints_restored"], 1);
        assert_eq!(snap.counters["checkpoints_corrupt_skipped"], 1);
        assert_eq!(snap.counters["runs_interrupted"], 1);
        assert_eq!(snap.counters["runs_resumed"], 1);
        assert_eq!(snap.histograms["checkpoint_bytes"].count, 2);
        assert!((snap.histograms["checkpoint_bytes"].sum - 6144.0).abs() < 1e-6);
        assert_eq!(snap.histograms["checkpoint_write_secs"].count, 2);
        assert!((snap.histograms["checkpoint_write_secs"].sum - 0.004).abs() < 1e-9);
    }

    #[test]
    fn metrics_sink_folds_supervision_events() {
        let reg = Arc::new(MetricsRegistry::new());
        let sink = MetricsSink::new(Arc::clone(&reg));
        sink.on_event(&SearchEvent::WatchdogFired {
            attempt: 1,
            limit_ms: 500,
            late_result_discarded: false,
        });
        sink.on_event(&SearchEvent::HedgeIssued { attempt: 1 });
        sink.on_event(&SearchEvent::HedgeResolved { won: true });
        sink.on_event(&SearchEvent::HedgeIssued { attempt: 2 });
        sink.on_event(&SearchEvent::HedgeResolved { won: false });
        sink.on_event(&SearchEvent::BreakerTransition {
            from: crate::event::HealthState::Closed,
            to: crate::event::HealthState::Open,
        });
        sink.on_event(&SearchEvent::EvalShed);
        sink.on_event(&SearchEvent::EvalShed);
        let snap = reg.snapshot();
        assert_eq!(snap.counters["watchdog_fired"], 1);
        assert_eq!(snap.counters["hedges_issued"], 2);
        assert_eq!(snap.counters["hedges_won"], 1);
        assert_eq!(snap.counters["hedges_wasted"], 1);
        assert_eq!(snap.counters["breaker_transitions"], 1);
        assert_eq!(snap.counters["evals_shed"], 2);
    }
}
