//! Time-attribution profiling: phase spans, per-worker recorders, and
//! Chrome/Perfetto trace export.
//!
//! The profiling subsystem answers "where did the wall-clock go?" without
//! perturbing the search: a [`SpanRecorder`] buffers [`SpanRecord`]s in a
//! thread-local `Vec` (no locks, no allocation once the buffer is warm)
//! and flushes them into the shared [`Tracer`] only at deterministic
//! barriers — the generation merge point for the engine's merge thread,
//! worker teardown for batch workers. Recorders never touch the RNG or
//! the search-event stream, so a traced run is bit-for-bit identical to
//! an untraced one.
//!
//! Three consumers sit on top:
//!
//! * [`Tracer::to_chrome_json`] emits Chrome/Perfetto trace-event JSON
//!   (one track per worker plus the merge thread) for `ui.perfetto.dev`.
//! * [`Tracer::phase_stats`] aggregates per-phase total/self time for the
//!   `phases` block of a schema-6 `RunReport`.
//! * [`Tracer::wire_bytes`] / [`Tracer::from_wire_bytes`] round-trip the
//!   raw records through the versioned wire codec for tooling.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Instant;

use crate::json::JsonObj;
use crate::wire::{WireError, WireReader, WireWriter};

/// The instrumented phases of a search run.
///
/// Ordering is the canonical reporting order: the whole-run root first,
/// then the merge-thread phases roughly in per-generation execution
/// order, then worker- and cache-side phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// Whole-run root span on the merge track; its self time is the
    /// wall-clock not attributed to any finer phase.
    Run,
    /// Seeding the initial population (generation 0 evaluations).
    InitPopulation,
    /// Scoring one generation end to end (lookups, dispatch, merge).
    Scoring,
    /// One selection-operator invocation.
    Selection,
    /// One crossover-operator invocation.
    Crossover,
    /// One mutation-operator invocation.
    Mutation,
    /// Evaluation-cache lookups (serial per-genome, batched per-pass).
    CacheLookup,
    /// Evaluating one cache miss (worker tracks on batched runs).
    MissEval,
    /// Handing a generation's miss chunks to the persistent worker pool
    /// (publish + unpark; the wait is [`Phase::BatchWait`]).
    BatchDispatch,
    /// Merge thread blocked waiting for pool workers to finish a batch.
    BatchWait,
    /// Folding worker results back into the cache and event stream.
    BatchMerge,
    /// Writing one durable checkpoint.
    CheckpointIo,
    /// Waiting on sharded-cache locks (aggregate-only; no span records).
    ShardLockWait,
}

impl Phase {
    /// Every phase, in canonical reporting order.
    pub const ALL: [Phase; 13] = [
        Phase::Run,
        Phase::InitPopulation,
        Phase::Scoring,
        Phase::Selection,
        Phase::Crossover,
        Phase::Mutation,
        Phase::CacheLookup,
        Phase::MissEval,
        Phase::BatchDispatch,
        Phase::BatchWait,
        Phase::BatchMerge,
        Phase::CheckpointIo,
        Phase::ShardLockWait,
    ];

    /// Stable snake_case label used in trace JSON, report JSON, and the
    /// wire encoding.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Phase::Run => "run",
            Phase::InitPopulation => "init_population",
            Phase::Scoring => "scoring",
            Phase::Selection => "selection",
            Phase::Crossover => "crossover",
            Phase::Mutation => "mutation",
            Phase::CacheLookup => "cache_lookup",
            Phase::MissEval => "miss_eval",
            Phase::BatchDispatch => "batch_dispatch",
            Phase::BatchWait => "batch_wait",
            Phase::BatchMerge => "batch_merge",
            Phase::CheckpointIo => "checkpoint_io",
            Phase::ShardLockWait => "shard_lock_wait",
        }
    }

    /// Inverse of [`Phase::label`].
    #[must_use]
    pub fn from_label(label: &str) -> Option<Phase> {
        Phase::ALL.iter().copied().find(|p| p.label() == label)
    }
}

/// One closed span: `phase` ran on `track` for `dur_nanos`, starting
/// `start_nanos` after the tracer's epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Track index (0 = first registered track, usually the merge thread).
    pub track: u32,
    /// What ran.
    pub phase: Phase,
    /// Start offset from the tracer epoch, in nanoseconds.
    pub start_nanos: u64,
    /// Span duration in nanoseconds.
    pub dur_nanos: u64,
}

/// Aggregated timing for one phase across every track.
///
/// `total_nanos` counts each span's full duration; `self_nanos` subtracts
/// the time spent in spans nested inside it on the same track, so the
/// self times of a track's phases telescope to that track's root span.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseStat {
    /// Number of spans (or aggregate samples) observed.
    pub count: u64,
    /// Sum of span durations in nanoseconds.
    pub total_nanos: u64,
    /// Sum of span durations minus same-track nested children.
    pub self_nanos: u64,
    /// Longest single span in nanoseconds.
    pub max_nanos: u64,
}

/// Central collector for span records and phase aggregates.
///
/// A `Tracer` is shared by reference across the engine and its workers;
/// each participant records through its own [`SpanRecorder`] and the
/// tracer's mutex is touched only on flush.
#[derive(Debug)]
pub struct Tracer {
    epoch: Instant,
    state: Mutex<TraceState>,
}

#[derive(Debug, Default)]
struct TraceState {
    tracks: Vec<String>,
    spans: Vec<SpanRecord>,
    /// Aggregate-only phases: label -> (count, total_nanos, max_nanos).
    aggregates: BTreeMap<Phase, (u64, u64, u64)>,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new()
    }
}

/// Wire-format version of [`Tracer::wire_bytes`].
const TRACE_WIRE_VERSION: u8 = 1;

/// Initial capacity of a recorder's local buffer; sized so a generation's
/// worth of spans never reallocates on the hot path.
const RECORDER_BUF_CAPACITY: usize = 128;

impl Tracer {
    /// Creates an empty tracer whose epoch is "now".
    #[must_use]
    pub fn new() -> Self {
        Tracer { epoch: Instant::now(), state: Mutex::new(TraceState::default()) }
    }

    /// Nanoseconds elapsed since the tracer epoch.
    fn now_nanos(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Opens a recorder on the track named `name`, registering the track
    /// on first use (repeated names share one track).
    #[must_use]
    pub fn recorder(&self, name: &str) -> SpanRecorder<'_> {
        let mut state = self.state.lock().expect("tracer lock poisoned");
        let track = match state.tracks.iter().position(|t| t == name) {
            Some(i) => i,
            None => {
                state.tracks.push(name.to_owned());
                state.tracks.len() - 1
            }
        };
        drop(state);
        let track = u32::try_from(track).expect("track count exceeds u32");
        SpanRecorder { tracer: self, track, buf: Vec::with_capacity(RECORDER_BUF_CAPACITY) }
    }

    /// Folds an externally measured aggregate into `phase` — used for
    /// costs counted off-thread without spans, like sharded-cache lock
    /// waits.
    pub fn add_aggregate(&self, phase: Phase, count: u64, total_nanos: u64, max_nanos: u64) {
        if count == 0 && total_nanos == 0 {
            return;
        }
        let mut state = self.state.lock().expect("tracer lock poisoned");
        let slot = state.aggregates.entry(phase).or_insert((0, 0, 0));
        slot.0 += count;
        slot.1 += total_nanos;
        slot.2 = slot.2.max(max_nanos);
    }

    /// Registered track names, in track-index order.
    #[must_use]
    pub fn tracks(&self) -> Vec<String> {
        self.state.lock().expect("tracer lock poisoned").tracks.clone()
    }

    /// Every flushed span record (flush order; not sorted).
    #[must_use]
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.state.lock().expect("tracer lock poisoned").spans.clone()
    }

    /// Per-phase aggregated stats across all tracks.
    ///
    /// Self time is computed per track by interval nesting: spans are
    /// sorted by start (ties broken longest-first) and each span's
    /// duration is charged against the innermost enclosing span on the
    /// same track. Aggregate-only phases contribute their totals as pure
    /// self time.
    #[must_use]
    pub fn phase_stats(&self) -> BTreeMap<Phase, PhaseStat> {
        let state = self.state.lock().expect("tracer lock poisoned");
        let mut stats: BTreeMap<Phase, PhaseStat> = BTreeMap::new();
        let mut by_track: BTreeMap<u32, Vec<SpanRecord>> = BTreeMap::new();
        for s in &state.spans {
            let entry = stats.entry(s.phase).or_default();
            entry.count += 1;
            entry.total_nanos += s.dur_nanos;
            entry.max_nanos = entry.max_nanos.max(s.dur_nanos);
            by_track.entry(s.track).or_default().push(*s);
        }
        // Innermost-enclosing attribution per track.
        struct Open {
            end: u64,
            phase: Phase,
            dur: u64,
            children: u64,
        }
        for spans in by_track.values_mut() {
            spans.sort_by(|a, b| {
                a.start_nanos.cmp(&b.start_nanos).then(b.dur_nanos.cmp(&a.dur_nanos))
            });
            let mut open: Vec<Open> = Vec::new();
            let settle = |stats: &mut BTreeMap<Phase, PhaseStat>, o: Open| {
                let entry = stats.entry(o.phase).or_default();
                entry.self_nanos += o.dur.saturating_sub(o.children);
            };
            for s in spans.iter() {
                while open.last().is_some_and(|o| o.end <= s.start_nanos) {
                    let o = open.pop().expect("checked non-empty");
                    settle(&mut stats, o);
                }
                if let Some(parent) = open.last_mut() {
                    parent.children += s.dur_nanos;
                }
                open.push(Open {
                    end: s.start_nanos.saturating_add(s.dur_nanos),
                    phase: s.phase,
                    dur: s.dur_nanos,
                    children: 0,
                });
            }
            while let Some(o) = open.pop() {
                settle(&mut stats, o);
            }
        }
        for (&phase, &(count, total, max)) in &state.aggregates {
            let entry = stats.entry(phase).or_default();
            entry.count += count;
            entry.total_nanos += total;
            entry.self_nanos += total;
            entry.max_nanos = entry.max_nanos.max(max);
        }
        stats
    }

    /// Serializes every track and span as Chrome trace-event JSON
    /// (loadable by `ui.perfetto.dev` and `chrome://tracing`).
    ///
    /// One metadata event names each track; spans become complete (`"X"`)
    /// events with microsecond timestamps, sorted by track then start so
    /// the output is a pure function of the recorded span set. Aggregate
    /// phases ride in a top-level `phaseAggregates` object that trace
    /// viewers ignore.
    #[must_use]
    pub fn to_chrome_json(&self) -> String {
        let state = self.state.lock().expect("tracer lock poisoned");
        let mut events: Vec<String> = Vec::with_capacity(state.tracks.len() + state.spans.len());
        for (tid, name) in state.tracks.iter().enumerate() {
            let mut args = JsonObj::new();
            args.str("name", name);
            let mut m = JsonObj::new();
            m.str("ph", "M")
                .u64("pid", 1)
                .u64("tid", tid as u64)
                .str("name", "thread_name")
                .raw("args", &args.finish());
            events.push(m.finish());
        }
        let mut spans = state.spans.clone();
        spans.sort_by_key(|s| (s.track, s.start_nanos, std::cmp::Reverse(s.dur_nanos)));
        for s in &spans {
            let mut x = JsonObj::new();
            x.str("ph", "X")
                .u64("pid", 1)
                .u64("tid", u64::from(s.track))
                .str("name", s.phase.label())
                .str("cat", "nautilus")
                .f64("ts", s.start_nanos as f64 / 1000.0)
                .f64("dur", s.dur_nanos as f64 / 1000.0);
            events.push(x.finish());
        }
        let mut aggs = JsonObj::new();
        for (phase, (count, total, max)) in &state.aggregates {
            let mut a = JsonObj::new();
            a.u64("count", *count).u64("total_nanos", *total).u64("max_nanos", *max);
            aggs.raw(phase.label(), &a.finish());
        }
        let mut root = JsonObj::new();
        root.arr_raw("traceEvents", &events)
            .str("displayTimeUnit", "ms")
            .raw("phaseAggregates", &aggs.finish());
        root.finish()
    }

    /// Serializes tracks, spans, and aggregates through the versioned
    /// wire codec (flush order preserved).
    #[must_use]
    pub fn wire_bytes(&self) -> Vec<u8> {
        let state = self.state.lock().expect("tracer lock poisoned");
        let mut w = WireWriter::new();
        w.u8(TRACE_WIRE_VERSION);
        w.usize(state.tracks.len());
        for t in &state.tracks {
            w.str(t);
        }
        w.usize(state.spans.len());
        for s in &state.spans {
            w.u32(s.track);
            w.str(s.phase.label());
            w.u64(s.start_nanos);
            w.u64(s.dur_nanos);
        }
        w.usize(state.aggregates.len());
        for (phase, (count, total, max)) in &state.aggregates {
            w.str(phase.label());
            w.u64(*count);
            w.u64(*total);
            w.u64(*max);
        }
        w.into_bytes()
    }

    /// Decodes a [`Tracer::wire_bytes`] blob, validating the version,
    /// every phase label, and every track reference. The returned
    /// tracer's epoch is fresh; its records keep their original offsets.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on truncation, trailing bytes, an unknown
    /// wire version, an unknown phase label, or a span referencing an
    /// unregistered track.
    pub fn from_wire_bytes(bytes: &[u8]) -> Result<Tracer, WireError> {
        let mut r = WireReader::new(bytes);
        let version = r.u8()?;
        if version != TRACE_WIRE_VERSION {
            return Err(WireError(format!("unknown trace wire version {version}")));
        }
        let num_tracks = r.len_prefix()?;
        let mut tracks = Vec::new();
        for _ in 0..num_tracks {
            tracks.push(r.str()?);
        }
        let num_spans = r.len_prefix()?;
        let mut spans = Vec::new();
        for _ in 0..num_spans {
            let track = r.u32()?;
            let label = r.str()?;
            let phase = Phase::from_label(&label)
                .ok_or_else(|| WireError(format!("unknown phase label `{label}`")))?;
            if track as usize >= tracks.len() {
                return Err(WireError(format!("span references unknown track {track}")));
            }
            let start_nanos = r.u64()?;
            let dur_nanos = r.u64()?;
            spans.push(SpanRecord { track, phase, start_nanos, dur_nanos });
        }
        let num_aggs = r.len_prefix()?;
        let mut aggregates = BTreeMap::new();
        for _ in 0..num_aggs {
            let label = r.str()?;
            let phase = Phase::from_label(&label)
                .ok_or_else(|| WireError(format!("unknown phase label `{label}`")))?;
            let count = r.u64()?;
            let total = r.u64()?;
            let max = r.u64()?;
            aggregates.insert(phase, (count, total, max));
        }
        r.finish()?;
        Ok(Tracer {
            epoch: Instant::now(),
            state: Mutex::new(TraceState { tracks, spans, aggregates }),
        })
    }
}

/// An in-flight span's start timestamp (nanoseconds past the epoch).
#[derive(Debug, Clone, Copy)]
pub struct SpanStart {
    nanos: u64,
}

/// A per-thread span buffer bound to one [`Tracer`] track.
///
/// `begin`/`end` only read the clock and push into a preallocated local
/// `Vec`; the tracer's lock is taken solely by [`SpanRecorder::flush`]
/// (also run on drop). Keep one recorder per thread and flush at
/// deterministic barriers.
#[derive(Debug)]
pub struct SpanRecorder<'t> {
    tracer: &'t Tracer,
    track: u32,
    buf: Vec<SpanRecord>,
}

impl SpanRecorder<'_> {
    /// Marks the start of a span.
    #[must_use]
    pub fn begin(&self) -> SpanStart {
        SpanStart { nanos: self.tracer.now_nanos() }
    }

    /// Closes a span opened with [`SpanRecorder::begin`] as `phase`.
    pub fn end(&mut self, phase: Phase, start: SpanStart) {
        let now = self.tracer.now_nanos();
        self.buf.push(SpanRecord {
            track: self.track,
            phase,
            start_nanos: start.nanos,
            dur_nanos: now.saturating_sub(start.nanos),
        });
    }

    /// Runs `f` inside a `phase` span.
    pub fn time<R>(&mut self, phase: Phase, f: impl FnOnce() -> R) -> R {
        let start = self.begin();
        let out = f();
        self.end(phase, start);
        out
    }

    /// Drains the local buffer into the shared tracer.
    pub fn flush(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        let mut state = self.tracer.state.lock().expect("tracer lock poisoned");
        state.spans.append(&mut self.buf);
    }
}

impl Drop for SpanRecorder<'_> {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Writes a [`Tracer`]'s Chrome trace JSON to a file.
#[derive(Debug, Clone)]
pub struct TraceSink {
    path: PathBuf,
}

impl TraceSink {
    /// A sink that will write `path` (parent directories must exist).
    #[must_use]
    pub fn new(path: impl Into<PathBuf>) -> TraceSink {
        TraceSink { path: path.into() }
    }

    /// The destination path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Serializes `tracer` and writes the trace file, returning the byte
    /// count written.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from the write.
    pub fn write(&self, tracer: &Tracer) -> std::io::Result<u64> {
        let json = tracer.to_chrome_json();
        std::fs::write(&self.path, json.as_bytes())?;
        Ok(json.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::is_valid_json;

    fn span(track: u32, phase: Phase, start: u64, dur: u64) -> SpanRecord {
        SpanRecord { track, phase, start_nanos: start, dur_nanos: dur }
    }

    /// A tracer with fully controlled contents, for golden tests.
    fn synthetic(
        tracks: &[&str],
        spans: &[SpanRecord],
        aggregates: &[(Phase, u64, u64, u64)],
    ) -> Tracer {
        let tracer = Tracer::new();
        {
            let mut state = tracer.state.lock().unwrap();
            state.tracks = tracks.iter().map(|t| (*t).to_owned()).collect();
            state.spans = spans.to_vec();
            for &(phase, count, total, max) in aggregates {
                state.aggregates.insert(phase, (count, total, max));
            }
        }
        tracer
    }

    #[test]
    fn phase_labels_round_trip() {
        for phase in Phase::ALL {
            assert_eq!(Phase::from_label(phase.label()), Some(phase));
        }
        assert_eq!(Phase::from_label("nope"), None);
    }

    #[test]
    fn recorder_buffers_locally_and_flushes_to_the_tracer() {
        let tracer = Tracer::new();
        let mut rec = tracer.recorder("merge");
        let out = rec.time(Phase::Scoring, || 42);
        assert_eq!(out, 42);
        assert!(tracer.spans().is_empty(), "span must stay local until flush");
        rec.flush();
        let spans = tracer.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].phase, Phase::Scoring);
        assert_eq!(spans[0].track, 0);
        let stats = tracer.phase_stats();
        assert_eq!(stats[&Phase::Scoring].count, 1);
    }

    #[test]
    fn dropping_a_recorder_flushes_it() {
        let tracer = Tracer::new();
        {
            let mut rec = tracer.recorder("worker-0");
            rec.time(Phase::MissEval, || ());
        }
        assert_eq!(tracer.spans().len(), 1);
        assert_eq!(tracer.tracks(), vec!["worker-0".to_owned()]);
    }

    #[test]
    fn repeated_track_names_share_one_track() {
        let tracer = Tracer::new();
        {
            let mut a = tracer.recorder("worker-0");
            a.time(Phase::MissEval, || ());
        }
        {
            let mut b = tracer.recorder("worker-0");
            b.time(Phase::MissEval, || ());
        }
        assert_eq!(tracer.tracks().len(), 1);
        let spans = tracer.spans();
        assert_eq!(spans.len(), 2);
        assert!(spans.iter().all(|s| s.track == 0));
    }

    #[test]
    fn self_time_subtracts_nested_children_per_track() {
        let tracer = synthetic(
            &["merge"],
            &[
                span(0, Phase::Run, 0, 1000),
                span(0, Phase::Scoring, 100, 500),
                span(0, Phase::CacheLookup, 150, 100),
                span(0, Phase::MissEval, 300, 200),
                span(0, Phase::Selection, 700, 100),
            ],
            &[],
        );
        let stats = tracer.phase_stats();
        assert_eq!(stats[&Phase::Run].total_nanos, 1000);
        assert_eq!(stats[&Phase::Run].self_nanos, 400); // 1000 - 500 - 100
        assert_eq!(stats[&Phase::Scoring].self_nanos, 200); // 500 - 100 - 200
        assert_eq!(stats[&Phase::CacheLookup].self_nanos, 100);
        assert_eq!(stats[&Phase::MissEval].self_nanos, 200);
        assert_eq!(stats[&Phase::Selection].self_nanos, 100);
        // Self times telescope back to the root total.
        let sum: u64 = stats.values().map(|s| s.self_nanos).sum();
        assert_eq!(sum, stats[&Phase::Run].total_nanos);
    }

    #[test]
    fn tracks_attribute_independently() {
        let tracer = synthetic(
            &["merge", "worker-0"],
            &[
                span(0, Phase::Run, 0, 1000),
                // Same window on another track must not nest under Run.
                span(1, Phase::MissEval, 100, 800),
            ],
            &[],
        );
        let stats = tracer.phase_stats();
        assert_eq!(stats[&Phase::Run].self_nanos, 1000);
        assert_eq!(stats[&Phase::MissEval].self_nanos, 800);
    }

    #[test]
    fn aggregates_fold_into_phase_stats_as_self_time() {
        let tracer = synthetic(&[], &[], &[(Phase::ShardLockWait, 7, 3500, 900)]);
        let stats = tracer.phase_stats();
        let s = stats[&Phase::ShardLockWait];
        assert_eq!(s.count, 7);
        assert_eq!(s.total_nanos, 3500);
        assert_eq!(s.self_nanos, 3500);
        assert_eq!(s.max_nanos, 900);
    }

    #[test]
    fn add_aggregate_accumulates_and_skips_empty_samples() {
        let tracer = Tracer::new();
        tracer.add_aggregate(Phase::ShardLockWait, 0, 0, 0);
        assert!(tracer.phase_stats().is_empty());
        tracer.add_aggregate(Phase::ShardLockWait, 2, 100, 80);
        tracer.add_aggregate(Phase::ShardLockWait, 1, 50, 50);
        let s = tracer.phase_stats()[&Phase::ShardLockWait];
        assert_eq!((s.count, s.total_nanos, s.max_nanos), (3, 150, 80));
    }

    #[test]
    fn chrome_json_matches_the_golden_output() {
        let tracer = synthetic(
            &["merge", "worker-0"],
            &[
                // Deliberately out of order: export must sort by track/start.
                span(1, Phase::MissEval, 250, 1500),
                span(0, Phase::Run, 0, 2000),
            ],
            &[(Phase::ShardLockWait, 2, 500, 300)],
        );
        let json = tracer.to_chrome_json();
        assert!(is_valid_json(&json), "invalid: {json}");
        let expected = concat!(
            r#"{"traceEvents":["#,
            r#"{"ph":"M","pid":1,"tid":0,"name":"thread_name","args":{"name":"merge"}},"#,
            r#"{"ph":"M","pid":1,"tid":1,"name":"thread_name","args":{"name":"worker-0"}},"#,
            r#"{"ph":"X","pid":1,"tid":0,"name":"run","cat":"nautilus","ts":0.0,"dur":2.0},"#,
            r#"{"ph":"X","pid":1,"tid":1,"name":"miss_eval","cat":"nautilus","ts":0.25,"dur":1.5}"#,
            r#"],"displayTimeUnit":"ms","#,
            r#""phaseAggregates":{"shard_lock_wait":{"count":2,"total_nanos":500,"max_nanos":300}}}"#,
        );
        assert_eq!(json, expected);
    }

    #[test]
    fn wire_round_trips_tracks_spans_and_aggregates() {
        let tracer = synthetic(
            &["merge", "worker-0", "worker-1"],
            &[
                span(0, Phase::Run, 0, 9000),
                span(1, Phase::MissEval, 10, 20),
                span(2, Phase::MissEval, 15, 25),
                span(0, Phase::CheckpointIo, 8000, 500),
            ],
            &[(Phase::ShardLockWait, 3, 123, 77)],
        );
        let bytes = tracer.wire_bytes();
        let back = Tracer::from_wire_bytes(&bytes).unwrap();
        assert_eq!(back.tracks(), tracer.tracks());
        assert_eq!(back.spans(), tracer.spans());
        assert_eq!(back.phase_stats(), tracer.phase_stats());
        assert_eq!(back.to_chrome_json(), tracer.to_chrome_json());
    }

    #[test]
    fn wire_rejects_corruption() {
        let tracer = synthetic(&["merge"], &[span(0, Phase::Run, 0, 10)], &[]);
        let bytes = tracer.wire_bytes();
        // Truncations at every length never panic and never succeed.
        for len in 0..bytes.len() {
            assert!(
                Tracer::from_wire_bytes(&bytes[..len]).is_err(),
                "truncation to {len} bytes was accepted"
            );
        }
        // Trailing garbage is rejected.
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(Tracer::from_wire_bytes(&padded).is_err());
        // An unknown version is rejected.
        let mut wrong = bytes;
        wrong[0] = 99;
        assert!(Tracer::from_wire_bytes(&wrong).is_err());
    }

    #[test]
    fn wire_rejects_unknown_labels_and_dangling_tracks() {
        // Unknown phase label.
        let mut w = WireWriter::new();
        w.u8(TRACE_WIRE_VERSION);
        w.usize(1);
        w.str("merge");
        w.usize(1);
        w.u32(0);
        w.str("warp_drive");
        w.u64(0);
        w.u64(1);
        w.usize(0);
        assert!(Tracer::from_wire_bytes(&w.into_bytes()).is_err());
        // Span referencing a track that was never registered.
        let mut w = WireWriter::new();
        w.u8(TRACE_WIRE_VERSION);
        w.usize(1);
        w.str("merge");
        w.usize(1);
        w.u32(5);
        w.str("run");
        w.u64(0);
        w.u64(1);
        w.usize(0);
        assert!(Tracer::from_wire_bytes(&w.into_bytes()).is_err());
    }

    #[test]
    fn trace_sink_writes_a_loadable_file() {
        let dir = std::env::temp_dir().join(format!("nautilus-span-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        let tracer = synthetic(&["merge"], &[span(0, Phase::Run, 0, 100)], &[]);
        let sink = TraceSink::new(&path);
        let bytes = sink.write(&tracer).unwrap();
        let text = std::fs::read_to_string(sink.path()).unwrap();
        assert_eq!(bytes as usize, text.len());
        assert!(is_valid_json(&text));
        assert!(text.contains("\"traceEvents\""));
        std::fs::remove_dir_all(&dir).ok();
    }
}
