//! Per-run report aggregation: a [`ReportBuilder`] observer folds the
//! event stream into a machine-readable [`RunReport`] summary.

use std::collections::BTreeMap;
use std::sync::Mutex;

use crate::event::{FailureKind, HealthState, HintKind, SearchEvent};
use crate::json::JsonObj;
use crate::observer::SearchObserver;
use crate::span::{Phase, PhaseStat};
use crate::wire::{WireError, WireReader, WireWriter};

/// Mutation counts broken down by [`HintKind`], plus how many actually
/// changed the gene.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HintTally {
    /// Counts indexed in [`HintKind::ALL`] order.
    pub counts: [u64; HintKind::ALL.len()],
    /// Mutations that changed the gene's value.
    pub accepted: u64,
}

impl HintTally {
    /// Count for one kind.
    #[must_use]
    pub fn count_of(&self, kind: HintKind) -> u64 {
        let idx = HintKind::ALL.iter().position(|k| *k == kind).unwrap_or(0);
        self.counts[idx]
    }

    /// Total mutation slots tallied.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Records one mutation slot.
    pub fn record(&mut self, kind: HintKind, accepted: bool) {
        let idx = HintKind::ALL.iter().position(|k| *k == kind).unwrap_or(0);
        self.counts[idx] += 1;
        if accepted {
            self.accepted += 1;
        }
    }

    /// Serializes as `{"uniform":n, ..., "accepted":n}`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut o = JsonObj::new();
        for (kind, n) in HintKind::ALL.iter().zip(self.counts.iter()) {
            o.u64(kind.as_str(), *n);
        }
        o.u64("accepted", self.accepted);
        o.finish()
    }
}

/// Evaluation-failure, retry and quarantine counts folded from the
/// fault-tolerance events.
///
/// The invariant `evals_failed() == retries_recovered + quarantined` holds
/// by construction: every evaluation that saw at least one failed attempt
/// either eventually succeeded (recovered) or was quarantined.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultTally {
    /// Failed attempts indexed in [`FailureKind::ALL`] order.
    pub failed_attempts: [u64; FailureKind::ALL.len()],
    /// Retry attempts scheduled ([`SearchEvent::EvalRetried`]).
    pub retries: u64,
    /// Evaluations that failed at least once and then succeeded.
    pub retries_recovered: u64,
    /// Evaluations abandoned after exhausting retries (or a non-retryable
    /// failure); their genomes carry penalized fitness.
    pub quarantined: u64,
}

impl FaultTally {
    /// Distinct evaluations that saw at least one failed attempt.
    #[must_use]
    pub fn evals_failed(&self) -> u64 {
        self.retries_recovered + self.quarantined
    }

    /// Failed attempts of one kind.
    #[must_use]
    pub fn failed_attempts_of(&self, kind: FailureKind) -> u64 {
        let idx = FailureKind::ALL.iter().position(|k| *k == kind).unwrap_or(0);
        self.failed_attempts[idx]
    }

    /// Total failed attempts across all kinds.
    #[must_use]
    pub fn total_failed_attempts(&self) -> u64 {
        self.failed_attempts.iter().sum()
    }

    /// Serializes as `{"evals_failed":n, ..., "failed_attempts":{...}}`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut by_kind = JsonObj::new();
        for (kind, n) in FailureKind::ALL.iter().zip(self.failed_attempts.iter()) {
            by_kind.u64(kind.as_str(), *n);
        }
        let mut o = JsonObj::new();
        o.u64("evals_failed", self.evals_failed())
            .u64("retries", self.retries)
            .u64("retries_recovered", self.retries_recovered)
            .u64("quarantined", self.quarantined)
            .raw("failed_attempts", &by_kind.finish());
        o.finish()
    }
}

/// Evaluation-lookup counts, split the same way [`SearchEvent::EvalCompleted`]
/// is flagged.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalTally {
    /// Distinct feasible evaluations (cache misses that produced metrics).
    pub feasible: u64,
    /// Cache hits.
    pub cached: u64,
    /// Distinct infeasible attempts.
    pub infeasible: u64,
    /// Simulated EDA tool seconds charged.
    pub tool_secs: u64,
}

impl EvalTally {
    /// Every lookup: feasible + infeasible + cached.
    ///
    /// Reconciles with `JobStats::total_lookups()` on the synthesis-job
    /// runner that emitted the events.
    #[must_use]
    pub fn total_lookups(&self) -> u64 {
        self.feasible + self.infeasible + self.cached
    }

    /// Records one lookup with [`SearchEvent::EvalCompleted`] semantics.
    pub fn record(&mut self, cached: bool, feasible: bool, tool_secs: u64) {
        if cached {
            self.cached += 1;
        } else if feasible {
            self.feasible += 1;
        } else {
            self.infeasible += 1;
        }
        self.tool_secs += tool_secs;
    }

    /// Serializes as a JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut o = JsonObj::new();
        o.u64("feasible", self.feasible)
            .u64("cached", self.cached)
            .u64("infeasible", self.infeasible)
            .u64("tool_secs", self.tool_secs)
            .u64("total_lookups", self.total_lookups());
        o.finish()
    }
}

/// Aggregated wall-clock time for one span name.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Number of times the span closed.
    pub count: u64,
    /// Total nanoseconds across closings.
    pub total_nanos: u64,
    /// Longest single closing.
    pub max_nanos: u64,
}

impl SpanStat {
    fn record(&mut self, nanos: u64) {
        self.count += 1;
        self.total_nanos += nanos;
        self.max_nanos = self.max_nanos.max(nanos);
    }

    /// Serializes as a JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut o = JsonObj::new();
        o.u64("count", self.count)
            .u64("total_nanos", self.total_nanos)
            .u64("max_nanos", self.max_nanos);
        o.finish()
    }
}

/// One generation's slice of the run telemetry.
///
/// Scoring fields (`best`, `mean`, cumulative cache counters, `evals`)
/// describe the generation's *scoring* phase; breeding fields
/// (`mutations_per_param`, `hints`, `crossovers`, `selections`) describe
/// the offspring bred *from* this generation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GenerationTelemetry {
    /// Zero-based generation number.
    pub generation: u32,
    /// Best raw objective value among feasible members this generation.
    pub best: f64,
    /// Mean raw objective value over feasible members this generation.
    pub mean: f64,
    /// Best raw objective value seen so far in the run.
    pub best_so_far: f64,
    /// Cumulative distinct feasible evaluations at generation end.
    pub distinct_evals: u64,
    /// Cumulative evaluation-cache hits at generation end.
    pub cache_hits: u64,
    /// Cumulative distinct infeasible attempts at generation end.
    pub infeasible: u64,
    /// Synthesis-job lookups performed while scoring this generation
    /// (generation 0 also absorbs initial-population feasibility probes).
    pub evals: EvalTally,
    /// Mutation slots per parameter (gene order; see `params` on the
    /// report) while breeding this generation's offspring.
    pub mutations_per_param: Vec<u64>,
    /// Mutation slots by hint kind while breeding this generation's
    /// offspring.
    pub hints: HintTally,
    /// Crossover invocations while breeding.
    pub crossovers: u64,
    /// Selection invocations while breeding.
    pub selections: u64,
}

impl GenerationTelemetry {
    /// Serializes as a JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut o = JsonObj::new();
        o.u64("generation", u64::from(self.generation))
            .f64("best", self.best)
            .f64("mean", self.mean)
            .f64("best_so_far", self.best_so_far)
            .u64("distinct_evals", self.distinct_evals)
            .u64("cache_hits", self.cache_hits)
            .u64("infeasible", self.infeasible)
            .raw("evals", &self.evals.to_json())
            .arr_u64("mutations_per_param", &self.mutations_per_param)
            .raw("hints", &self.hints.to_json())
            .u64("crossovers", self.crossovers)
            .u64("selections", self.selections);
        o.finish()
    }
}

/// Checkpoint/resume and interruption tallies folded from the durability
/// events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DurabilityTally {
    /// Checkpoint records durably written this process.
    pub checkpoints_written: u64,
    /// Total bytes across those checkpoint records.
    pub checkpoint_bytes_total: u64,
    /// Largest single checkpoint record.
    pub checkpoint_max_bytes: u64,
    /// Checkpoints loaded and validated for a resume.
    pub checkpoints_restored: u64,
    /// Checkpoint files rejected by validation during recovery.
    pub corrupt_skipped: u64,
    /// Early stops at a generation boundary ([`SearchEvent::RunInterrupted`]).
    pub interruptions: u64,
    /// Resumes from a checkpoint ([`SearchEvent::RunResumed`]).
    pub resumes: u64,
    /// Generation the latest resume continued at (0 when the run never
    /// resumed — checkpoints are only written at boundaries ≥ 1, so a real
    /// resume generation is never 0).
    pub resumed_from_generation: u64,
    /// Stable label of the latest stop reason ("completed" unless the run
    /// was interrupted).
    pub stop_reason: String,
}

impl Default for DurabilityTally {
    fn default() -> Self {
        DurabilityTally {
            checkpoints_written: 0,
            checkpoint_bytes_total: 0,
            checkpoint_max_bytes: 0,
            checkpoints_restored: 0,
            corrupt_skipped: 0,
            interruptions: 0,
            resumes: 0,
            resumed_from_generation: 0,
            stop_reason: "completed".to_owned(),
        }
    }
}

impl DurabilityTally {
    /// Serializes as a JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut o = JsonObj::new();
        o.u64("checkpoints_written", self.checkpoints_written)
            .u64("checkpoint_bytes_total", self.checkpoint_bytes_total)
            .u64("checkpoint_max_bytes", self.checkpoint_max_bytes)
            .u64("checkpoints_restored", self.checkpoints_restored)
            .u64("corrupt_skipped", self.corrupt_skipped)
            .u64("interruptions", self.interruptions)
            .u64("resumes", self.resumes)
            .u64("resumed_from_generation", self.resumed_from_generation)
            .str("stop_reason", &self.stop_reason);
        o.finish()
    }
}

/// Supervision tallies folded from the watchdog / hedging / circuit-breaker
/// events.
///
/// The hedging identity `hedges_issued == hedges_won + hedges_wasted`
/// holds by construction: every hedge resolves exactly once, either
/// beating its straggling primary (won) or losing the race (wasted).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthTally {
    /// Attempts abandoned by the watchdog deadline.
    pub watchdog_fired: u64,
    /// Watchdog firings where the attempt *did* complete, but late — the
    /// result was discarded instead of cached.
    pub late_results_discarded: u64,
    /// Hedged duplicate evaluations dispatched for stragglers.
    pub hedges_issued: u64,
    /// Hedges that finished before their straggling primary.
    pub hedges_won: u64,
    /// Hedges that lost the race (their work was wasted).
    pub hedges_wasted: u64,
    /// Circuit-breaker trips into the `Open` state.
    pub breaker_trips: u64,
    /// Circuit-breaker recoveries (`HalfOpen` probe succeeded → `Closed`).
    pub breaker_recoveries: u64,
    /// Evaluations shed while the breaker was open (quarantined without
    /// consuming retry budget).
    pub evals_shed: u64,
    /// Final observed breaker state label ("closed" / "open" /
    /// "half_open"; "closed" when no transition was ever observed).
    pub breaker_state: String,
}

impl Default for HealthTally {
    fn default() -> Self {
        HealthTally {
            watchdog_fired: 0,
            late_results_discarded: 0,
            hedges_issued: 0,
            hedges_won: 0,
            hedges_wasted: 0,
            breaker_trips: 0,
            breaker_recoveries: 0,
            evals_shed: 0,
            breaker_state: "closed".to_owned(),
        }
    }
}

impl HealthTally {
    /// Whether the hedging identity reconciles.
    #[must_use]
    pub fn hedges_reconcile(&self) -> bool {
        self.hedges_issued == self.hedges_won + self.hedges_wasted
    }

    /// Serializes as a JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut o = JsonObj::new();
        o.u64("watchdog_fired", self.watchdog_fired)
            .u64("late_results_discarded", self.late_results_discarded)
            .u64("hedges_issued", self.hedges_issued)
            .u64("hedges_won", self.hedges_won)
            .u64("hedges_wasted", self.hedges_wasted)
            .u64("breaker_trips", self.breaker_trips)
            .u64("breaker_recoveries", self.breaker_recoveries)
            .u64("evals_shed", self.evals_shed)
            .str("breaker_state", &self.breaker_state);
        o.finish()
    }
}

/// Subprocess-evaluator child lifecycle tallies (schema v7).
///
/// Folded from the `ChildSpawned` / `ChildKilled` / `ChildRespawned` /
/// `ChildProtocolError` events emitted by an out-of-process evaluator
/// pool. All zero on in-process runs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SubprocessTally {
    /// Child processes spawned (initial pool fills and respawns alike).
    pub spawned: u64,
    /// Children killed by the parent (hang, protocol error, or death
    /// detected mid-request).
    pub killed: u64,
    /// Children respawned after a kill.
    pub respawned: u64,
    /// Protocol-level violations observed on child pipes (bad magic,
    /// CRC mismatch, truncation, desynchronized reply ids).
    pub protocol_errors: u64,
}

impl SubprocessTally {
    /// Whether the kill/respawn identity reconciles: every kill the
    /// parent performed was followed by a respawn attempt.
    #[must_use]
    pub fn reconciles(&self) -> bool {
        self.killed == self.respawned
    }

    /// Serializes as a JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut o = JsonObj::new();
        o.u64("spawned", self.spawned)
            .u64("killed", self.killed)
            .u64("respawned", self.respawned)
            .u64("protocol_errors", self.protocol_errors);
        o.finish()
    }
}

/// Search-service job-lifecycle tallies (schema v8).
///
/// Folded from the `JobQueued` / `JobStarted` / `JobFinished` /
/// `JobCancelled` / `JobRejected` / `JobAdopted` events emitted by a
/// `nautilus-serve` daemon. All zero on plain (non-daemon) runs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServiceTally {
    /// Jobs accepted into the submission queue.
    pub queued: u64,
    /// Jobs claimed by a run slot.
    pub started: u64,
    /// Jobs that reached a terminal state with a persisted result.
    pub finished: u64,
    /// Cancel requests accepted.
    pub cancelled: u64,
    /// Submissions refused with a typed backpressure reply.
    pub rejected: u64,
    /// Orphaned jobs re-adopted after a daemon restart.
    pub adopted: u64,
}

impl ServiceTally {
    /// Whether the lifecycle identities reconcile: nothing finished that
    /// never started, and nothing started that was never queued or
    /// adopted.
    #[must_use]
    pub fn reconciles(&self) -> bool {
        self.finished <= self.started && self.started <= self.queued + self.adopted
    }

    /// Serializes as a JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut o = JsonObj::new();
        o.u64("queued", self.queued)
            .u64("started", self.started)
            .u64("finished", self.finished)
            .u64("cancelled", self.cancelled)
            .u64("rejected", self.rejected)
            .u64("adopted", self.adopted);
        o.finish()
    }
}

/// Hostile-environment tallies (schema v9).
///
/// Folded from the `DurableWriteFailed` / `ConnShed` / `ConnStalled` /
/// `AcceptBackoff` / `DuplicateSubmit` events a hardened `nautilus-serve`
/// daemon emits when the world misbehaves: full disks, stalled or
/// flooding clients, duplicate submissions after lost replies. All zero
/// on healthy plain runs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EdgeTally {
    /// Durable writes (checkpoints, specs, results, event logs, cancel
    /// markers, endpoint files) that failed and were surfaced as typed
    /// faults rather than swallowed.
    pub durable_write_failures: u64,
    /// The subset of durable-write failures where an `fsync` (file or
    /// directory entry) failed — the classic silently-swallowed error.
    pub fsync_failures: u64,
    /// Connections refused at the concurrent-connection cap.
    pub conns_shed: u64,
    /// Connections closed at a read/write deadline.
    pub conn_stalls: u64,
    /// Accept-loop backoff sleeps taken on `accept(2)` errors.
    pub accept_backoffs: u64,
    /// Duplicate submissions resolved to their original job id by
    /// dedupe key.
    pub dedupe_hits: u64,
}

impl EdgeTally {
    /// Serializes as a JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut o = JsonObj::new();
        o.u64("durable_write_failures", self.durable_write_failures)
            .u64("fsync_failures", self.fsync_failures)
            .u64("conns_shed", self.conns_shed)
            .u64("conn_stalls", self.conn_stalls)
            .u64("accept_backoffs", self.accept_backoffs)
            .u64("dedupe_hits", self.dedupe_hits);
        o.finish()
    }
}

/// The machine-readable summary of one instrumented search run.
///
/// # Schema version history
///
/// Downstream consumers should branch on the top-level `schema_version`
/// field. Versions only ever *add* fields, so a consumer of version `n`
/// can read any later report by ignoring unknown keys:
///
/// * **v1** — initial schema: `strategy`, `seed`, `params`, `population`,
///   `generation_budget`, `best_value`, `distinct_evals`, `wall_nanos`,
///   `evals`, `hints`, `importance_decays`, `pareto_updates`,
///   `generations[]`, `spans`.
/// * **v2** — added the parallel-evaluation fields `eval_batches`,
///   `batched_evals`, `max_batch` and `shard_contentions`.
/// * **v3** — added the `faults` block (`evals_failed`, `retries`,
///   `retries_recovered`, `quarantined`, plus `failed_attempts` broken
///   down by failure kind).
/// * **v4** — added the `durability` block ([`DurabilityTally`]:
///   checkpoint write/restore/corruption tallies, interruption and resume
///   counts, `resumed_from_generation` and the final `stop_reason`). All
///   v3 fields are unchanged; on a resumed run the per-generation rows
///   cover the *whole* logical run when the builder was restored from a
///   checkpoint snapshot ([`ReportBuilder::restore_bytes`]), and only the
///   post-resume tail otherwise.
/// * **v5** — added the `health` block ([`HealthTally`]: watchdog
///   firings, hedging identities, circuit-breaker trip/recovery counts,
///   shed evaluations and the final breaker state). All v4 fields are
///   unchanged.
/// * **v6** — added the `phases` time-attribution block: one entry per
///   instrumented [`Phase`] with span count, total and self nanoseconds,
///   longest span, and percent of the run's wall clock (from
///   `wall_nanos`). Populated only when the run was traced
///   ([`ReportBuilder::attach_phases`]); `{}` otherwise. All v5 fields
///   are unchanged.
/// * **v7** — added the `subprocess` block ([`SubprocessTally`]: child
///   spawn/kill/respawn and protocol-error counts from out-of-process
///   evaluator pools). All zero on in-process runs. All v6 fields are
///   unchanged.
/// * **v8** — added the `service` block ([`ServiceTally`]: daemon
///   job-lifecycle counts — queued/started/finished/cancelled/rejected
///   submissions and crash-recovery adoptions). All zero on plain runs.
///   All v7 fields are unchanged.
/// * **v9** — added the `edge` block ([`EdgeTally`]: hostile-environment
///   counts — surfaced durable-write and fsync failures, connections
///   shed at the cap, stalled connections closed at their deadline,
///   accept-loop backoffs, and dedupe-key duplicate submissions). All
///   zero on healthy plain runs. All v8 fields are unchanged.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunReport {
    /// Strategy label from [`SearchEvent::RunStart`].
    pub strategy: String,
    /// RNG seed.
    pub seed: u64,
    /// Parameter names in gene order.
    pub params: Vec<String>,
    /// Population size.
    pub population: usize,
    /// Generation budget.
    pub generation_budget: u32,
    /// Best objective value found (NaN if the run never reported one).
    pub best_value: f64,
    /// Total distinct feasible evaluations — the paper's "# designs
    /// evaluated" cost axis.
    pub distinct_evals: u64,
    /// Run wall-clock nanoseconds.
    pub wall_nanos: u64,
    /// Whole-run evaluation-lookup tallies.
    pub evals: EvalTally,
    /// Whole-run mutation tallies by hint kind.
    pub hints: HintTally,
    /// Importance-decay reweighting events observed.
    pub importance_decays: u64,
    /// Pareto-front recomputations observed.
    pub pareto_updates: u64,
    /// Parallel evaluation batches observed (0 on serial runs).
    pub eval_batches: u64,
    /// Cache misses evaluated across all batches.
    pub batched_evals: u64,
    /// Largest single evaluation batch.
    pub max_batch: u64,
    /// Sharded synthesis-cache insert races observed.
    pub shard_contentions: u64,
    /// Whole-run evaluation-failure / retry / quarantine tallies.
    pub faults: FaultTally,
    /// Checkpoint/resume and interruption tallies.
    pub durability: DurabilityTally,
    /// Watchdog / hedging / circuit-breaker tallies.
    pub health: HealthTally,
    /// Subprocess-evaluator child lifecycle tallies (all zero on
    /// in-process runs).
    pub subprocess: SubprocessTally,
    /// Search-service job-lifecycle tallies (all zero on plain runs).
    pub service: ServiceTally,
    /// Hostile-environment tallies (all zero on healthy plain runs).
    pub edge: EdgeTally,
    /// Per-generation telemetry, in generation order.
    pub generations: Vec<GenerationTelemetry>,
    /// Aggregated span timings by span name.
    pub spans: BTreeMap<&'static str, SpanStat>,
    /// Per-phase time attribution from the run's [`crate::Tracer`]
    /// (empty when the run was not traced).
    pub phases: BTreeMap<Phase, PhaseStat>,
}

impl RunReport {
    /// Serializes the full report as one JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut spans = JsonObj::new();
        for (name, stat) in &self.spans {
            spans.raw(name, &stat.to_json());
        }
        let gen_rows: Vec<String> = self.generations.iter().map(|g| g.to_json()).collect();
        let mut phases = JsonObj::new();
        for (phase, stat) in &self.phases {
            let mut p = JsonObj::new();
            p.u64("count", stat.count)
                .u64("total_nanos", stat.total_nanos)
                .u64("self_nanos", stat.self_nanos)
                .u64("max_nanos", stat.max_nanos)
                .f64("percent_of_wall", percent_of(stat.total_nanos, self.wall_nanos));
            phases.raw(phase.label(), &p.finish());
        }
        let mut o = JsonObj::new();
        o.u64("schema_version", 9)
            .str("strategy", &self.strategy)
            .u64("seed", self.seed)
            .arr_str("params", &self.params)
            .u64("population", self.population as u64)
            .u64("generation_budget", u64::from(self.generation_budget))
            .f64("best_value", self.best_value)
            .u64("distinct_evals", self.distinct_evals)
            .u64("wall_nanos", self.wall_nanos)
            .raw("evals", &self.evals.to_json())
            .raw("hints", &self.hints.to_json())
            .u64("importance_decays", self.importance_decays)
            .u64("pareto_updates", self.pareto_updates)
            .u64("eval_batches", self.eval_batches)
            .u64("batched_evals", self.batched_evals)
            .u64("max_batch", self.max_batch)
            .u64("shard_contentions", self.shard_contentions)
            .raw("faults", &self.faults.to_json())
            .raw("durability", &self.durability.to_json())
            .raw("health", &self.health.to_json())
            .raw("subprocess", &self.subprocess.to_json())
            .raw("service", &self.service.to_json())
            .raw("edge", &self.edge.to_json())
            .arr_raw("generations", &gen_rows)
            .raw("spans", &spans.finish())
            .raw("phases", &phases.finish());
        o.finish()
    }
}

/// `part` as a percentage of `whole` (0 when `whole` is 0).
fn percent_of(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        part as f64 * 100.0 / whole as f64
    }
}

#[derive(Debug, Default)]
struct ReportState {
    report: RunReport,
    rows: BTreeMap<u32, GenerationTelemetry>,
    /// Generation opened by the latest `GenerationStart` (evals before the
    /// first one — initial-population probes — land in generation 0).
    scoring_gen: u32,
    num_params: usize,
}

impl ReportState {
    fn row(&mut self, generation: u32) -> &mut GenerationTelemetry {
        let num_params = self.num_params;
        self.rows.entry(generation).or_insert_with(|| GenerationTelemetry {
            generation,
            best: f64::NAN,
            mean: f64::NAN,
            best_so_far: f64::NAN,
            mutations_per_param: vec![0; num_params],
            ..GenerationTelemetry::default()
        })
    }
}

/// An observer that aggregates the event stream into a [`RunReport`].
///
/// Share it (optionally fanned out with a streaming sink) for the duration
/// of one run, then call [`ReportBuilder::finish`].
#[derive(Debug, Default)]
pub struct ReportBuilder {
    state: Mutex<ReportState>,
}

impl ReportBuilder {
    /// A builder with an empty report.
    #[must_use]
    pub fn new() -> Self {
        let builder = ReportBuilder::default();
        builder.state.lock().expect("report poisoned").report.best_value = f64::NAN;
        builder
    }

    /// Consumes the builder, returning the aggregated report.
    ///
    /// # Panics
    ///
    /// Panics if the internal mutex is poisoned.
    #[must_use]
    pub fn finish(self) -> RunReport {
        let state = self.state.into_inner().expect("report poisoned");
        let mut report = state.report;
        report.generations = state.rows.into_values().collect();
        report
    }

    /// Attaches a traced run's per-phase time attribution (typically
    /// `tracer.phase_stats()`), replacing any previously attached block.
    /// The phases surface in the report's schema-6 `phases` JSON object.
    ///
    /// # Panics
    ///
    /// Panics if the internal mutex is poisoned.
    pub fn attach_phases(&self, phases: BTreeMap<Phase, PhaseStat>) {
        self.state.lock().expect("report poisoned").report.phases = phases;
    }

    /// Serializes the builder's accumulated state so a resumed process can
    /// carry the report forward with [`ReportBuilder::restore_bytes`].
    ///
    /// Span timings are deliberately *excluded*: span names are
    /// `&'static str` keys owned by the recording process, and wall-clock
    /// spans from a dead process are not meaningful to splice into a new
    /// one. Phase attribution is excluded for the same reason — it is
    /// re-attached from the live [`crate::Tracer`] at the end of a traced
    /// run. Everything else — whole-run tallies, per-generation rows, the
    /// durability block — round-trips exactly.
    ///
    /// # Panics
    ///
    /// Panics if the internal mutex is poisoned.
    #[must_use]
    pub fn snapshot_bytes(&self) -> Vec<u8> {
        let state = self.state.lock().expect("report poisoned");
        let r = &state.report;
        let mut w = WireWriter::new();
        w.u32(SNAPSHOT_VERSION);
        w.str(&r.strategy);
        w.u64(r.seed);
        w.usize(r.params.len());
        for p in &r.params {
            w.str(p);
        }
        w.usize(r.population);
        w.u32(r.generation_budget);
        w.f64(r.best_value);
        w.u64(r.distinct_evals);
        w.u64(r.wall_nanos);
        encode_evals(&mut w, &r.evals);
        encode_hints(&mut w, &r.hints);
        w.u64(r.importance_decays);
        w.u64(r.pareto_updates);
        w.u64(r.eval_batches);
        w.u64(r.batched_evals);
        w.u64(r.max_batch);
        w.u64(r.shard_contentions);
        for n in &r.faults.failed_attempts {
            w.u64(*n);
        }
        w.u64(r.faults.retries);
        w.u64(r.faults.retries_recovered);
        w.u64(r.faults.quarantined);
        let d = &r.durability;
        w.u64(d.checkpoints_written);
        w.u64(d.checkpoint_bytes_total);
        w.u64(d.checkpoint_max_bytes);
        w.u64(d.checkpoints_restored);
        w.u64(d.corrupt_skipped);
        w.u64(d.interruptions);
        w.u64(d.resumes);
        w.u64(d.resumed_from_generation);
        w.str(&d.stop_reason);
        w.usize(state.rows.len());
        for row in state.rows.values() {
            w.u32(row.generation);
            w.f64(row.best);
            w.f64(row.mean);
            w.f64(row.best_so_far);
            w.u64(row.distinct_evals);
            w.u64(row.cache_hits);
            w.u64(row.infeasible);
            encode_evals(&mut w, &row.evals);
            w.usize(row.mutations_per_param.len());
            for n in &row.mutations_per_param {
                w.u64(*n);
            }
            encode_hints(&mut w, &row.hints);
            w.u64(row.crossovers);
            w.u64(row.selections);
        }
        w.u32(state.scoring_gen);
        w.usize(state.num_params);
        // v2: the health block rides at the end so every v1 field keeps
        // its offset.
        let h = &r.health;
        w.u64(h.watchdog_fired);
        w.u64(h.late_results_discarded);
        w.u64(h.hedges_issued);
        w.u64(h.hedges_won);
        w.u64(h.hedges_wasted);
        w.u64(h.breaker_trips);
        w.u64(h.breaker_recoveries);
        w.u64(h.evals_shed);
        w.str(&h.breaker_state);
        // v3: the subprocess block rides after the health block so every
        // earlier field keeps its offset.
        let s = &r.subprocess;
        w.u64(s.spawned);
        w.u64(s.killed);
        w.u64(s.respawned);
        w.u64(s.protocol_errors);
        // v4: the service block rides last so every earlier field keeps
        // its offset.
        let j = &r.service;
        w.u64(j.queued);
        w.u64(j.started);
        w.u64(j.finished);
        w.u64(j.cancelled);
        w.u64(j.rejected);
        w.u64(j.adopted);
        // v5: the edge block rides last so every earlier field keeps its
        // offset.
        let e = &r.edge;
        w.u64(e.durable_write_failures);
        w.u64(e.fsync_failures);
        w.u64(e.conns_shed);
        w.u64(e.conn_stalls);
        w.u64(e.accept_backoffs);
        w.u64(e.dedupe_hits);
        w.into_bytes()
    }

    /// Reconstructs a builder from [`ReportBuilder::snapshot_bytes`] output.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on truncated, malformed, or
    /// unknown-version input.
    pub fn restore_bytes(bytes: &[u8]) -> Result<ReportBuilder, WireError> {
        let mut r = WireReader::new(bytes);
        let version = r.u32()?;
        if version != SNAPSHOT_VERSION {
            return Err(WireError(format!("unknown report snapshot version {version}")));
        }
        let mut report = RunReport { strategy: r.str()?, seed: r.u64()?, ..RunReport::default() };
        let n_params = r.len_prefix()?;
        for _ in 0..n_params {
            report.params.push(r.str()?);
        }
        report.population = r.len_prefix()?;
        report.generation_budget = r.u32()?;
        report.best_value = r.f64()?;
        report.distinct_evals = r.u64()?;
        report.wall_nanos = r.u64()?;
        report.evals = decode_evals(&mut r)?;
        report.hints = decode_hints(&mut r)?;
        report.importance_decays = r.u64()?;
        report.pareto_updates = r.u64()?;
        report.eval_batches = r.u64()?;
        report.batched_evals = r.u64()?;
        report.max_batch = r.u64()?;
        report.shard_contentions = r.u64()?;
        for slot in &mut report.faults.failed_attempts {
            *slot = r.u64()?;
        }
        report.faults.retries = r.u64()?;
        report.faults.retries_recovered = r.u64()?;
        report.faults.quarantined = r.u64()?;
        report.durability = DurabilityTally {
            checkpoints_written: r.u64()?,
            checkpoint_bytes_total: r.u64()?,
            checkpoint_max_bytes: r.u64()?,
            checkpoints_restored: r.u64()?,
            corrupt_skipped: r.u64()?,
            interruptions: r.u64()?,
            resumes: r.u64()?,
            resumed_from_generation: r.u64()?,
            stop_reason: r.str()?,
        };
        let n_rows = r.len_prefix()?;
        let mut rows = BTreeMap::new();
        for _ in 0..n_rows {
            let generation = r.u32()?;
            let best = r.f64()?;
            let mean = r.f64()?;
            let best_so_far = r.f64()?;
            let distinct_evals = r.u64()?;
            let cache_hits = r.u64()?;
            let infeasible = r.u64()?;
            let evals = decode_evals(&mut r)?;
            let n_muts = r.len_prefix()?;
            let mut mutations_per_param = Vec::with_capacity(n_muts.min(1024));
            for _ in 0..n_muts {
                mutations_per_param.push(r.u64()?);
            }
            let hints = decode_hints(&mut r)?;
            let crossovers = r.u64()?;
            let selections = r.u64()?;
            rows.insert(
                generation,
                GenerationTelemetry {
                    generation,
                    best,
                    mean,
                    best_so_far,
                    distinct_evals,
                    cache_hits,
                    infeasible,
                    evals,
                    mutations_per_param,
                    hints,
                    crossovers,
                    selections,
                },
            );
        }
        let scoring_gen = r.u32()?;
        let num_params = r.len_prefix()?;
        report.health = HealthTally {
            watchdog_fired: r.u64()?,
            late_results_discarded: r.u64()?,
            hedges_issued: r.u64()?,
            hedges_won: r.u64()?,
            hedges_wasted: r.u64()?,
            breaker_trips: r.u64()?,
            breaker_recoveries: r.u64()?,
            evals_shed: r.u64()?,
            breaker_state: r.str()?,
        };
        report.subprocess = SubprocessTally {
            spawned: r.u64()?,
            killed: r.u64()?,
            respawned: r.u64()?,
            protocol_errors: r.u64()?,
        };
        report.service = ServiceTally {
            queued: r.u64()?,
            started: r.u64()?,
            finished: r.u64()?,
            cancelled: r.u64()?,
            rejected: r.u64()?,
            adopted: r.u64()?,
        };
        report.edge = EdgeTally {
            durable_write_failures: r.u64()?,
            fsync_failures: r.u64()?,
            conns_shed: r.u64()?,
            conn_stalls: r.u64()?,
            accept_backoffs: r.u64()?,
            dedupe_hits: r.u64()?,
        };
        r.finish()?;
        Ok(ReportBuilder {
            state: Mutex::new(ReportState { report, rows, scoring_gen, num_params }),
        })
    }
}

/// Version tag for the [`ReportBuilder::snapshot_bytes`] wire format.
const SNAPSHOT_VERSION: u32 = 5;

fn encode_evals(w: &mut WireWriter, e: &EvalTally) {
    w.u64(e.feasible);
    w.u64(e.cached);
    w.u64(e.infeasible);
    w.u64(e.tool_secs);
}

fn decode_evals(r: &mut WireReader<'_>) -> Result<EvalTally, WireError> {
    Ok(EvalTally {
        feasible: r.u64()?,
        cached: r.u64()?,
        infeasible: r.u64()?,
        tool_secs: r.u64()?,
    })
}

fn encode_hints(w: &mut WireWriter, h: &HintTally) {
    for n in &h.counts {
        w.u64(*n);
    }
    w.u64(h.accepted);
}

fn decode_hints(r: &mut WireReader<'_>) -> Result<HintTally, WireError> {
    let mut h = HintTally::default();
    for slot in &mut h.counts {
        *slot = r.u64()?;
    }
    h.accepted = r.u64()?;
    Ok(h)
}

impl SearchObserver for ReportBuilder {
    fn on_event(&self, event: &SearchEvent) {
        let mut state = self.state.lock().expect("report poisoned");
        match event {
            SearchEvent::RunStart { strategy, seed, params, population, generations } => {
                state.report.strategy = strategy.clone();
                state.report.seed = *seed;
                state.report.params = params.clone();
                state.report.population = *population;
                state.report.generation_budget = *generations;
                state.num_params = params.len();
            }
            SearchEvent::GenerationStart { generation } => {
                state.scoring_gen = *generation;
                let _ = state.row(*generation);
            }
            SearchEvent::GenerationEnd {
                generation,
                best,
                mean,
                best_so_far,
                distinct_evals,
                cache_hits,
                infeasible,
            } => {
                let row = state.row(*generation);
                row.best = *best;
                row.mean = *mean;
                row.best_so_far = *best_so_far;
                row.distinct_evals = *distinct_evals;
                row.cache_hits = *cache_hits;
                row.infeasible = *infeasible;
            }
            SearchEvent::EvalCompleted { cached, feasible, tool_secs } => {
                let gen = state.scoring_gen;
                state.row(gen).evals.record(*cached, *feasible, *tool_secs);
                state.report.evals.record(*cached, *feasible, *tool_secs);
            }
            SearchEvent::MutationHintApplied { generation, param, hint_kind, accepted } => {
                state.report.hints.record(*hint_kind, *accepted);
                let row = state.row(*generation);
                row.hints.record(*hint_kind, *accepted);
                let idx = *param as usize;
                if row.mutations_per_param.len() <= idx {
                    row.mutations_per_param.resize(idx + 1, 0);
                }
                row.mutations_per_param[idx] += 1;
            }
            SearchEvent::EvalBatch { size, .. } => {
                state.report.eval_batches += 1;
                state.report.batched_evals += *size as u64;
                state.report.max_batch = state.report.max_batch.max(*size as u64);
            }
            SearchEvent::CacheShardContended { .. } => state.report.shard_contentions += 1,
            SearchEvent::EvalAttemptFailed { kind, .. } => {
                let idx = FailureKind::ALL.iter().position(|k| k == kind).unwrap_or(0);
                state.report.faults.failed_attempts[idx] += 1;
            }
            SearchEvent::EvalRetried { .. } => state.report.faults.retries += 1,
            SearchEvent::EvalRecovered { .. } => state.report.faults.retries_recovered += 1,
            SearchEvent::GenomeQuarantined { .. } => state.report.faults.quarantined += 1,
            SearchEvent::ImportanceDecayed { .. } => state.report.importance_decays += 1,
            SearchEvent::CrossoverApplied { generation, .. } => {
                state.row(*generation).crossovers += 1;
            }
            SearchEvent::SelectionInvoked { generation, .. } => {
                state.row(*generation).selections += 1;
            }
            SearchEvent::ParetoUpdated { .. } => state.report.pareto_updates += 1,
            SearchEvent::SpanEnd { name, nanos } => {
                state.report.spans.entry(name).or_default().record(*nanos);
            }
            SearchEvent::RunEnd { best_value, distinct_evals, wall_nanos } => {
                state.report.best_value = *best_value;
                state.report.distinct_evals = *distinct_evals;
                state.report.wall_nanos = *wall_nanos;
            }
            SearchEvent::CheckpointWritten { bytes, .. } => {
                let d = &mut state.report.durability;
                d.checkpoints_written += 1;
                d.checkpoint_bytes_total += *bytes;
                d.checkpoint_max_bytes = d.checkpoint_max_bytes.max(*bytes);
            }
            SearchEvent::CheckpointRestored { generation, .. } => {
                let d = &mut state.report.durability;
                d.checkpoints_restored += 1;
                d.resumed_from_generation = u64::from(*generation);
            }
            SearchEvent::CheckpointCorruptSkipped { .. } => {
                state.report.durability.corrupt_skipped += 1;
            }
            SearchEvent::RunInterrupted { reason, .. } => {
                state.report.durability.interruptions += 1;
                state.report.durability.stop_reason = reason.clone();
                // No RunEnd follows an interruption: fold the summary
                // fields from the last scored generation instead.
                if let Some(row) = state.rows.values().next_back() {
                    let (best, distinct) = (row.best_so_far, row.distinct_evals);
                    state.report.best_value = best;
                    state.report.distinct_evals = distinct;
                }
            }
            SearchEvent::RunResumed { strategy, seed, .. } => {
                state.report.durability.resumes += 1;
                // A resumed stream has no RunStart; carry what the event
                // knows (params arrive only via a restored snapshot).
                state.report.strategy = strategy.clone();
                state.report.seed = *seed;
            }
            SearchEvent::WatchdogFired { late_result_discarded, .. } => {
                state.report.health.watchdog_fired += 1;
                if *late_result_discarded {
                    state.report.health.late_results_discarded += 1;
                }
            }
            SearchEvent::HedgeIssued { .. } => state.report.health.hedges_issued += 1,
            SearchEvent::HedgeResolved { won } => {
                if *won {
                    state.report.health.hedges_won += 1;
                } else {
                    state.report.health.hedges_wasted += 1;
                }
            }
            SearchEvent::BreakerTransition { from, to } => {
                let h = &mut state.report.health;
                if *to == HealthState::Open {
                    h.breaker_trips += 1;
                }
                if *from == HealthState::HalfOpen && *to == HealthState::Closed {
                    h.breaker_recoveries += 1;
                }
                h.breaker_state = to.as_str().to_owned();
            }
            SearchEvent::EvalShed => state.report.health.evals_shed += 1,
            SearchEvent::ChildSpawned { .. } => state.report.subprocess.spawned += 1,
            SearchEvent::ChildKilled { .. } => state.report.subprocess.killed += 1,
            SearchEvent::ChildRespawned { .. } => state.report.subprocess.respawned += 1,
            SearchEvent::ChildProtocolError { .. } => {
                state.report.subprocess.protocol_errors += 1;
            }
            SearchEvent::JobQueued { .. } => state.report.service.queued += 1,
            SearchEvent::JobStarted { .. } => state.report.service.started += 1,
            SearchEvent::JobFinished { .. } => state.report.service.finished += 1,
            SearchEvent::JobCancelled { .. } => state.report.service.cancelled += 1,
            SearchEvent::JobRejected { .. } => state.report.service.rejected += 1,
            SearchEvent::JobAdopted { .. } => state.report.service.adopted += 1,
            SearchEvent::DurableWriteFailed { detail, .. } => {
                let e = &mut state.report.edge;
                e.durable_write_failures += 1;
                if detail.contains("sync") {
                    e.fsync_failures += 1;
                }
            }
            SearchEvent::ConnShed { .. } => state.report.edge.conns_shed += 1,
            SearchEvent::ConnStalled { .. } => state.report.edge.conn_stalls += 1,
            SearchEvent::AcceptBackoff { .. } => state.report.edge.accept_backoffs += 1,
            SearchEvent::DuplicateSubmit { .. } => state.report.edge.dedupe_hits += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::is_valid_json;

    fn feed(builder: &ReportBuilder, events: &[SearchEvent]) {
        for e in events {
            builder.on_event(e);
        }
    }

    #[test]
    fn report_aggregates_a_small_run() {
        let builder = ReportBuilder::new();
        feed(
            &builder,
            &[
                SearchEvent::RunStart {
                    strategy: "guided".into(),
                    seed: 42,
                    params: vec!["depth".into(), "width".into()],
                    population: 4,
                    generations: 2,
                },
                // initial-population probe before any GenerationStart.
                SearchEvent::EvalCompleted { cached: false, feasible: false, tool_secs: 0 },
                SearchEvent::GenerationStart { generation: 0 },
                SearchEvent::EvalCompleted { cached: false, feasible: true, tool_secs: 300 },
                SearchEvent::EvalCompleted { cached: true, feasible: true, tool_secs: 0 },
                SearchEvent::GenerationEnd {
                    generation: 0,
                    best: 5.0,
                    mean: 6.0,
                    best_so_far: 5.0,
                    distinct_evals: 1,
                    cache_hits: 1,
                    infeasible: 1,
                },
                SearchEvent::SelectionInvoked { generation: 0, kind: "tournament".into() },
                SearchEvent::CrossoverApplied { generation: 0, kind: "one-point".into() },
                SearchEvent::MutationHintApplied {
                    generation: 0,
                    param: 1,
                    hint_kind: HintKind::Bias,
                    accepted: true,
                },
                SearchEvent::MutationHintApplied {
                    generation: 0,
                    param: 0,
                    hint_kind: HintKind::Fallback,
                    accepted: false,
                },
                SearchEvent::ImportanceDecayed {
                    generation: 1,
                    min_weight: 1.0,
                    max_weight: 2.0,
                    mean_weight: 1.5,
                },
                SearchEvent::EvalBatch { generation: 1, size: 3, workers: 2 },
                SearchEvent::EvalBatch { generation: 1, size: 8, workers: 2 },
                SearchEvent::CacheShardContended { shard: 5 },
                // A transient fault recovered on retry...
                SearchEvent::EvalAttemptFailed {
                    kind: FailureKind::Transient,
                    attempt: 1,
                    retryable: true,
                },
                SearchEvent::EvalRetried { attempt: 1, backoff_nanos: 1_000_000 },
                SearchEvent::EvalRecovered { failed_attempts: 1 },
                // ...and a persistent fault quarantined immediately.
                SearchEvent::EvalAttemptFailed {
                    kind: FailureKind::Persistent,
                    attempt: 1,
                    retryable: false,
                },
                SearchEvent::GenomeQuarantined { attempts: 1, kind: FailureKind::Persistent },
                SearchEvent::SpanEnd { name: "scoring", nanos: 500 },
                SearchEvent::SpanEnd { name: "scoring", nanos: 700 },
                SearchEvent::RunEnd { best_value: 5.0, distinct_evals: 1, wall_nanos: 9000 },
            ],
        );
        let report = builder.finish();
        assert_eq!(report.strategy, "guided");
        assert_eq!(report.params, vec!["depth", "width"]);
        assert_eq!(report.evals.feasible, 1);
        assert_eq!(report.evals.cached, 1);
        assert_eq!(report.evals.infeasible, 1);
        assert_eq!(report.evals.total_lookups(), 3);
        assert_eq!(report.evals.tool_secs, 300);
        assert_eq!(report.hints.total(), 2);
        assert_eq!(report.hints.count_of(HintKind::Bias), 1);
        assert_eq!(report.hints.accepted, 1);
        assert_eq!(report.importance_decays, 1);
        assert_eq!(report.best_value, 5.0);
        assert_eq!(report.eval_batches, 2);
        assert_eq!(report.batched_evals, 11);
        assert_eq!(report.max_batch, 8);
        assert_eq!(report.shard_contentions, 1);
        assert_eq!(report.faults.evals_failed(), 2);
        assert_eq!(report.faults.retries, 1);
        assert_eq!(report.faults.retries_recovered, 1);
        assert_eq!(report.faults.quarantined, 1);
        assert_eq!(report.faults.failed_attempts_of(FailureKind::Transient), 1);
        assert_eq!(report.faults.failed_attempts_of(FailureKind::Persistent), 1);
        assert_eq!(report.faults.total_failed_attempts(), 2);

        assert_eq!(report.generations.len(), 1);
        let g0 = &report.generations[0];
        assert_eq!(g0.generation, 0);
        assert_eq!(g0.best, 5.0);
        // Pre-generation probe lands in generation 0 alongside scoring.
        assert_eq!(g0.evals.infeasible, 1);
        assert_eq!(g0.evals.feasible, 1);
        assert_eq!(g0.evals.cached, 1);
        assert_eq!(g0.mutations_per_param, vec![1, 1]);
        assert_eq!(g0.hints.count_of(HintKind::Fallback), 1);
        assert_eq!(g0.crossovers, 1);
        assert_eq!(g0.selections, 1);

        let scoring = report.spans["scoring"];
        assert_eq!(scoring.count, 2);
        assert_eq!(scoring.total_nanos, 1200);
        assert_eq!(scoring.max_nanos, 700);
    }

    #[test]
    fn report_serializes_to_valid_json() {
        let builder = ReportBuilder::new();
        feed(
            &builder,
            &[
                SearchEvent::RunStart {
                    strategy: "baseline".into(),
                    seed: 1,
                    params: vec!["n".into()],
                    population: 2,
                    generations: 1,
                },
                SearchEvent::GenerationStart { generation: 0 },
                SearchEvent::GenerationEnd {
                    generation: 0,
                    best: 1.0,
                    mean: f64::NAN,
                    best_so_far: 1.0,
                    distinct_evals: 2,
                    cache_hits: 0,
                    infeasible: 0,
                },
                SearchEvent::RunEnd { best_value: 1.0, distinct_evals: 2, wall_nanos: 10 },
            ],
        );
        let json = builder.finish().to_json();
        assert!(is_valid_json(&json), "invalid report json: {json}");
        assert!(json.contains("\"schema_version\":9"));
        assert!(json.contains("\"eval_batches\":0"));
        assert!(json.contains("\"durable_write_failures\":0"));
        assert!(json.contains("\"conns_shed\":0"));
        assert!(json.contains("\"evals_failed\":0"));
        assert!(json.contains("\"quarantined\":0"));
        assert!(json.contains("\"mean\":null"));
        assert!(json.contains("\"checkpoints_written\":0"));
        assert!(json.contains("\"stop_reason\":\"completed\""));
        assert!(json.contains("\"watchdog_fired\":0"));
        assert!(json.contains("\"breaker_state\":\"closed\""));
        assert!(
            json.contains("\"phases\":{}"),
            "untraced run must serialize an empty phases block"
        );
    }

    #[test]
    fn attached_phases_serialize_with_percent_of_wall() {
        let builder = ReportBuilder::new();
        feed(
            &builder,
            &[SearchEvent::RunEnd { best_value: 1.0, distinct_evals: 2, wall_nanos: 2000 }],
        );
        let mut phases = BTreeMap::new();
        phases.insert(
            Phase::Run,
            PhaseStat { count: 1, total_nanos: 2000, self_nanos: 1000, max_nanos: 2000 },
        );
        phases.insert(
            Phase::Scoring,
            PhaseStat { count: 4, total_nanos: 1000, self_nanos: 1000, max_nanos: 400 },
        );
        builder.attach_phases(phases.clone());
        let report = builder.finish();
        assert_eq!(report.phases, phases);
        let json = report.to_json();
        assert!(is_valid_json(&json), "invalid report json: {json}");
        assert!(json.contains(
            "\"run\":{\"count\":1,\"total_nanos\":2000,\"self_nanos\":1000,\
             \"max_nanos\":2000,\"percent_of_wall\":100.0}"
        ));
        assert!(json.contains("\"scoring\":{\"count\":4,"));
        assert!(json.contains("\"percent_of_wall\":50.0"));
    }

    #[test]
    fn phases_are_rebuilt_not_snapshotted_across_resume() {
        let builder = ReportBuilder::new();
        feed(
            &builder,
            &[SearchEvent::RunEnd { best_value: 1.0, distinct_evals: 1, wall_nanos: 500 }],
        );
        let mut phases = BTreeMap::new();
        phases.insert(
            Phase::Run,
            PhaseStat { count: 1, total_nanos: 500, self_nanos: 500, max_nanos: 500 },
        );
        builder.attach_phases(phases);
        let restored = ReportBuilder::restore_bytes(&builder.snapshot_bytes()).unwrap();
        let report = restored.finish();
        // Wall-clock attribution from a dead process is not spliced into
        // the resumed run; the resumed tracer re-attaches fresh stats.
        assert!(report.phases.is_empty());
        assert_eq!(report.wall_nanos, 500);
    }

    /// A schema-5 consumer reads a schema-6 report by ignoring unknown
    /// keys; every v5 field must still be present with its old shape.
    #[test]
    fn schema_5_consumers_can_read_a_schema_6_report() {
        use crate::json::{parse_json, JsonValue};

        let builder = ReportBuilder::new();
        feed(
            &builder,
            &[
                SearchEvent::RunStart {
                    strategy: "baseline".into(),
                    seed: 1,
                    params: vec!["n".into()],
                    population: 2,
                    generations: 1,
                },
                SearchEvent::RunEnd { best_value: 1.0, distinct_evals: 2, wall_nanos: 10 },
            ],
        );
        let mut phases = BTreeMap::new();
        phases.insert(
            Phase::Run,
            PhaseStat { count: 1, total_nanos: 10, self_nanos: 10, max_nanos: 10 },
        );
        builder.attach_phases(phases);
        let parsed = parse_json(&builder.finish().to_json()).unwrap();
        assert_eq!(parsed.get("schema_version").and_then(JsonValue::as_u64), Some(9));
        // The complete v6 surface, unchanged.
        for key in [
            "strategy",
            "seed",
            "params",
            "population",
            "generation_budget",
            "best_value",
            "distinct_evals",
            "wall_nanos",
            "evals",
            "hints",
            "importance_decays",
            "pareto_updates",
            "eval_batches",
            "batched_evals",
            "max_batch",
            "shard_contentions",
            "faults",
            "durability",
            "health",
            "generations",
            "spans",
        ] {
            assert!(parsed.get(key).is_some(), "v6 key `{key}` missing from v8 report");
        }
        // The v7 addition is a well-formed subprocess block.
        let sub = parsed.get("subprocess").expect("subprocess block");
        assert_eq!(sub.get("spawned").and_then(JsonValue::as_u64), Some(0));
        // The v8 addition is a well-formed service block.
        let svc = parsed.get("service").expect("service block");
        assert_eq!(svc.get("queued").and_then(JsonValue::as_u64), Some(0));
        assert_eq!(svc.get("adopted").and_then(JsonValue::as_u64), Some(0));
        // The v6 addition is a well-formed object keyed by phase label.
        let run = parsed.get("phases").and_then(|p| p.get("run")).expect("phases.run");
        assert_eq!(run.get("total_nanos").and_then(JsonValue::as_u64), Some(10));
        assert_eq!(run.get("percent_of_wall").and_then(JsonValue::as_f64), Some(100.0));
    }

    #[test]
    fn supervision_events_fold_into_the_health_block() {
        let builder = ReportBuilder::new();
        feed(
            &builder,
            &[
                SearchEvent::WatchdogFired {
                    attempt: 1,
                    limit_ms: 500,
                    late_result_discarded: true,
                },
                SearchEvent::WatchdogFired {
                    attempt: 2,
                    limit_ms: 500,
                    late_result_discarded: false,
                },
                SearchEvent::HedgeIssued { attempt: 1 },
                SearchEvent::HedgeResolved { won: true },
                SearchEvent::HedgeIssued { attempt: 3 },
                SearchEvent::HedgeResolved { won: false },
                SearchEvent::BreakerTransition { from: HealthState::Closed, to: HealthState::Open },
                SearchEvent::EvalShed,
                SearchEvent::EvalShed,
                SearchEvent::EvalShed,
                SearchEvent::BreakerTransition {
                    from: HealthState::Open,
                    to: HealthState::HalfOpen,
                },
                SearchEvent::BreakerTransition {
                    from: HealthState::HalfOpen,
                    to: HealthState::Closed,
                },
            ],
        );
        let report = builder.finish();
        let h = &report.health;
        assert_eq!(h.watchdog_fired, 2);
        assert_eq!(h.late_results_discarded, 1);
        assert_eq!(h.hedges_issued, 2);
        assert_eq!(h.hedges_won, 1);
        assert_eq!(h.hedges_wasted, 1);
        assert!(h.hedges_reconcile());
        assert_eq!(h.breaker_trips, 1);
        assert_eq!(h.breaker_recoveries, 1);
        assert_eq!(h.evals_shed, 3);
        assert_eq!(h.breaker_state, "closed");
        assert!(is_valid_json(&h.to_json()));
    }

    #[test]
    fn child_lifecycle_events_fold_into_the_subprocess_block() {
        let builder = ReportBuilder::new();
        feed(
            &builder,
            &[
                SearchEvent::ChildSpawned { slot: 0 },
                SearchEvent::ChildSpawned { slot: 1 },
                SearchEvent::ChildKilled { slot: 0, reason: "io_timeout".into() },
                SearchEvent::ChildRespawned { slot: 0, backoff_ms: 1 },
                SearchEvent::ChildProtocolError { slot: 1, detail: "bad_crc".into() },
            ],
        );
        let bytes = builder.snapshot_bytes();
        let restored = ReportBuilder::restore_bytes(&bytes).expect("snapshot restores");
        assert_eq!(restored.snapshot_bytes(), bytes);
        let report = restored.finish();
        let s = &report.subprocess;
        assert_eq!(s.spawned, 2);
        assert_eq!(s.killed, 1);
        assert_eq!(s.respawned, 1);
        assert_eq!(s.protocol_errors, 1);
        assert!(s.reconciles());
        assert!(is_valid_json(&s.to_json()));
    }

    #[test]
    fn job_lifecycle_events_fold_into_the_service_block() {
        let builder = ReportBuilder::new();
        feed(
            &builder,
            &[
                SearchEvent::JobQueued { job: 1, tenant: "acme".into() },
                SearchEvent::JobQueued { job: 2, tenant: "acme".into() },
                SearchEvent::JobRejected { tenant: "acme".into(), reason: "queue_full".into() },
                SearchEvent::JobAdopted { job: 3, resumable: true },
                SearchEvent::JobStarted { job: 1 },
                SearchEvent::JobStarted { job: 3 },
                SearchEvent::JobCancelled { job: 2 },
                SearchEvent::JobFinished { job: 1, outcome: "done".into() },
                SearchEvent::JobFinished { job: 3, outcome: "done".into() },
            ],
        );
        let bytes = builder.snapshot_bytes();
        let restored = ReportBuilder::restore_bytes(&bytes).expect("snapshot restores");
        assert_eq!(restored.snapshot_bytes(), bytes);
        let report = restored.finish();
        let s = &report.service;
        assert_eq!(s.queued, 2);
        assert_eq!(s.started, 2);
        assert_eq!(s.finished, 2);
        assert_eq!(s.cancelled, 1);
        assert_eq!(s.rejected, 1);
        assert_eq!(s.adopted, 1);
        assert!(s.reconciles());
        assert!(is_valid_json(&s.to_json()));
    }

    #[test]
    fn hostile_environment_events_fold_into_the_edge_block() {
        let builder = ReportBuilder::new();
        feed(
            &builder,
            &[
                SearchEvent::DurableWriteFailed {
                    site: "ckpt.gen".into(),
                    detail: "enospc".into(),
                },
                SearchEvent::DurableWriteFailed {
                    site: "job.events".into(),
                    detail: "sync_fail".into(),
                },
                SearchEvent::DurableWriteFailed {
                    site: "job.result".into(),
                    detail: "dir_sync_fail".into(),
                },
                SearchEvent::ConnShed { active: 8, limit: 8 },
                SearchEvent::ConnStalled { phase: "read".into() },
                SearchEvent::ConnStalled { phase: "write".into() },
                SearchEvent::AcceptBackoff { errors: 1, backoff_ms: 10 },
                SearchEvent::DuplicateSubmit { job: 1, tenant: "acme".into() },
            ],
        );
        let bytes = builder.snapshot_bytes();
        let restored = ReportBuilder::restore_bytes(&bytes).expect("snapshot restores");
        assert_eq!(restored.snapshot_bytes(), bytes);
        let report = restored.finish();
        let e = &report.edge;
        assert_eq!(e.durable_write_failures, 3);
        assert_eq!(e.fsync_failures, 2, "sync_fail and dir_sync_fail both count");
        assert_eq!(e.conns_shed, 1);
        assert_eq!(e.conn_stalls, 2);
        assert_eq!(e.accept_backoffs, 1);
        assert_eq!(e.dedupe_hits, 1);
        assert!(is_valid_json(&e.to_json()));
    }

    #[test]
    fn health_block_round_trips_through_the_snapshot() {
        let original = ReportBuilder::new();
        feed(
            &original,
            &[
                SearchEvent::WatchdogFired {
                    attempt: 1,
                    limit_ms: 250,
                    late_result_discarded: false,
                },
                SearchEvent::HedgeIssued { attempt: 1 },
                SearchEvent::HedgeResolved { won: false },
                SearchEvent::BreakerTransition { from: HealthState::Closed, to: HealthState::Open },
                SearchEvent::EvalShed,
            ],
        );
        let bytes = original.snapshot_bytes();
        let restored = ReportBuilder::restore_bytes(&bytes).expect("snapshot restores");
        assert_eq!(restored.snapshot_bytes(), bytes);
        let report = restored.finish();
        assert_eq!(report.health.watchdog_fired, 1);
        assert_eq!(report.health.hedges_wasted, 1);
        assert_eq!(report.health.breaker_trips, 1);
        assert_eq!(report.health.evals_shed, 1);
        assert_eq!(report.health.breaker_state, "open");
    }

    #[test]
    fn durability_events_fold_into_the_report() {
        let builder = ReportBuilder::new();
        feed(
            &builder,
            &[
                SearchEvent::RunResumed { strategy: "guided".into(), seed: 7, generation: 3 },
                SearchEvent::CheckpointRestored { generation: 3, path: "ckpt-00000003".into() },
                SearchEvent::CheckpointCorruptSkipped {
                    path: "ckpt-00000004".into(),
                    reason: "bad crc".into(),
                },
                SearchEvent::GenerationStart { generation: 3 },
                SearchEvent::GenerationEnd {
                    generation: 3,
                    best: 2.0,
                    mean: 2.5,
                    best_so_far: 2.0,
                    distinct_evals: 12,
                    cache_hits: 4,
                    infeasible: 1,
                },
                SearchEvent::CheckpointWritten {
                    generation: 4,
                    bytes: 2048,
                    write_nanos: 1_000_000,
                    path: "ckpt-00000004".into(),
                },
                SearchEvent::CheckpointWritten {
                    generation: 5,
                    bytes: 4096,
                    write_nanos: 2_000_000,
                    path: "ckpt-00000005".into(),
                },
                SearchEvent::RunInterrupted { generation: 5, reason: "deadline_exceeded".into() },
            ],
        );
        let report = builder.finish();
        let d = &report.durability;
        assert_eq!(d.checkpoints_written, 2);
        assert_eq!(d.checkpoint_bytes_total, 6144);
        assert_eq!(d.checkpoint_max_bytes, 4096);
        assert_eq!(d.checkpoints_restored, 1);
        assert_eq!(d.corrupt_skipped, 1);
        assert_eq!(d.interruptions, 1);
        assert_eq!(d.resumes, 1);
        assert_eq!(d.resumed_from_generation, 3);
        assert_eq!(d.stop_reason, "deadline_exceeded");
        assert_eq!(report.strategy, "guided");
        assert_eq!(report.seed, 7);
        // RunInterrupted backfills summary fields from the last row.
        assert_eq!(report.best_value, 2.0);
        assert_eq!(report.distinct_evals, 12);
    }

    #[test]
    fn snapshot_round_trips_and_keeps_aggregating() {
        let original = ReportBuilder::new();
        feed(
            &original,
            &[
                SearchEvent::RunStart {
                    strategy: "guided".into(),
                    seed: 11,
                    params: vec!["depth".into(), "width".into()],
                    population: 8,
                    generations: 6,
                },
                SearchEvent::GenerationStart { generation: 0 },
                SearchEvent::EvalCompleted { cached: false, feasible: true, tool_secs: 120 },
                SearchEvent::MutationHintApplied {
                    generation: 0,
                    param: 1,
                    hint_kind: HintKind::Bias,
                    accepted: true,
                },
                SearchEvent::GenerationEnd {
                    generation: 0,
                    best: 3.0,
                    mean: 4.0,
                    best_so_far: 3.0,
                    distinct_evals: 5,
                    cache_hits: 2,
                    infeasible: 1,
                },
                SearchEvent::CheckpointWritten {
                    generation: 1,
                    bytes: 100,
                    write_nanos: 50,
                    path: "p".into(),
                },
            ],
        );
        let bytes = original.snapshot_bytes();
        let restored = ReportBuilder::restore_bytes(&bytes).expect("snapshot restores");
        // A second snapshot of the restored builder is byte-identical.
        assert_eq!(restored.snapshot_bytes(), bytes);

        let tail = [
            SearchEvent::GenerationStart { generation: 1 },
            SearchEvent::EvalCompleted { cached: true, feasible: true, tool_secs: 0 },
            SearchEvent::GenerationEnd {
                generation: 1,
                best: 2.0,
                mean: 2.0,
                best_so_far: 2.0,
                distinct_evals: 6,
                cache_hits: 3,
                infeasible: 1,
            },
            SearchEvent::RunEnd { best_value: 2.0, distinct_evals: 6, wall_nanos: 777 },
        ];
        feed(&original, &tail);
        feed(&restored, &tail);
        let a = original.finish();
        let b = restored.finish();
        // Spans are process-local and excluded from the snapshot; nothing
        // recorded any here, so the whole reports compare equal.
        assert_eq!(a, b);
        assert_eq!(b.generations.len(), 2);
        assert_eq!(b.evals.cached, 1);
        assert_eq!(b.durability.checkpoints_written, 1);
    }

    #[test]
    fn corrupt_snapshots_are_rejected() {
        let builder = ReportBuilder::new();
        builder.on_event(&SearchEvent::RunStart {
            strategy: "s".into(),
            seed: 1,
            params: vec!["p".into()],
            population: 2,
            generations: 1,
        });
        let bytes = builder.snapshot_bytes();
        for cut in 0..bytes.len() {
            assert!(
                ReportBuilder::restore_bytes(&bytes[..cut]).is_err(),
                "truncation at {cut} silently restored"
            );
        }
        let mut versioned = bytes.clone();
        versioned[0] = 0xFF;
        assert!(ReportBuilder::restore_bytes(&versioned).is_err());
        let mut trailing = bytes;
        trailing.push(0);
        assert!(ReportBuilder::restore_bytes(&trailing).is_err());
    }

    #[test]
    fn empty_report_is_well_formed() {
        let report = ReportBuilder::new().finish();
        assert!(report.best_value.is_nan());
        assert!(report.generations.is_empty());
        assert!(is_valid_json(&report.to_json()));
    }

    #[test]
    fn unknown_param_index_grows_the_tally() {
        let builder = ReportBuilder::new();
        builder.on_event(&SearchEvent::MutationHintApplied {
            generation: 2,
            param: 3,
            hint_kind: HintKind::Uniform,
            accepted: true,
        });
        let report = builder.finish();
        assert_eq!(report.generations[0].mutations_per_param, vec![0, 0, 0, 1]);
    }
}
