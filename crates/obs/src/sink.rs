//! Event sinks: an in-memory buffer for tests and a streaming JSONL
//! writer for run artifacts.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

use crate::event::SearchEvent;
use crate::observer::SearchObserver;

/// Buffers every event in memory, in arrival order.
///
/// Intended for tests: run a search against the sink, then inspect
/// [`InMemorySink::events`] to reconstruct what happened.
#[derive(Debug, Default)]
pub struct InMemorySink {
    events: Mutex<Vec<SearchEvent>>,
}

impl InMemorySink {
    /// An empty sink.
    #[must_use]
    pub fn new() -> Self {
        InMemorySink::default()
    }

    /// Number of buffered events.
    ///
    /// # Panics
    ///
    /// Panics if the sink mutex is poisoned.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.lock().expect("sink poisoned").len()
    }

    /// Whether no events were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A copy of the buffered events, in arrival order.
    ///
    /// # Panics
    ///
    /// Panics if the sink mutex is poisoned.
    #[must_use]
    pub fn events(&self) -> Vec<SearchEvent> {
        self.events.lock().expect("sink poisoned").clone()
    }

    /// Discards all buffered events.
    ///
    /// # Panics
    ///
    /// Panics if the sink mutex is poisoned.
    pub fn clear(&self) {
        self.events.lock().expect("sink poisoned").clear();
    }
}

impl SearchObserver for InMemorySink {
    fn on_event(&self, event: &SearchEvent) {
        self.events.lock().expect("sink poisoned").push(event.clone());
    }
}

/// Streams events as JSON Lines — one [`SearchEvent::to_json`] object per
/// line — through an internal `BufWriter`.
///
/// Write errors are counted rather than propagated (observers are
/// infallible by design); check [`JsonlSink::write_errors`] or the result
/// of [`JsonlSink::flush`] if delivery matters.
pub struct JsonlSink {
    writer: Mutex<BufWriter<Box<dyn Write + Send>>>,
    write_errors: std::sync::atomic::AtomicU64,
}

impl std::fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlSink").field("write_errors", &self.write_errors()).finish()
    }
}

impl JsonlSink {
    /// Creates (truncating) the file at `path` and streams events to it.
    ///
    /// # Errors
    ///
    /// Returns any error from creating the file.
    pub fn create<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        Ok(JsonlSink::from_writer(Box::new(File::create(path)?)))
    }

    /// Streams events to an arbitrary writer.
    #[must_use]
    pub fn from_writer(writer: Box<dyn Write + Send>) -> Self {
        JsonlSink {
            writer: Mutex::new(BufWriter::new(writer)),
            write_errors: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Number of events dropped due to I/O errors.
    #[must_use]
    pub fn write_errors(&self) -> u64 {
        self.write_errors.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Flushes buffered lines to the underlying writer.
    ///
    /// # Errors
    ///
    /// Returns any error from the underlying writer.
    ///
    /// # Panics
    ///
    /// Panics if the sink mutex is poisoned.
    pub fn flush(&self) -> io::Result<()> {
        self.writer.lock().expect("sink poisoned").flush()
    }
}

impl SearchObserver for JsonlSink {
    fn on_event(&self, event: &SearchEvent) {
        let mut line = event.to_json();
        line.push('\n');
        let mut w = self.writer.lock().expect("sink poisoned");
        if w.write_all(line.as_bytes()).is_err() {
            self.write_errors.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        if let Ok(mut w) = self.writer.lock() {
            let _ = w.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::is_valid_json;
    use std::sync::{Arc, Mutex as StdMutex};

    /// A `Write` handle over a shared byte buffer.
    #[derive(Clone)]
    struct SharedBuf(Arc<StdMutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn in_memory_sink_buffers_in_order() {
        let sink = InMemorySink::new();
        assert!(sink.is_empty());
        sink.on_event(&SearchEvent::GenerationStart { generation: 0 });
        sink.on_event(&SearchEvent::ParetoUpdated { size: 2 });
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.events()[0], SearchEvent::GenerationStart { generation: 0 });
        sink.clear();
        assert!(sink.is_empty());
    }

    #[test]
    fn jsonl_sink_writes_one_valid_line_per_event() {
        let buf = SharedBuf(Arc::new(StdMutex::new(Vec::new())));
        let sink = JsonlSink::from_writer(Box::new(buf.clone()));
        sink.on_event(&SearchEvent::GenerationStart { generation: 3 });
        sink.on_event(&SearchEvent::EvalCompleted { cached: true, feasible: true, tool_secs: 0 });
        sink.flush().unwrap();
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            assert!(is_valid_json(line), "invalid line: {line}");
        }
        assert!(lines[0].contains("\"type\":\"generation_start\""));
        assert_eq!(sink.write_errors(), 0);
    }

    #[test]
    fn jsonl_sink_flushes_on_drop() {
        let buf = SharedBuf(Arc::new(StdMutex::new(Vec::new())));
        {
            let sink = JsonlSink::from_writer(Box::new(buf.clone()));
            sink.on_event(&SearchEvent::ParetoUpdated { size: 1 });
        }
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert!(text.contains("pareto_updated"));
    }

    #[test]
    fn jsonl_sink_counts_write_errors() {
        struct Failing;
        impl Write for Failing {
            fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
                Err(io::Error::other("closed"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Err(io::Error::other("closed"))
            }
        }
        let sink = JsonlSink::from_writer(Box::new(Failing));
        // BufWriter buffers the first small write; force it out.
        sink.on_event(&SearchEvent::ParetoUpdated { size: 1 });
        let flushed = sink.flush();
        assert!(flushed.is_err() || sink.write_errors() > 0);
    }
}
