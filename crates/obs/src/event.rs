//! Typed search-telemetry events and their JSONL schema.
//!
//! Every event serializes to one JSON object with a `"type"` discriminator
//! (snake_case of the variant name); a run's event stream is one event per
//! line (JSONL). The schema is documented field-by-field on each variant
//! and exercised round-trip by the crate's tests.

use crate::json::JsonObj;

/// Which steering mechanism drove one mutation slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HintKind {
    /// Unguided uniform redraw (the baseline operator, or a parameter
    /// without any value hint).
    Uniform,
    /// Unguided local step (the `StepMutation` operator).
    Step,
    /// A directional bias hint steered the new value.
    Bias,
    /// A target hint pulled the new value.
    Target,
    /// A value hint exists but the confidence gate fell back to uniform.
    Fallback,
}

impl HintKind {
    /// Stable lowercase label used in the JSON schema.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            HintKind::Uniform => "uniform",
            HintKind::Step => "step",
            HintKind::Bias => "bias",
            HintKind::Target => "target",
            HintKind::Fallback => "fallback",
        }
    }

    /// All kinds, in schema order.
    pub const ALL: [HintKind; 5] =
        [HintKind::Uniform, HintKind::Step, HintKind::Bias, HintKind::Target, HintKind::Fallback];
}

impl std::fmt::Display for HintKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Why one evaluation attempt failed.
///
/// This is the observability-side mirror of the GA crate's `EvalFailure`
/// payload: events carry only the kind so the schema stays flat.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FailureKind {
    /// A transient backend fault (crashed worker, lost connection); a
    /// retry may succeed.
    Transient,
    /// The attempt exceeded its deadline.
    Timeout,
    /// The backend returned garbage metrics (non-finite values).
    Corrupted,
    /// The backend rejects this design permanently; retrying cannot help.
    Persistent,
}

impl FailureKind {
    /// Stable lowercase label used in the JSON schema.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            FailureKind::Transient => "transient",
            FailureKind::Timeout => "timeout",
            FailureKind::Corrupted => "corrupted",
            FailureKind::Persistent => "persistent",
        }
    }

    /// All kinds, in schema order.
    pub const ALL: [FailureKind; 4] = [
        FailureKind::Transient,
        FailureKind::Timeout,
        FailureKind::Corrupted,
        FailureKind::Persistent,
    ];
}

impl std::fmt::Display for FailureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Health state of the evaluation backend's circuit breaker.
///
/// This is the observability-side mirror of the GA crate's breaker state
/// machine: `Closed` (normal operation) → `Open` (sustained failures;
/// the engine sheds evaluations and serves the cache only) → `HalfOpen`
/// (probe evaluations test whether the backend recovered) → `Closed`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HealthState {
    /// Normal operation: every evaluation is admitted.
    Closed,
    /// Tripped: evaluations are shed; only the cache answers lookups.
    Open,
    /// Probing: a limited number of evaluations test the backend.
    HalfOpen,
}

impl HealthState {
    /// Stable lowercase label used in the JSON schema.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            HealthState::Closed => "closed",
            HealthState::Open => "open",
            HealthState::HalfOpen => "half_open",
        }
    }

    /// All states, in schema order.
    pub const ALL: [HealthState; 3] =
        [HealthState::Closed, HealthState::Open, HealthState::HalfOpen];
}

impl std::fmt::Display for HealthState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One structured telemetry event emitted during a search run.
///
/// Events are emitted in wall-clock order on the thread executing the run,
/// so a sink may attribute [`SearchEvent::EvalCompleted`] events to the
/// generation opened by the latest [`SearchEvent::GenerationStart`].
#[derive(Debug, Clone, PartialEq)]
pub enum SearchEvent {
    /// A search run began.
    RunStart {
        /// Strategy label ("baseline", "nautilus-strong", ...).
        strategy: String,
        /// The run's RNG seed.
        seed: u64,
        /// Parameter names, in gene order; `param` indices in later events
        /// refer to this list.
        params: Vec<String>,
        /// Population size.
        population: usize,
        /// Generation budget.
        generations: u32,
    },
    /// A generation's scoring phase began.
    GenerationStart {
        /// Zero-based generation number.
        generation: u32,
    },
    /// A generation finished scoring.
    GenerationEnd {
        /// Zero-based generation number.
        generation: u32,
        /// Best raw objective value among feasible members (NaN → null).
        best: f64,
        /// Mean raw objective value over feasible members (NaN → null).
        mean: f64,
        /// Best raw objective value seen so far in the run.
        best_so_far: f64,
        /// Cumulative distinct feasible evaluations.
        distinct_evals: u64,
        /// Cumulative evaluation-cache hits.
        cache_hits: u64,
        /// Cumulative distinct infeasible attempts.
        infeasible: u64,
    },
    /// One evaluation (synthesis-job lookup) completed.
    EvalCompleted {
        /// Whether the result came from the cache.
        cached: bool,
        /// Whether the design point was feasible.
        feasible: bool,
        /// Simulated EDA tool seconds charged (0 for cache hits and
        /// infeasible attempts).
        tool_secs: u64,
    },
    /// A generation's cache misses were evaluated as one parallel batch.
    ///
    /// Emitted by the batched evaluation path only; the serial path
    /// evaluates inline and emits nothing. Batching never touches the
    /// RNG, so observed and unobserved outcomes stay identical.
    EvalBatch {
        /// Generation whose population was being scored.
        generation: u32,
        /// Number of distinct cache misses evaluated in the batch.
        size: usize,
        /// Worker threads the batch was spread over.
        workers: usize,
    },
    /// A sharded synthesis cache lost an insert race: two threads
    /// evaluated the same point concurrently and the second write-lock
    /// holder found the entry already present.
    CacheShardContended {
        /// Index of the shard that observed the contended insert.
        shard: u32,
    },
    /// One evaluation attempt failed.
    ///
    /// Emitted once per failed attempt, before the engine decides between
    /// retrying and quarantining. Attribution to a generation follows the
    /// [`SearchEvent::EvalCompleted`] convention (latest
    /// [`SearchEvent::GenerationStart`]).
    EvalAttemptFailed {
        /// Why the attempt failed.
        kind: FailureKind,
        /// 1-based attempt number that failed.
        attempt: u32,
        /// Whether the retry policy is allowed to try again for this kind.
        retryable: bool,
    },
    /// The engine scheduled a retry after a failed attempt.
    EvalRetried {
        /// 1-based attempt number that failed and is being retried.
        attempt: u32,
        /// Backoff applied before the next attempt, in nanoseconds.
        backoff_nanos: u64,
    },
    /// A previously failing evaluation succeeded on a retry.
    EvalRecovered {
        /// Failed attempts absorbed before the success.
        failed_attempts: u32,
    },
    /// Retries were exhausted (or the failure was not retryable): the
    /// genome is quarantined with penalized fitness and the generation
    /// proceeds without it.
    GenomeQuarantined {
        /// Total attempts made, all failed.
        attempts: u32,
        /// Kind of the final failure.
        kind: FailureKind,
    },
    /// One mutation slot fired on a gene.
    MutationHintApplied {
        /// Generation whose offspring are being bred.
        generation: u32,
        /// Gene index (see `params` in [`SearchEvent::RunStart`]).
        param: u32,
        /// Which steering mechanism drove the new value.
        hint_kind: HintKind,
        /// Whether the gene actually changed value.
        accepted: bool,
    },
    /// The importance-decay schedule produced this generation's
    /// gene-selection weights.
    ImportanceDecayed {
        /// Generation the weights apply to.
        generation: u32,
        /// Smallest effective weight.
        min_weight: f64,
        /// Largest effective weight.
        max_weight: f64,
        /// Mean effective weight.
        mean_weight: f64,
    },
    /// A crossover operator recombined two parents.
    CrossoverApplied {
        /// Generation whose offspring are being bred.
        generation: u32,
        /// Operator name ("one-point", "nautilus-guided-crossover", ...).
        kind: String,
    },
    /// A parent-selection operator was invoked.
    SelectionInvoked {
        /// Generation whose offspring are being bred.
        generation: u32,
        /// Selector name ("tournament", "rank-roulette", ...).
        kind: String,
    },
    /// A Pareto front was recomputed.
    ParetoUpdated {
        /// Number of non-dominated points in the updated front.
        size: usize,
    },
    /// A scoped timer closed.
    SpanEnd {
        /// Span name ("init_population", "scoring", "breeding", ...).
        name: &'static str,
        /// Elapsed wall-clock nanoseconds.
        nanos: u64,
    },
    /// The run finished.
    RunEnd {
        /// Best objective value found.
        best_value: f64,
        /// Total distinct feasible evaluations spent.
        distinct_evals: u64,
        /// Run wall-clock nanoseconds.
        wall_nanos: u64,
    },
    /// A checkpoint record was durably written (fsync + atomic rename).
    CheckpointWritten {
        /// Generation the checkpoint resumes at (next to be scored).
        generation: u32,
        /// Size of the record on disk, in bytes.
        bytes: u64,
        /// Wall-clock nanoseconds spent encoding and writing.
        write_nanos: u64,
        /// Path of the finished checkpoint file.
        path: String,
    },
    /// A checkpoint was loaded and validated for a resume.
    CheckpointRestored {
        /// Generation the resumed run continues at.
        generation: u32,
        /// Path of the checkpoint file that was restored.
        path: String,
    },
    /// A checkpoint file failed validation (truncated, bad CRC, bad
    /// magic/version) and recovery fell back to an older record.
    CheckpointCorruptSkipped {
        /// Path of the rejected file.
        path: String,
        /// Human-readable validation failure.
        reason: String,
    },
    /// The run stopped early at a generation boundary (budget exhausted or
    /// cancelled). Emitted *instead of* [`SearchEvent::RunEnd`].
    RunInterrupted {
        /// Generation the run would have scored next (where a resume
        /// continues).
        generation: u32,
        /// Stable stop-reason label ("generation_budget", "cancelled", ...).
        reason: String,
    },
    /// A run continued from a checkpoint. Emitted *instead of*
    /// [`SearchEvent::RunStart`].
    RunResumed {
        /// Strategy label persisted in the checkpoint.
        strategy: String,
        /// The original run's RNG seed.
        seed: u64,
        /// Generation the run continues at.
        generation: u32,
    },
    /// The supervision watchdog abandoned an attempt that exceeded its
    /// hard wall-clock deadline.
    WatchdogFired {
        /// Attempt number the watchdog reclaimed (1-based; hedge
        /// attempts carry the hedge tag bit).
        attempt: u32,
        /// The deadline that was enforced, in milliseconds.
        limit_ms: u64,
        /// True when the attempt *did* finish but only after the
        /// deadline — its result was discarded rather than cached.
        late_result_discarded: bool,
    },
    /// A straggling attempt was duplicated onto a hedge evaluation.
    HedgeIssued {
        /// Attempt number of the straggling primary (1-based).
        attempt: u32,
    },
    /// A hedged pair resolved: exactly one of the primary and the
    /// hedge won (first completion), the other was wasted.
    HedgeResolved {
        /// True when the hedge finished before the straggling primary.
        won: bool,
    },
    /// The evaluation circuit breaker changed health state.
    BreakerTransition {
        /// State before the transition.
        from: HealthState,
        /// State after the transition.
        to: HealthState,
    },
    /// An evaluation was shed because the breaker was open: the genome
    /// was quarantined without consuming any retry budget.
    EvalShed,
    /// A subprocess evaluator launched a warm child into a pool slot.
    ChildSpawned {
        /// Pool slot index the child occupies.
        slot: u32,
    },
    /// A subprocess evaluator's child left service involuntarily
    /// (killed by the parent, crashed, or exited on its own).
    ChildKilled {
        /// Pool slot index the child occupied.
        slot: u32,
        /// Deterministic reason label: `"exited"`, `"io_timeout"`, or
        /// `"protocol_error"`.
        reason: String,
    },
    /// A killed child's pool slot was refilled with a fresh child.
    ChildRespawned {
        /// Pool slot index that was refilled.
        slot: u32,
        /// Backoff applied before the respawn, in milliseconds.
        backoff_ms: u64,
    },
    /// A child produced bytes that violate the wire protocol (garbage,
    /// bad CRC, unexpected frame), or could not be respawned.
    ChildProtocolError {
        /// Pool slot index of the offending child.
        slot: u32,
        /// Deterministic error label (e.g. `"bad_magic"`, `"bad_crc"`,
        /// `"truncated"`, `"respawn_failed"`).
        detail: String,
    },
    /// A search-service daemon accepted a job into its submission queue.
    JobQueued {
        /// Daemon-assigned job id.
        job: u64,
        /// Tenant the job was submitted under.
        tenant: String,
    },
    /// A queued job was claimed by a run slot and began executing.
    JobStarted {
        /// Daemon-assigned job id.
        job: u64,
    },
    /// A job reached a terminal state and its result was persisted.
    JobFinished {
        /// Daemon-assigned job id.
        job: u64,
        /// Terminal outcome label: `"done"`, `"failed"`, or
        /// `"cancelled"`.
        outcome: String,
    },
    /// A cancel request was accepted for a queued or running job.
    JobCancelled {
        /// Daemon-assigned job id.
        job: u64,
    },
    /// A submission was refused with a typed backpressure reply (the job
    /// was never enqueued; nothing was silently dropped).
    JobRejected {
        /// Tenant whose submission was refused.
        tenant: String,
        /// Deterministic backpressure label (e.g. `"queue_full"`,
        /// `"deadline_too_long"`, `"breaker_open"`, `"draining"`).
        reason: String,
    },
    /// A restarted daemon found an orphaned job on disk and re-adopted
    /// it into the queue.
    JobAdopted {
        /// Daemon-assigned job id (preserved across the restart).
        job: u64,
        /// True when an intact checkpoint lets the run resume mid-search
        /// rather than restart from generation zero.
        resumable: bool,
    },
    /// A durable write (checkpoint, job spec, result record, event log,
    /// cancel marker, endpoint file) failed — disk full, fsync error,
    /// blocked rename. Durable-state writers never swallow these; the
    /// event names what broke so operators can tell a hostile
    /// environment from a software fault.
    DurableWriteFailed {
        /// Stable write-site label (`ckpt.gen`, `job.spec`,
        /// `job.events`, `job.result`, `job.cancel`,
        /// `daemon.endpoint`, ...).
        site: String,
        /// Deterministic failure label (`enospc`, `sync_fail`,
        /// `rename_fail`, `torn_write`, `dir_sync_fail`, or `io` for an
        /// unclassified filesystem error).
        detail: String,
    },
    /// The daemon refused a connection because its concurrent-connection
    /// cap was reached; the socket got a typed backpressure reply and
    /// was closed without spawning a handler thread.
    ConnShed {
        /// Connections being served when the cap fired.
        active: u64,
        /// The configured cap.
        limit: u64,
    },
    /// A connection hit its read or write deadline and was closed so it
    /// could not pin a serve thread.
    ConnStalled {
        /// Which direction stalled: `"read"` or `"write"`.
        phase: String,
    },
    /// The accept loop saw an `accept(2)` error (e.g. EMFILE) and backed
    /// off with a bounded sleep instead of hot-spinning.
    AcceptBackoff {
        /// Consecutive accept errors so far.
        errors: u64,
        /// The sleep applied before the next accept attempt.
        backoff_ms: u64,
    },
    /// A submission carried a dedupe key the daemon had already
    /// accepted; the original job id was returned instead of enqueueing
    /// a duplicate.
    DuplicateSubmit {
        /// The job id of the original submission.
        job: u64,
        /// Tenant the duplicate arrived under.
        tenant: String,
    },
}

impl SearchEvent {
    /// The event's `"type"` discriminator.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            SearchEvent::RunStart { .. } => "run_start",
            SearchEvent::GenerationStart { .. } => "generation_start",
            SearchEvent::GenerationEnd { .. } => "generation_end",
            SearchEvent::EvalCompleted { .. } => "eval_completed",
            SearchEvent::EvalBatch { .. } => "eval_batch",
            SearchEvent::CacheShardContended { .. } => "cache_shard_contended",
            SearchEvent::EvalAttemptFailed { .. } => "eval_attempt_failed",
            SearchEvent::EvalRetried { .. } => "eval_retried",
            SearchEvent::EvalRecovered { .. } => "eval_recovered",
            SearchEvent::GenomeQuarantined { .. } => "genome_quarantined",
            SearchEvent::MutationHintApplied { .. } => "mutation_hint_applied",
            SearchEvent::ImportanceDecayed { .. } => "importance_decayed",
            SearchEvent::CrossoverApplied { .. } => "crossover_applied",
            SearchEvent::SelectionInvoked { .. } => "selection_invoked",
            SearchEvent::ParetoUpdated { .. } => "pareto_updated",
            SearchEvent::SpanEnd { .. } => "span_end",
            SearchEvent::RunEnd { .. } => "run_end",
            SearchEvent::CheckpointWritten { .. } => "checkpoint_written",
            SearchEvent::CheckpointRestored { .. } => "checkpoint_restored",
            SearchEvent::CheckpointCorruptSkipped { .. } => "checkpoint_corrupt_skipped",
            SearchEvent::RunInterrupted { .. } => "run_interrupted",
            SearchEvent::RunResumed { .. } => "run_resumed",
            SearchEvent::WatchdogFired { .. } => "watchdog_fired",
            SearchEvent::HedgeIssued { .. } => "hedge_issued",
            SearchEvent::HedgeResolved { .. } => "hedge_resolved",
            SearchEvent::BreakerTransition { .. } => "breaker_transition",
            SearchEvent::EvalShed => "eval_shed",
            SearchEvent::ChildSpawned { .. } => "child_spawned",
            SearchEvent::ChildKilled { .. } => "child_killed",
            SearchEvent::ChildRespawned { .. } => "child_respawned",
            SearchEvent::ChildProtocolError { .. } => "child_protocol_error",
            SearchEvent::JobQueued { .. } => "job_queued",
            SearchEvent::JobStarted { .. } => "job_started",
            SearchEvent::JobFinished { .. } => "job_finished",
            SearchEvent::JobCancelled { .. } => "job_cancelled",
            SearchEvent::JobRejected { .. } => "job_rejected",
            SearchEvent::JobAdopted { .. } => "job_adopted",
            SearchEvent::DurableWriteFailed { .. } => "durable_write_failed",
            SearchEvent::ConnShed { .. } => "conn_shed",
            SearchEvent::ConnStalled { .. } => "conn_stalled",
            SearchEvent::AcceptBackoff { .. } => "accept_backoff",
            SearchEvent::DuplicateSubmit { .. } => "duplicate_submit",
        }
    }

    /// Serializes the event as one JSON object (one JSONL line, without
    /// the trailing newline).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut o = JsonObj::new();
        o.str("type", self.kind());
        match self {
            SearchEvent::RunStart { strategy, seed, params, population, generations } => {
                o.str("strategy", strategy)
                    .u64("seed", *seed)
                    .arr_str("params", params)
                    .u64("population", *population as u64)
                    .u64("generations", u64::from(*generations));
            }
            SearchEvent::GenerationStart { generation } => {
                o.u64("generation", u64::from(*generation));
            }
            SearchEvent::GenerationEnd {
                generation,
                best,
                mean,
                best_so_far,
                distinct_evals,
                cache_hits,
                infeasible,
            } => {
                o.u64("generation", u64::from(*generation))
                    .f64("best", *best)
                    .f64("mean", *mean)
                    .f64("best_so_far", *best_so_far)
                    .u64("distinct_evals", *distinct_evals)
                    .u64("cache_hits", *cache_hits)
                    .u64("infeasible", *infeasible);
            }
            SearchEvent::EvalCompleted { cached, feasible, tool_secs } => {
                o.bool("cached", *cached).bool("feasible", *feasible).u64("tool_secs", *tool_secs);
            }
            SearchEvent::EvalBatch { generation, size, workers } => {
                o.u64("generation", u64::from(*generation))
                    .u64("size", *size as u64)
                    .u64("workers", *workers as u64);
            }
            SearchEvent::CacheShardContended { shard } => {
                o.u64("shard", u64::from(*shard));
            }
            SearchEvent::EvalAttemptFailed { kind, attempt, retryable } => {
                o.str("kind", kind.as_str())
                    .u64("attempt", u64::from(*attempt))
                    .bool("retryable", *retryable);
            }
            SearchEvent::EvalRetried { attempt, backoff_nanos } => {
                o.u64("attempt", u64::from(*attempt)).u64("backoff_nanos", *backoff_nanos);
            }
            SearchEvent::EvalRecovered { failed_attempts } => {
                o.u64("failed_attempts", u64::from(*failed_attempts));
            }
            SearchEvent::GenomeQuarantined { attempts, kind } => {
                o.u64("attempts", u64::from(*attempts)).str("kind", kind.as_str());
            }
            SearchEvent::MutationHintApplied { generation, param, hint_kind, accepted } => {
                o.u64("generation", u64::from(*generation))
                    .u64("param", u64::from(*param))
                    .str("hint_kind", hint_kind.as_str())
                    .bool("accepted", *accepted);
            }
            SearchEvent::ImportanceDecayed { generation, min_weight, max_weight, mean_weight } => {
                o.u64("generation", u64::from(*generation))
                    .f64("min_weight", *min_weight)
                    .f64("max_weight", *max_weight)
                    .f64("mean_weight", *mean_weight);
            }
            SearchEvent::CrossoverApplied { generation, kind } => {
                o.u64("generation", u64::from(*generation)).str("kind", kind);
            }
            SearchEvent::SelectionInvoked { generation, kind } => {
                o.u64("generation", u64::from(*generation)).str("kind", kind);
            }
            SearchEvent::ParetoUpdated { size } => {
                o.u64("size", *size as u64);
            }
            SearchEvent::SpanEnd { name, nanos } => {
                o.str("name", name).u64("nanos", *nanos);
            }
            SearchEvent::RunEnd { best_value, distinct_evals, wall_nanos } => {
                o.f64("best_value", *best_value)
                    .u64("distinct_evals", *distinct_evals)
                    .u64("wall_nanos", *wall_nanos);
            }
            SearchEvent::CheckpointWritten { generation, bytes, write_nanos, path } => {
                o.u64("generation", u64::from(*generation))
                    .u64("bytes", *bytes)
                    .u64("write_nanos", *write_nanos)
                    .str("path", path);
            }
            SearchEvent::CheckpointRestored { generation, path } => {
                o.u64("generation", u64::from(*generation)).str("path", path);
            }
            SearchEvent::CheckpointCorruptSkipped { path, reason } => {
                o.str("path", path).str("reason", reason);
            }
            SearchEvent::RunInterrupted { generation, reason } => {
                o.u64("generation", u64::from(*generation)).str("reason", reason);
            }
            SearchEvent::RunResumed { strategy, seed, generation } => {
                o.str("strategy", strategy)
                    .u64("seed", *seed)
                    .u64("generation", u64::from(*generation));
            }
            SearchEvent::WatchdogFired { attempt, limit_ms, late_result_discarded } => {
                o.u64("attempt", u64::from(*attempt))
                    .u64("limit_ms", *limit_ms)
                    .bool("late_result_discarded", *late_result_discarded);
            }
            SearchEvent::HedgeIssued { attempt } => {
                o.u64("attempt", u64::from(*attempt));
            }
            SearchEvent::HedgeResolved { won } => {
                o.bool("won", *won);
            }
            SearchEvent::BreakerTransition { from, to } => {
                o.str("from", from.as_str()).str("to", to.as_str());
            }
            SearchEvent::EvalShed => {}
            SearchEvent::ChildSpawned { slot } => {
                o.u64("slot", u64::from(*slot));
            }
            SearchEvent::ChildKilled { slot, reason } => {
                o.u64("slot", u64::from(*slot)).str("reason", reason);
            }
            SearchEvent::ChildRespawned { slot, backoff_ms } => {
                o.u64("slot", u64::from(*slot)).u64("backoff_ms", *backoff_ms);
            }
            SearchEvent::ChildProtocolError { slot, detail } => {
                o.u64("slot", u64::from(*slot)).str("detail", detail);
            }
            SearchEvent::JobQueued { job, tenant } => {
                o.u64("job", *job).str("tenant", tenant);
            }
            SearchEvent::JobStarted { job } => {
                o.u64("job", *job);
            }
            SearchEvent::JobFinished { job, outcome } => {
                o.u64("job", *job).str("outcome", outcome);
            }
            SearchEvent::JobCancelled { job } => {
                o.u64("job", *job);
            }
            SearchEvent::JobRejected { tenant, reason } => {
                o.str("tenant", tenant).str("reason", reason);
            }
            SearchEvent::JobAdopted { job, resumable } => {
                o.u64("job", *job).bool("resumable", *resumable);
            }
            SearchEvent::DurableWriteFailed { site, detail } => {
                o.str("site", site).str("detail", detail);
            }
            SearchEvent::ConnShed { active, limit } => {
                o.u64("active", *active).u64("limit", *limit);
            }
            SearchEvent::ConnStalled { phase } => {
                o.str("phase", phase);
            }
            SearchEvent::AcceptBackoff { errors, backoff_ms } => {
                o.u64("errors", *errors).u64("backoff_ms", *backoff_ms);
            }
            SearchEvent::DuplicateSubmit { job, tenant } => {
                o.u64("job", *job).str("tenant", tenant);
            }
        }
        o.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::is_valid_json;

    fn samples() -> Vec<SearchEvent> {
        vec![
            SearchEvent::RunStart {
                strategy: "nautilus-strong".into(),
                seed: 7,
                params: vec!["depth".into(), "width".into()],
                population: 10,
                generations: 80,
            },
            SearchEvent::GenerationStart { generation: 0 },
            SearchEvent::GenerationEnd {
                generation: 0,
                best: 10.0,
                mean: f64::NAN,
                best_so_far: 10.0,
                distinct_evals: 10,
                cache_hits: 0,
                infeasible: 2,
            },
            SearchEvent::EvalCompleted { cached: false, feasible: true, tool_secs: 300 },
            SearchEvent::EvalBatch { generation: 2, size: 7, workers: 4 },
            SearchEvent::CacheShardContended { shard: 3 },
            SearchEvent::EvalAttemptFailed {
                kind: FailureKind::Transient,
                attempt: 1,
                retryable: true,
            },
            SearchEvent::EvalRetried { attempt: 1, backoff_nanos: 2_000_000 },
            SearchEvent::EvalRecovered { failed_attempts: 1 },
            SearchEvent::GenomeQuarantined { attempts: 3, kind: FailureKind::Persistent },
            SearchEvent::MutationHintApplied {
                generation: 3,
                param: 1,
                hint_kind: HintKind::Bias,
                accepted: true,
            },
            SearchEvent::ImportanceDecayed {
                generation: 3,
                min_weight: 1.0,
                max_weight: 95.0,
                mean_weight: 31.5,
            },
            SearchEvent::CrossoverApplied { generation: 3, kind: "one-point".into() },
            SearchEvent::SelectionInvoked { generation: 3, kind: "tournament".into() },
            SearchEvent::ParetoUpdated { size: 4 },
            SearchEvent::SpanEnd { name: "scoring", nanos: 12345 },
            SearchEvent::RunEnd { best_value: 1.5, distinct_evals: 204, wall_nanos: 1 },
            SearchEvent::CheckpointWritten {
                generation: 12,
                bytes: 4096,
                write_nanos: 150_000,
                path: "ckpt/ckpt-00000012.nckpt".into(),
            },
            SearchEvent::CheckpointRestored {
                generation: 12,
                path: "ckpt/ckpt-00000012.nckpt".into(),
            },
            SearchEvent::CheckpointCorruptSkipped {
                path: "ckpt/ckpt-00000013.nckpt".into(),
                reason: "crc mismatch".into(),
            },
            SearchEvent::RunInterrupted { generation: 13, reason: "deadline_exceeded".into() },
            SearchEvent::RunResumed { strategy: "baseline".into(), seed: 7, generation: 13 },
            SearchEvent::WatchdogFired {
                attempt: 2,
                limit_ms: 10_000,
                late_result_discarded: true,
            },
            SearchEvent::HedgeIssued { attempt: 1 },
            SearchEvent::HedgeResolved { won: true },
            SearchEvent::BreakerTransition { from: HealthState::Closed, to: HealthState::Open },
            SearchEvent::EvalShed,
            SearchEvent::ChildSpawned { slot: 0 },
            SearchEvent::ChildKilled { slot: 1, reason: "io_timeout".into() },
            SearchEvent::ChildRespawned { slot: 1, backoff_ms: 2 },
            SearchEvent::ChildProtocolError { slot: 0, detail: "bad_crc".into() },
            SearchEvent::JobQueued { job: 1, tenant: "acme".into() },
            SearchEvent::JobStarted { job: 1 },
            SearchEvent::JobFinished { job: 1, outcome: "done".into() },
            SearchEvent::JobCancelled { job: 2 },
            SearchEvent::JobRejected { tenant: "acme".into(), reason: "queue_full".into() },
            SearchEvent::JobAdopted { job: 3, resumable: true },
            SearchEvent::DurableWriteFailed { site: "ckpt.gen".into(), detail: "enospc".into() },
            SearchEvent::ConnShed { active: 64, limit: 64 },
            SearchEvent::ConnStalled { phase: "read".into() },
            SearchEvent::AcceptBackoff { errors: 3, backoff_ms: 40 },
            SearchEvent::DuplicateSubmit { job: 1, tenant: "acme".into() },
        ]
    }

    #[test]
    fn every_event_serializes_to_valid_json_with_type_tag() {
        for e in samples() {
            let json = e.to_json();
            assert!(is_valid_json(&json), "invalid: {json}");
            assert!(
                json.starts_with(&format!("{{\"type\":\"{}\"", e.kind())),
                "missing type tag: {json}"
            );
        }
    }

    #[test]
    fn nan_fields_become_null() {
        let e = SearchEvent::GenerationEnd {
            generation: 1,
            best: f64::NAN,
            mean: f64::NAN,
            best_so_far: f64::NAN,
            distinct_evals: 0,
            cache_hits: 0,
            infeasible: 0,
        };
        let json = e.to_json();
        assert!(json.contains("\"best\":null"), "{json}");
        assert!(is_valid_json(&json));
    }

    #[test]
    fn hint_kind_labels_are_stable() {
        let labels: Vec<&str> = HintKind::ALL.iter().map(|k| k.as_str()).collect();
        assert_eq!(labels, ["uniform", "step", "bias", "target", "fallback"]);
        assert_eq!(HintKind::Bias.to_string(), "bias");
    }

    #[test]
    fn failure_kind_labels_are_stable() {
        let labels: Vec<&str> = FailureKind::ALL.iter().map(|k| k.as_str()).collect();
        assert_eq!(labels, ["transient", "timeout", "corrupted", "persistent"]);
        assert_eq!(FailureKind::Timeout.to_string(), "timeout");
    }

    #[test]
    fn health_state_labels_are_stable() {
        let labels: Vec<&str> = HealthState::ALL.iter().map(|s| s.as_str()).collect();
        assert_eq!(labels, ["closed", "open", "half_open"]);
        assert_eq!(HealthState::HalfOpen.to_string(), "half_open");
    }

    #[test]
    fn supervision_event_kinds_are_stable() {
        let e =
            SearchEvent::BreakerTransition { from: HealthState::Open, to: HealthState::HalfOpen };
        assert_eq!(e.kind(), "breaker_transition");
        assert!(e.to_json().contains("\"from\":\"open\""), "{}", e.to_json());
        assert!(e.to_json().contains("\"to\":\"half_open\""), "{}", e.to_json());
        assert_eq!(SearchEvent::EvalShed.to_json(), "{\"type\":\"eval_shed\"}");
    }

    #[test]
    fn subprocess_event_kinds_are_stable() {
        let e = SearchEvent::ChildKilled { slot: 3, reason: "io_timeout".into() };
        assert_eq!(e.kind(), "child_killed");
        assert!(e.to_json().contains("\"reason\":\"io_timeout\""), "{}", e.to_json());
        assert_eq!(
            SearchEvent::ChildSpawned { slot: 0 }.to_json(),
            "{\"type\":\"child_spawned\",\"slot\":0}"
        );
        let e = SearchEvent::ChildRespawned { slot: 1, backoff_ms: 4 };
        assert!(e.to_json().contains("\"backoff_ms\":4"), "{}", e.to_json());
        let e = SearchEvent::ChildProtocolError { slot: 0, detail: "bad_crc".into() };
        assert!(e.to_json().contains("\"detail\":\"bad_crc\""), "{}", e.to_json());
    }

    #[test]
    fn job_lifecycle_event_kinds_are_stable() {
        assert_eq!(
            SearchEvent::JobQueued { job: 7, tenant: "acme".into() }.to_json(),
            "{\"type\":\"job_queued\",\"job\":7,\"tenant\":\"acme\"}"
        );
        assert_eq!(
            SearchEvent::JobStarted { job: 7 }.to_json(),
            "{\"type\":\"job_started\",\"job\":7}"
        );
        let e = SearchEvent::JobFinished { job: 7, outcome: "cancelled".into() };
        assert!(e.to_json().contains("\"outcome\":\"cancelled\""), "{}", e.to_json());
        let e = SearchEvent::JobRejected { tenant: "acme".into(), reason: "queue_full".into() };
        assert!(e.to_json().contains("\"reason\":\"queue_full\""), "{}", e.to_json());
        let e = SearchEvent::JobAdopted { job: 3, resumable: false };
        assert!(e.to_json().contains("\"resumable\":false"), "{}", e.to_json());
        assert_eq!(
            SearchEvent::JobCancelled { job: 2 }.to_json(),
            "{\"type\":\"job_cancelled\",\"job\":2}"
        );
    }

    #[test]
    fn hostile_environment_event_kinds_are_stable() {
        assert_eq!(
            SearchEvent::DurableWriteFailed { site: "job.result".into(), detail: "enospc".into() }
                .to_json(),
            "{\"type\":\"durable_write_failed\",\"site\":\"job.result\",\"detail\":\"enospc\"}"
        );
        assert_eq!(
            SearchEvent::ConnShed { active: 8, limit: 8 }.to_json(),
            "{\"type\":\"conn_shed\",\"active\":8,\"limit\":8}"
        );
        assert_eq!(
            SearchEvent::ConnStalled { phase: "read".into() }.to_json(),
            "{\"type\":\"conn_stalled\",\"phase\":\"read\"}"
        );
        assert_eq!(
            SearchEvent::AcceptBackoff { errors: 2, backoff_ms: 20 }.to_json(),
            "{\"type\":\"accept_backoff\",\"errors\":2,\"backoff_ms\":20}"
        );
        assert_eq!(
            SearchEvent::DuplicateSubmit { job: 4, tenant: "acme".into() }.to_json(),
            "{\"type\":\"duplicate_submit\",\"job\":4,\"tenant\":\"acme\"}"
        );
    }
}
