//! Minimal binary codec shared by durable-state writers.
//!
//! The checkpoint subsystem (`nautilus-ga`) and the report snapshot
//! (this crate) both persist state as small hand-rolled binary records —
//! no serde backend exists in the offline build, and the formats are
//! simple enough that an explicit little-endian codec is clearer than a
//! generic one. All integers are little-endian; floats are IEEE-754 bit
//! patterns (NaN round-trips bit-exactly); strings and byte blobs are
//! `u64` length-prefixed UTF-8/raw bytes.
//!
//! Decoding is *total*: every read returns `Err` (never panics) on
//! truncated or malformed input, so corrupt records degrade to a reported
//! error rather than a crash.

/// Error produced by [`WireReader`] on truncated or malformed input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError(pub String);

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed record: {}", self.0)
    }
}

impl std::error::Error for WireError {}

/// Append-only little-endian encoder.
#[derive(Debug, Default, Clone)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// A fresh, empty writer.
    #[must_use]
    pub fn new() -> WireWriter {
        WireWriter::default()
    }

    /// Consumes the writer, returning the encoded bytes.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes encoded so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as a `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Writes an `f64` as its IEEE-754 bit pattern (NaN-preserving).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Writes a bool as one byte (0 or 1).
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    /// Writes a length-prefixed byte blob.
    pub fn bytes(&mut self, v: &[u8]) {
        self.usize(v.len());
        self.buf.extend_from_slice(v);
    }
}

/// Cursor-based little-endian decoder over a byte slice.
#[derive(Debug, Clone)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// A reader positioned at the start of `buf`.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> WireReader<'a> {
        WireReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fails unless every byte has been consumed — catches records with
    /// trailing garbage that a length-prefixed format should never have.
    pub fn finish(&self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError(format!("{} trailing bytes", self.remaining())))
        }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError(format!(
                "truncated {what}: need {n} bytes, {} left",
                self.remaining()
            )));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4, "u32")?.try_into().expect("4-byte slice")))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8, "u64")?.try_into().expect("8-byte slice")))
    }

    /// Reads a `u64` and converts it to `usize`, rejecting lengths that
    /// exceed the remaining input (a corrupt length prefix cannot force a
    /// huge allocation).
    pub fn len_prefix(&mut self) -> Result<usize, WireError> {
        let v = self.u64()?;
        let n = usize::try_from(v).map_err(|_| WireError(format!("length {v} overflows")))?;
        Ok(n)
    }

    /// Reads an `f64` from its bit pattern.
    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a bool, rejecting anything but 0 or 1.
    pub fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(WireError(format!("bool byte {other}"))),
        }
    }

    /// Reads a length-prefixed byte blob.
    pub fn bytes(&mut self) -> Result<&'a [u8], WireError> {
        let n = self.len_prefix()?;
        self.take(n, "blob")
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, WireError> {
        let raw = self.bytes()?;
        String::from_utf8(raw.to_vec()).map_err(|_| WireError("invalid utf-8".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        let mut w = WireWriter::new();
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX);
        w.usize(42);
        w.f64(f64::NAN);
        w.f64(-0.0);
        w.bool(true);
        w.str("hello ☂");
        w.bytes(&[1, 2, 3]);
        assert!(!w.is_empty());
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.len_prefix().unwrap(), 42);
        assert!(r.f64().unwrap().is_nan(), "NaN must round-trip");
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.bool().unwrap());
        assert_eq!(r.str().unwrap(), "hello ☂");
        assert_eq!(r.bytes().unwrap(), &[1, 2, 3]);
        r.finish().unwrap();
    }

    #[test]
    fn every_truncation_errors_instead_of_panicking() {
        let mut w = WireWriter::new();
        w.u64(123);
        w.str("abc");
        w.f64(1.5);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = WireReader::new(&bytes[..cut]);
            let ok = r.u64().and_then(|_| r.str()).and_then(|_| r.f64()).is_ok();
            assert!(!ok, "cut at {cut} silently parsed");
        }
    }

    #[test]
    fn bad_bool_and_bad_utf8_are_rejected() {
        let mut r = WireReader::new(&[2]);
        assert!(r.bool().is_err());
        let mut w = WireWriter::new();
        w.bytes(&[0xFF, 0xFE]);
        let bytes = w.into_bytes();
        assert!(WireReader::new(&bytes).str().is_err());
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let mut w = WireWriter::new();
        w.u64(u64::MAX);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert!(r.bytes().is_err(), "a huge length prefix must not allocate");
    }

    #[test]
    fn finish_rejects_trailing_garbage() {
        let mut w = WireWriter::new();
        w.u8(1);
        w.u8(2);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        r.u8().unwrap();
        assert!(r.finish().is_err());
        r.u8().unwrap();
        r.finish().unwrap();
    }
}
