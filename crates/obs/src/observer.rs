//! The [`SearchObserver`] trait, the no-op default, fan-out composition
//! and span-style scoped timers.

use std::time::Instant;

use crate::event::SearchEvent;

/// A receiver of structured search-telemetry events.
///
/// Implementations use interior mutability (`&self` receivers) so one
/// observer can be shared by the engine, the genetic operators and the
/// synthesis-job runner of a run.
///
/// Emitters MUST guard event construction with [`SearchObserver::enabled`]
/// so the disabled path never allocates:
///
/// ```
/// use nautilus_obs::{noop, SearchEvent, SearchObserver};
/// let obs: &dyn SearchObserver = noop();
/// if obs.enabled() {
///     obs.on_event(&SearchEvent::GenerationStart { generation: 0 });
/// }
/// ```
pub trait SearchObserver: Send + Sync {
    /// Whether this observer wants events at all. Emitters skip event
    /// construction entirely when this is `false`, so the no-op observer
    /// costs one predictable branch per emission site.
    fn enabled(&self) -> bool {
        true
    }

    /// Receives one event.
    fn on_event(&self, event: &SearchEvent);
}

/// The default observer: discards everything, reports itself disabled.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopObserver;

impl SearchObserver for NoopObserver {
    fn enabled(&self) -> bool {
        false
    }

    fn on_event(&self, _event: &SearchEvent) {}
}

/// The shared no-op observer instance used as every default.
#[must_use]
pub fn noop() -> &'static NoopObserver {
    static NOOP: NoopObserver = NoopObserver;
    &NOOP
}

/// Broadcasts each event to several observers.
///
/// `enabled()` is true when *any* member is enabled; disabled members are
/// skipped on delivery.
pub struct Fanout<'a> {
    observers: Vec<&'a dyn SearchObserver>,
}

impl std::fmt::Debug for Fanout<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fanout").field("observers", &self.observers.len()).finish()
    }
}

impl<'a> Fanout<'a> {
    /// Combines any number of observers.
    #[must_use]
    pub fn new(observers: Vec<&'a dyn SearchObserver>) -> Self {
        Fanout { observers }
    }

    /// Combines exactly two observers.
    #[must_use]
    pub fn pair(a: &'a dyn SearchObserver, b: &'a dyn SearchObserver) -> Self {
        Fanout { observers: vec![a, b] }
    }
}

impl SearchObserver for Fanout<'_> {
    fn enabled(&self) -> bool {
        self.observers.iter().any(|o| o.enabled())
    }

    fn on_event(&self, event: &SearchEvent) {
        for o in &self.observers {
            if o.enabled() {
                o.on_event(event);
            }
        }
    }
}

/// A scoped wall-clock timer: emits [`SearchEvent::SpanEnd`] on drop.
///
/// Created by [`span`]. When the observer is disabled the guard is inert
/// (no clock read, no event).
#[must_use = "a span measures until it is dropped"]
pub struct SpanGuard<'a> {
    observer: &'a dyn SearchObserver,
    name: &'static str,
    start: Option<Instant>,
}

impl std::fmt::Debug for SpanGuard<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanGuard").field("name", &self.name).finish()
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.observer.on_event(&SearchEvent::SpanEnd { name: self.name, nanos });
        }
    }
}

/// Opens a scoped timer named `name` against `observer`.
pub fn span<'a>(observer: &'a dyn SearchObserver, name: &'static str) -> SpanGuard<'a> {
    SpanGuard {
        observer,
        name,
        start: if observer.enabled() { Some(Instant::now()) } else { None },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::InMemorySink;

    #[test]
    fn noop_is_disabled_and_ignores_events() {
        let n = noop();
        assert!(!n.enabled());
        n.on_event(&SearchEvent::GenerationStart { generation: 1 });
    }

    #[test]
    fn fanout_delivers_to_all_enabled_members() {
        let a = InMemorySink::new();
        let b = InMemorySink::new();
        let fan = Fanout::new(vec![&a, noop(), &b]);
        assert!(fan.enabled());
        fan.on_event(&SearchEvent::ParetoUpdated { size: 3 });
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
        let only_noop = Fanout::new(vec![noop()]);
        assert!(!only_noop.enabled());
    }

    #[test]
    fn span_emits_one_span_end_event() {
        let sink = InMemorySink::new();
        {
            let _g = span(&sink, "scoring");
            std::hint::black_box(17 * 3);
        }
        let events = sink.events();
        assert_eq!(events.len(), 1);
        match &events[0] {
            SearchEvent::SpanEnd { name, .. } => assert_eq!(*name, "scoring"),
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn span_against_disabled_observer_is_inert() {
        let g = span(noop(), "idle");
        assert!(g.start.is_none());
        drop(g);
    }
}
