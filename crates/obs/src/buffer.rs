//! Deterministic capture of worker-side events during batched evaluation.
//!
//! Batched generations evaluate cache misses on worker threads. If those
//! workers emitted straight into the shared observer, the event stream
//! would interleave in scheduler order — different on every run and at
//! every worker count. Instead, the engine wraps the evaluation path's
//! observer in a [`BatchEventBuffer`] and runs each miss inside
//! [`capture_events`]: events raised on the worker are parked in a
//! thread-local buffer attached to that miss's result, and the merge
//! thread replays them in deterministic miss order. The merged stream is
//! byte-identical to what a serial run emits.
//!
//! Outside a capture frame the buffer is a transparent pass-through, so
//! serial evaluation paths are unaffected.

use std::cell::RefCell;

use crate::event::SearchEvent;
use crate::observer::SearchObserver;

thread_local! {
    /// Stack of active capture frames on this thread (innermost last).
    static CAPTURE_STACK: RefCell<Vec<Vec<SearchEvent>>> = const { RefCell::new(Vec::new()) };
}

/// An observer wrapper that diverts events into the active capture frame
/// of the emitting thread, and forwards unchanged when none is active.
pub struct BatchEventBuffer<'a> {
    inner: &'a dyn SearchObserver,
}

impl<'a> BatchEventBuffer<'a> {
    /// Wraps `inner`.
    #[must_use]
    pub fn new(inner: &'a dyn SearchObserver) -> BatchEventBuffer<'a> {
        BatchEventBuffer { inner }
    }
}

impl std::fmt::Debug for BatchEventBuffer<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchEventBuffer").field("enabled", &self.inner.enabled()).finish()
    }
}

impl SearchObserver for BatchEventBuffer<'_> {
    fn enabled(&self) -> bool {
        self.inner.enabled()
    }

    fn on_event(&self, event: &SearchEvent) {
        let captured = CAPTURE_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            match stack.last_mut() {
                Some(frame) => {
                    frame.push(event.clone());
                    true
                }
                None => false,
            }
        });
        if !captured {
            self.inner.on_event(event);
        }
    }
}

/// Runs `f` with a fresh capture frame on this thread, returning its
/// result alongside every event a [`BatchEventBuffer`] diverted while the
/// frame was innermost.
///
/// Frames nest: an inner `capture_events` shadows the outer one for its
/// duration. A panic in `f` propagates and leaks the frame, which is fine
/// — batch workers run under `std::thread::scope`, so a worker panic
/// tears down the whole run.
pub fn capture_events<R>(f: impl FnOnce() -> R) -> (R, Vec<SearchEvent>) {
    CAPTURE_STACK.with(|stack| stack.borrow_mut().push(Vec::new()));
    let result = f();
    let events =
        CAPTURE_STACK.with(|stack| stack.borrow_mut().pop().expect("capture frame missing"));
    (result, events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::InMemorySink;

    fn probe(shard: u32) -> SearchEvent {
        SearchEvent::CacheShardContended { shard }
    }

    #[test]
    fn forwards_transparently_outside_a_capture_frame() {
        let sink = InMemorySink::new();
        let buffer = BatchEventBuffer::new(&sink);
        buffer.on_event(&probe(1));
        assert_eq!(sink.events(), vec![probe(1)]);
        assert!(buffer.enabled());
    }

    #[test]
    fn captures_instead_of_forwarding_inside_a_frame() {
        let sink = InMemorySink::new();
        let buffer = BatchEventBuffer::new(&sink);
        let ((), captured) = capture_events(|| {
            buffer.on_event(&probe(7));
            buffer.on_event(&probe(8));
        });
        assert!(sink.is_empty(), "captured events must not reach the inner observer");
        assert_eq!(captured, vec![probe(7), probe(8)]);
        // After the frame closes the buffer forwards again.
        buffer.on_event(&probe(9));
        assert_eq!(sink.events(), vec![probe(9)]);
    }

    #[test]
    fn frames_nest_innermost_wins() {
        let sink = InMemorySink::new();
        let buffer = BatchEventBuffer::new(&sink);
        let ((), outer) = capture_events(|| {
            buffer.on_event(&probe(1));
            let ((), inner) = capture_events(|| buffer.on_event(&probe(2)));
            assert_eq!(inner, vec![probe(2)]);
            buffer.on_event(&probe(3));
        });
        assert_eq!(outer, vec![probe(1), probe(3)]);
        assert!(sink.is_empty());
    }

    #[test]
    fn capture_is_per_thread() {
        let sink = InMemorySink::new();
        let buffer = BatchEventBuffer::new(&sink);
        let ((), captured) = capture_events(|| {
            // Another thread with no frame of its own forwards directly.
            std::thread::scope(|scope| {
                scope.spawn(|| buffer.on_event(&probe(11)));
            });
            buffer.on_event(&probe(12));
        });
        assert_eq!(captured, vec![probe(12)]);
        assert_eq!(sink.events(), vec![probe(11)]);
    }

    #[test]
    fn enabled_tracks_the_inner_observer() {
        let noop = crate::observer::NoopObserver;
        let buffer = BatchEventBuffer::new(&noop);
        assert!(!buffer.enabled());
    }
}
