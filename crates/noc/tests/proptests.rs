//! Property-based tests for the NoC substrate models.

use nautilus_ga::Direction;
use nautilus_noc::connect::{NocModel, Topology};
use nautilus_noc::router::RouterModel;
use nautilus_synth::CostModel;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    /// Every swept router design synthesizes to sane, deterministic metrics.
    #[test]
    fn router_metrics_are_sane(seed in any::<u64>()) {
        let model = RouterModel::swept();
        let mut rng = StdRng::seed_from_u64(seed);
        let luts = model.catalog().require("luts").unwrap();
        let fmax = model.catalog().require("fmax").unwrap();
        let latency = model.catalog().require("latency").unwrap();
        for _ in 0..16 {
            let g = model.space().random_genome(&mut rng);
            let m = model.evaluate(&g).expect("swept router points are feasible");
            let again = model.evaluate(&g);
            prop_assert_eq!(again.as_ref(), Some(&m), "non-deterministic");
            prop_assert!(m.get(luts) >= 300.0, "LUTs {}", m.get(luts));
            prop_assert!(m.get(luts) <= 40_000.0, "LUTs {}", m.get(luts));
            prop_assert!(m.get(fmax) >= 55.0, "fmax {}", m.get(fmax));
            prop_assert!(m.get(fmax) <= 400.0, "fmax {}", m.get(fmax));
            prop_assert!((2.0..=6.0).contains(&m.get(latency)), "latency {}", m.get(latency));
        }
    }

    /// The full 42-parameter model is total over its space.
    #[test]
    fn full_router_model_is_total(seed in any::<u64>()) {
        let model = RouterModel::full();
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..8 {
            let g = model.space().random_genome(&mut rng);
            prop_assert!(model.evaluate(&g).is_some());
        }
    }

    /// Topology structure invariants hold across endpoint scales.
    #[test]
    fn topology_structure_invariants(exp in 2u32..6) {
        let endpoints = 1usize << (2 * exp); // 16, 64, 256, 1024
        for t in Topology::ALL {
            let s = t.structure(endpoints);
            prop_assert!(s.routers > 0);
            prop_assert!(s.router_radix >= 3);
            prop_assert!(s.channels >= s.bisection_channels,
                "{t}: {} channels < {} bisection", s.channels, s.bisection_channels);
            prop_assert!(s.avg_hops >= 1.0);
            // No router can terminate more links than its radix allows.
            prop_assert!(s.channels <= s.routers * s.router_radix);
        }
    }

    /// Network metrics scale coherently: a wider flit never lowers the
    /// bisection bandwidth, all else equal.
    #[test]
    fn wider_flits_mean_more_bandwidth(seed in any::<u64>()) {
        let model = NocModel::new(64);
        let space = model.space();
        let width = space.id("flit_width").unwrap();
        let bw = model.catalog().require("bisection_gbps").unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let g = space.random_genome(&mut rng);
        let mut narrow = g.clone();
        narrow.set_gene(width, 0);
        let mut wide = g;
        wide.set_gene(width, 4);
        let b_narrow = model.evaluate(&narrow).unwrap().get(bw);
        let b_wide = model.evaluate(&wide).unwrap().get(bw);
        // 16x the wires at a mildly lower clock: at least 5x the bandwidth.
        prop_assert!(b_wide > 5.0 * b_narrow, "{b_narrow} -> {b_wide}");
    }
}

/// Deterministic regression: dataset-level figures stay stable.
#[test]
fn router_dataset_summary_is_stable() {
    let model = RouterModel::swept();
    let d = nautilus_synth::Dataset::characterize(&model, 8).unwrap();
    assert_eq!(d.len(), 27_648);
    let luts = nautilus_synth::MetricExpr::metric(d.catalog().require("luts").unwrap());
    let (_, min_luts) = d.best(&luts, Direction::Minimize);
    // Pin the exact surrogate output: any change to the cost model that
    // shifts this value should be a conscious recalibration.
    assert_eq!(min_luts, 851.0);
}
