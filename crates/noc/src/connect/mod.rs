//! The CONNECT-style NoC generator: topologies and ASIC cost model.

mod model;
pub mod sim;
mod topology;

pub use model::NocModel;
pub use topology::{Topology, TopologyStructure};
