//! Network topologies of the CONNECT-style NoC generator.
//!
//! The paper's Figure 2 sweeps 64-endpoint CONNECT networks across eight
//! topology families (different colors in the figure): ring, double ring,
//! their concentrated variants, mesh, torus, fat tree and butterfly. This
//! module captures each family's structural arithmetic: router count and
//! radix, channel count, bisection channel count and average hop count.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A topology family, at a fixed endpoint count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Topology {
    /// Single bidirectional ring, one endpoint per router.
    Ring,
    /// Two parallel bidirectional rings.
    DoubleRing,
    /// Ring with 4 endpoints concentrated per router.
    ConcentratedRing,
    /// Double ring with 4 endpoints per router.
    ConcentratedDoubleRing,
    /// 2-D mesh (√N × √N).
    Mesh,
    /// 2-D torus (√N × √N, wraparound links).
    Torus,
    /// Folded fat tree with full bisection bandwidth.
    FatTree,
    /// Unidirectional k-ary n-fly butterfly.
    Butterfly,
}

impl Topology {
    /// All families, in Figure 2's legend order.
    pub const ALL: [Topology; 8] = [
        Topology::ConcentratedRing,
        Topology::ConcentratedDoubleRing,
        Topology::Ring,
        Topology::DoubleRing,
        Topology::Mesh,
        Topology::Torus,
        Topology::FatTree,
        Topology::Butterfly,
    ];

    /// Display name matching the figure's legend.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Topology::Ring => "Ring",
            Topology::DoubleRing => "Double Ring",
            Topology::ConcentratedRing => "Concentrated Ring",
            Topology::ConcentratedDoubleRing => "Concentrated Double Ring",
            Topology::Mesh => "Mesh",
            Topology::Torus => "Torus",
            Topology::FatTree => "Fat Tree",
            Topology::Butterfly => "Butterfly",
        }
    }

    /// Structural parameters for `endpoints` terminals.
    ///
    /// # Panics
    ///
    /// Panics unless `endpoints` is a power of four of at least 16 (the
    /// concentrated, mesh and indirect families need it; 64 matches the
    /// paper).
    #[must_use]
    pub fn structure(self, endpoints: usize) -> TopologyStructure {
        assert!(
            endpoints >= 16 && endpoints.is_power_of_two() && endpoints.ilog2().is_multiple_of(2),
            "endpoints must be an even power of two >= 16, got {endpoints}"
        );
        let n = endpoints;
        let side = (n as f64).sqrt() as usize; // √N, used by mesh/torus
        match self {
            Topology::Ring => TopologyStructure {
                routers: n,
                router_radix: 3, // 2 ring ports + 1 endpoint
                channels: 2 * n, // n bidirectional ring links
                bisection_channels: 4,
                avg_hops: n as f64 / 4.0,
            },
            Topology::DoubleRing => TopologyStructure {
                routers: n,
                router_radix: 5, // 4 ring ports + 1 endpoint
                channels: 4 * n,
                bisection_channels: 8,
                avg_hops: n as f64 / 4.0,
            },
            Topology::ConcentratedRing => {
                let r = n / 4;
                TopologyStructure {
                    routers: r,
                    router_radix: 6, // 2 ring + 4 endpoints
                    channels: 2 * r,
                    bisection_channels: 4,
                    avg_hops: r as f64 / 4.0 + 1.0,
                }
            }
            Topology::ConcentratedDoubleRing => {
                let r = n / 4;
                TopologyStructure {
                    routers: r,
                    router_radix: 8,
                    channels: 4 * r,
                    bisection_channels: 8,
                    avg_hops: r as f64 / 4.0 + 1.0,
                }
            }
            Topology::Mesh => TopologyStructure {
                routers: n,
                router_radix: 5,
                channels: 2 * 2 * side * (side - 1),
                bisection_channels: 2 * side,
                avg_hops: 2.0 * side as f64 / 3.0,
            },
            Topology::Torus => TopologyStructure {
                routers: n,
                router_radix: 5,
                channels: 2 * 2 * side * side,
                bisection_channels: 4 * side,
                avg_hops: side as f64 / 2.0,
            },
            Topology::FatTree => {
                // Folded Clos from radix-4 building blocks: log4(N) levels of
                // N/4 switches, full bisection.
                let levels = (n as f64).log(4.0).ceil() as usize;
                let per_level = n / 4;
                TopologyStructure {
                    routers: levels * per_level,
                    router_radix: 8, // 4 down + 4 up
                    // Inter-router channels only (endpoint links excluded,
                    // matching the direct topologies' convention).
                    channels: 2 * (levels - 1) * n,
                    bisection_channels: n,
                    avg_hops: 2.0 * levels as f64 * 0.75,
                }
            }
            Topology::Butterfly => {
                // Unidirectional radix-4 n-fly: log4(N) stages of N/4 switches.
                let stages = (n as f64).log(4.0).ceil() as usize;
                let per_stage = n / 4;
                TopologyStructure {
                    routers: stages * per_stage,
                    router_radix: 4,
                    channels: (stages - 1) * n,
                    bisection_channels: n / 2,
                    avg_hops: stages as f64,
                }
            }
        }
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Structural arithmetic of one topology instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TopologyStructure {
    /// Number of routers.
    pub routers: usize,
    /// Network ports per router (endpoint ports included).
    pub router_radix: usize,
    /// Unidirectional inter-router channels.
    pub channels: usize,
    /// Unidirectional channels crossing the bisection cut.
    pub bisection_channels: usize,
    /// Average hop count under uniform random traffic.
    pub avg_hops: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bisection_ordering_matches_intuition_at_64() {
        let bisect = |t: Topology| t.structure(64).bisection_channels;
        assert!(bisect(Topology::Ring) < bisect(Topology::Mesh));
        assert!(bisect(Topology::Mesh) < bisect(Topology::Torus));
        assert!(bisect(Topology::Torus) < bisect(Topology::FatTree));
        assert_eq!(bisect(Topology::Ring), 4);
        assert_eq!(bisect(Topology::Mesh), 16);
        assert_eq!(bisect(Topology::Torus), 32);
        assert_eq!(bisect(Topology::FatTree), 64);
        assert_eq!(bisect(Topology::Butterfly), 32);
    }

    #[test]
    fn concentration_divides_router_count() {
        assert_eq!(Topology::Ring.structure(64).routers, 64);
        assert_eq!(Topology::ConcentratedRing.structure(64).routers, 16);
        assert_eq!(Topology::ConcentratedDoubleRing.structure(64).routers, 16);
    }

    #[test]
    fn mesh_and_torus_channel_counts() {
        let mesh = Topology::Mesh.structure(64);
        // 8x8 mesh: 2 dims * 8 rows * 7 links, bidirectional -> 224 channels.
        assert_eq!(mesh.channels, 224);
        let torus = Topology::Torus.structure(64);
        assert_eq!(torus.channels, 256);
        assert!(torus.avg_hops < mesh.avg_hops);
    }

    #[test]
    fn indirect_networks_have_multiple_stages() {
        let ft = Topology::FatTree.structure(64);
        assert_eq!(ft.routers, 3 * 16);
        let bf = Topology::Butterfly.structure(64);
        assert_eq!(bf.routers, 3 * 16);
        assert!(ft.channels > bf.channels, "fat tree is bidirectional");
    }

    #[test]
    fn labels_are_unique_and_nonempty() {
        let mut seen = std::collections::HashSet::new();
        for t in Topology::ALL {
            assert!(!t.label().is_empty());
            assert!(seen.insert(t.label()));
            assert_eq!(t.to_string(), t.label());
        }
    }

    #[test]
    #[should_panic(expected = "even power of two")]
    fn odd_endpoint_counts_are_rejected() {
        let _ = Topology::Mesh.structure(32);
    }

    #[test]
    #[should_panic(expected = "even power of two")]
    fn one_node_topology_is_rejected() {
        // A 1-endpoint "network" has no routers, channels or bisection;
        // every family's arithmetic would divide by zero downstream.
        let _ = Topology::Ring.structure(1);
    }

    #[test]
    #[should_panic(expected = "even power of two")]
    fn sub_minimum_topology_is_rejected() {
        // 8 is a power of two but below the concentrated/indirect minimum.
        let _ = Topology::FatTree.structure(8);
    }

    #[test]
    fn smallest_valid_network_is_structurally_sound() {
        // 16 endpoints is the smallest count every family supports; all
        // structural quantities must stay positive and non-degenerate.
        for t in Topology::ALL {
            let s = t.structure(16);
            assert!(s.routers >= 4, "{t}: {} routers", s.routers);
            assert!(s.router_radix >= 3, "{t}: radix {}", s.router_radix);
            assert!(s.channels > 0, "{t}: no channels");
            assert!(s.bisection_channels > 0, "{t}: no bisection cut");
            assert!(s.bisection_channels <= s.channels, "{t}: cut exceeds channel count");
            assert!(s.avg_hops > 0.0 && s.avg_hops.is_finite(), "{t}: hops {}", s.avg_hops);
        }
    }

    #[test]
    fn scaling_to_256_endpoints_works() {
        for t in Topology::ALL {
            let s = t.structure(256);
            assert!(s.routers >= 16);
            assert!(s.bisection_channels >= 4);
            assert!(s.avg_hops > 0.0);
        }
    }
}
