//! Flit-level network simulation for CONNECT-style topologies.
//!
//! The paper's characterization runs "FPGA synthesis and/or simulations
//! for each design instance"; the analytic [`super::NocModel`] covers the
//! synthesis side, and this module covers the simulation side: a compact
//! cycle-based, store-and-forward flit simulator over the topology graph,
//! with shortest-path routing, per-channel capacity of one flit per cycle
//! and round-robin channel arbitration. It measures average packet latency
//! and delivered throughput under uniform random traffic, and locates the
//! saturation point — the dynamic counterpart of the model's static peak
//! bisection bandwidth.

use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use super::topology::Topology;

/// A directed channel between two routers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Edge {
    from: usize,
    to: usize,
}

/// The simulated network: routers, channels and routing tables.
#[derive(Debug, Clone)]
pub struct Network {
    topology: Topology,
    endpoints: usize,
    edges: Vec<Edge>,
    /// Outgoing edge indices per router.
    out_edges: Vec<Vec<usize>>,
    /// Router each endpoint attaches to.
    attach: Vec<usize>,
    /// `next_edges[router][dst_router]`: every minimal-distance edge
    /// toward `dst_router` (empty when `router == dst_router`). Flits pick
    /// among them at random (ECMP-style load balancing).
    next_edges: Vec<Vec<Vec<usize>>>,
}

impl Network {
    /// Builds the topology graph and shortest-path routing tables.
    ///
    /// # Panics
    ///
    /// Panics on endpoint counts [`Topology::structure`] rejects, and if
    /// the topology graph fails to connect every endpoint pair (a bug
    /// guard, not an expected outcome).
    #[must_use]
    pub fn build(topology: Topology, endpoints: usize) -> Network {
        // Validates the endpoint count (panics on unsupported values).
        let _ = topology.structure(endpoints);
        let mut edges: Vec<Edge> = Vec::new();
        fn both(edges: &mut Vec<Edge>, a: usize, b: usize) {
            edges.push(Edge { from: a, to: b });
            edges.push(Edge { from: b, to: a });
        }

        let routers;
        let mut attach = Vec::with_capacity(endpoints);
        match topology {
            Topology::Ring | Topology::DoubleRing => {
                routers = endpoints;
                let lanes = if topology == Topology::DoubleRing { 2 } else { 1 };
                for _ in 0..lanes {
                    for r in 0..routers {
                        both(&mut edges, r, (r + 1) % routers);
                    }
                }
                attach.extend(0..endpoints);
            }
            Topology::ConcentratedRing | Topology::ConcentratedDoubleRing => {
                routers = endpoints / 4;
                let lanes = if topology == Topology::ConcentratedDoubleRing { 2 } else { 1 };
                for _ in 0..lanes {
                    for r in 0..routers {
                        both(&mut edges, r, (r + 1) % routers);
                    }
                }
                attach.extend((0..endpoints).map(|e| e / 4));
            }
            Topology::Mesh | Topology::Torus => {
                routers = endpoints;
                let side = (endpoints as f64).sqrt() as usize;
                let id = |x: usize, y: usize| y * side + x;
                for y in 0..side {
                    for x in 0..side {
                        if x + 1 < side {
                            both(&mut edges, id(x, y), id(x + 1, y));
                        }
                        if y + 1 < side {
                            both(&mut edges, id(x, y), id(x, y + 1));
                        }
                    }
                }
                if topology == Topology::Torus {
                    for y in 0..side {
                        both(&mut edges, id(side - 1, y), id(0, y));
                    }
                    for x in 0..side {
                        both(&mut edges, id(x, side - 1), id(x, 0));
                    }
                }
                attach.extend(0..endpoints);
            }
            Topology::FatTree | Topology::Butterfly => {
                // log4(N) stages of N/4 radix-4 switches, connected by the
                // base-4 digit-permutation butterfly pattern.
                let per_stage = endpoints / 4;
                let stages = {
                    let mut s = 0;
                    let mut n = endpoints;
                    while n > 1 {
                        n /= 4;
                        s += 1;
                    }
                    s
                };
                routers = stages * per_stage;
                let node = |stage: usize, idx: usize| stage * per_stage + idx;
                for stage in 0..stages - 1 {
                    // Between stage `stage` and `stage + 1`, vary base-4
                    // digit `stage` of the switch index.
                    let digit = 4usize.pow(stage as u32);
                    for idx in 0..per_stage {
                        let base = idx - (idx / digit % 4) * digit;
                        for c in 0..4 {
                            let peer = base + c * digit;
                            if topology == Topology::FatTree {
                                both(&mut edges, node(stage, idx), node(stage + 1, peer));
                            } else {
                                edges.push(Edge {
                                    from: node(stage, idx),
                                    to: node(stage + 1, peer),
                                });
                            }
                        }
                    }
                }
                if topology == Topology::Butterfly {
                    // Unidirectional: traffic re-enters stage 0 after
                    // ejecting at the last stage; model the wrap link.
                    for idx in 0..per_stage {
                        edges.push(Edge { from: node(stages - 1, idx), to: node(0, idx) });
                    }
                    // Endpoints inject at stage 0 and eject at the last
                    // stage; attach them to stage-0 switches and treat the
                    // matching last-stage switch as the delivery point via
                    // the routing table below.
                }
                attach.extend((0..endpoints).map(|e| e / 4));
            }
        }

        let mut out_edges = vec![Vec::new(); routers];
        for (i, e) in edges.iter().enumerate() {
            out_edges[e.from].push(i);
        }

        // BFS per destination over reversed edges -> distance-decreasing
        // next hops (lowest edge index wins, for determinism).
        let mut in_edges = vec![Vec::new(); routers];
        for (i, e) in edges.iter().enumerate() {
            in_edges[e.to].push(i);
        }
        let mut next_edges = vec![vec![Vec::new(); routers]; routers];
        for dst in 0..routers {
            let mut dist = vec![u32::MAX; routers];
            dist[dst] = 0;
            let mut q = VecDeque::from([dst]);
            while let Some(v) = q.pop_front() {
                for &ei in &in_edges[v] {
                    let u = edges[ei].from;
                    if dist[u] == u32::MAX {
                        dist[u] = dist[v] + 1;
                        q.push_back(u);
                    }
                }
            }
            for u in 0..routers {
                if u == dst {
                    continue;
                }
                assert!(dist[u] != u32::MAX, "{topology}: router {u} cannot reach {dst}");
                for &ei in &out_edges[u] {
                    let v = edges[ei].to;
                    if dist[v] + 1 == dist[u] {
                        next_edges[u][dst].push(ei);
                    }
                }
            }
        }

        Network { topology, endpoints, edges, out_edges, attach, next_edges }
    }

    /// The simulated topology.
    #[must_use]
    pub fn topology(&self) -> Topology {
        self.topology
    }

    /// Number of routers in the graph.
    #[must_use]
    pub fn routers(&self) -> usize {
        self.out_edges.len()
    }

    /// Number of unidirectional channels.
    #[must_use]
    pub fn channels(&self) -> usize {
        self.edges.len()
    }

    /// Hop distance between two endpoints' routers.
    #[must_use]
    pub fn hops(&self, src_endpoint: usize, dst_endpoint: usize) -> u32 {
        let mut at = self.attach[src_endpoint];
        let dst = self.attach[dst_endpoint];
        let mut hops = 0;
        while at != dst {
            let e = self.next_edges[at][dst][0];
            at = self.edges[e].to;
            hops += 1;
        }
        hops
    }

    /// Picks a minimal-path edge from `router` toward `dst`, spreading
    /// load across equal-cost choices.
    fn pick_edge(&self, router: usize, dst: usize, rng: &mut StdRng) -> usize {
        let c = &self.next_edges[router][dst];
        if c.len() == 1 {
            c[0]
        } else {
            c[rng.random_range(0..c.len())]
        }
    }
}

/// Simulation knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Per-endpoint injection probability (flits/cycle/endpoint).
    pub injection_rate: f64,
    /// Warmup cycles excluded from measurement.
    pub warmup: u32,
    /// Measured cycles.
    pub measure: u32,
    /// Traffic seed.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig { injection_rate: 0.05, warmup: 500, measure: 2_000, seed: 0 }
    }
}

/// Simulation measurements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimResult {
    /// Mean packet latency (cycles), injection to delivery.
    pub avg_latency: f64,
    /// Delivered flits per cycle per endpoint.
    pub delivered_rate: f64,
    /// Flits offered during the measurement window.
    pub offered: u64,
    /// Flits delivered during the measurement window.
    pub delivered: u64,
}

/// A flit in flight.
#[derive(Debug, Clone, Copy)]
struct Flit {
    dst_router: usize,
    injected_at: u64,
    measured: bool,
}

/// Runs a uniform-random-traffic simulation over `network`.
///
/// Single-flit packets, store-and-forward, one flit per channel per cycle,
/// round-robin arbitration via FIFO channel queues, infinite buffering
/// (latency, not loss, signals congestion).
#[must_use]
pub fn simulate(network: &Network, config: &SimConfig) -> SimResult {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let n = network.endpoints;
    // One FIFO per channel, holding flits waiting to traverse it.
    let mut queues: Vec<VecDeque<Flit>> = vec![VecDeque::new(); network.edges.len()];
    let mut offered = 0u64;
    let mut delivered = 0u64;
    let mut latency_sum = 0u64;

    let total = u64::from(config.warmup) + u64::from(config.measure);
    for cycle in 0..total {
        let measuring = cycle >= u64::from(config.warmup);
        // Injection.
        for src in 0..n {
            if rng.random_bool(config.injection_rate.clamp(0.0, 1.0)) {
                let dst = loop {
                    let d = rng.random_range(0..n);
                    if d != src {
                        break d;
                    }
                };
                if measuring {
                    offered += 1;
                }
                let src_r = network.attach[src];
                let dst_r = network.attach[dst];
                if src_r == dst_r {
                    // Same-router delivery: one hop through the crossbar.
                    if measuring {
                        delivered += 1;
                        latency_sum += 1;
                    }
                    continue;
                }
                let e = network.pick_edge(src_r, dst_r, &mut rng);
                queues[e].push_back(Flit {
                    dst_router: dst_r,
                    injected_at: cycle,
                    measured: measuring,
                });
            }
        }
        // Channel traversal: one flit per channel per cycle.
        let mut arrivals: Vec<(usize, Flit)> = Vec::new();
        for (ei, q) in queues.iter_mut().enumerate() {
            if let Some(f) = q.pop_front() {
                arrivals.push((network.edges[ei].to, f));
            }
        }
        for (router, flit) in arrivals {
            if router == flit.dst_router {
                if flit.measured {
                    delivered += 1;
                    latency_sum += cycle - flit.injected_at + 1;
                }
            } else {
                let e = network.pick_edge(router, flit.dst_router, &mut rng);
                queues[e].push_back(flit);
            }
        }
    }

    SimResult {
        avg_latency: if delivered == 0 { f64::NAN } else { latency_sum as f64 / delivered as f64 },
        delivered_rate: delivered as f64 / f64::from(config.measure) / n as f64,
        offered,
        delivered,
    }
}

/// Locates the saturation injection rate by bisection: the largest rate at
/// which the network still delivers at least 95% of offered traffic within
/// the simulated window.
#[must_use]
pub fn saturation_rate(network: &Network, seed: u64) -> f64 {
    let mut lo = 0.0f64;
    let mut hi = 1.0f64;
    for step in 0..8 {
        let rate = (lo + hi) / 2.0;
        let result = simulate(
            network,
            &SimConfig {
                injection_rate: rate,
                warmup: 500,
                measure: 1_500,
                seed: seed.wrapping_add(step),
            },
        );
        let sustained =
            result.offered > 0 && result.delivered as f64 >= 0.95 * result.offered as f64;
        if sustained {
            lo = rate;
        } else {
            hi = rate;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graphs_match_structural_arithmetic() {
        for t in Topology::ALL {
            let net = Network::build(t, 64);
            let s = t.structure(64);
            assert_eq!(net.routers(), s.routers, "{t}: router count");
            // The wrap links added for the unidirectional butterfly are the
            // only deviation from the structural channel count.
            if t == Topology::Butterfly {
                assert_eq!(net.channels(), s.channels + 16, "{t}: channels");
            } else {
                assert_eq!(net.channels(), s.channels, "{t}: channels");
            }
        }
    }

    #[test]
    fn routing_tables_reach_everywhere() {
        for t in Topology::ALL {
            let net = Network::build(t, 64);
            // hops() loops forever on a broken table; bound it implicitly
            // by the graph diameter.
            let mut max_hops = 0;
            for src in (0..64).step_by(7) {
                for dst in (0..64).step_by(5) {
                    if net.attach[src] != net.attach[dst] {
                        max_hops = max_hops.max(net.hops(src, dst));
                    }
                }
            }
            assert!(max_hops >= 1);
            assert!(max_hops <= 64, "{t}: diameter {max_hops}");
        }
    }

    #[test]
    fn mesh_hop_counts_are_manhattan() {
        let net = Network::build(Topology::Mesh, 64);
        // Endpoint e at router e, 8x8 grid.
        assert_eq!(net.hops(0, 7), 7);
        assert_eq!(net.hops(0, 56), 7);
        assert_eq!(net.hops(0, 63), 14);
        assert_eq!(net.hops(9, 18), 2);
    }

    #[test]
    fn torus_wraparound_shortens_paths() {
        let mesh = Network::build(Topology::Mesh, 64);
        let torus = Network::build(Topology::Torus, 64);
        assert_eq!(mesh.hops(0, 7), 7);
        assert_eq!(torus.hops(0, 7), 1, "wraparound link");
        assert_eq!(torus.hops(0, 63), 2);
    }

    #[test]
    fn low_load_latency_tracks_hop_count() {
        let net = Network::build(Topology::Mesh, 64);
        let r = simulate(&net, &SimConfig { injection_rate: 0.01, ..SimConfig::default() });
        // 8x8 mesh uniform traffic: ~5.33 average hops, +1 ejection cycle.
        assert!((5.0..8.0).contains(&r.avg_latency), "zero-load latency {}", r.avg_latency);
        // At 1% load everything is delivered.
        assert!(r.delivered as f64 >= 0.95 * r.offered as f64);
    }

    #[test]
    fn congestion_raises_latency() {
        let net = Network::build(Topology::Ring, 64);
        let light = simulate(&net, &SimConfig { injection_rate: 0.01, ..SimConfig::default() });
        let heavy = simulate(&net, &SimConfig { injection_rate: 0.5, ..SimConfig::default() });
        assert!(
            heavy.avg_latency > 2.0 * light.avg_latency,
            "no congestion: {} vs {}",
            heavy.avg_latency,
            light.avg_latency
        );
        assert!(heavy.delivered < heavy.offered, "ring cannot sustain 0.5");
    }

    #[test]
    fn saturation_ordering_matches_bisection_ordering() {
        let ring = saturation_rate(&Network::build(Topology::Ring, 64), 1);
        let mesh = saturation_rate(&Network::build(Topology::Mesh, 64), 1);
        let fat = saturation_rate(&Network::build(Topology::FatTree, 64), 1);
        assert!(
            ring < mesh && mesh < fat,
            "saturation ordering broken: ring {ring:.3}, mesh {mesh:.3}, fat tree {fat:.3}"
        );
        // Uniform traffic bisection bounds: ring ~4/(64*0.5) = 0.125,
        // mesh ~16/32 = 0.5; simulated saturation sits below the bound.
        assert!(ring <= 0.14, "ring saturation {ring}");
        assert!(mesh <= 0.55, "mesh saturation {mesh}");
        assert!(fat > 0.4, "fat tree should sustain high load: {fat}");
    }

    #[test]
    fn simulation_is_deterministic() {
        let net = Network::build(Topology::Torus, 64);
        let cfg = SimConfig { injection_rate: 0.2, ..SimConfig::default() };
        assert_eq!(simulate(&net, &cfg), simulate(&net, &cfg));
    }

    #[test]
    fn concentrated_ring_delivers_local_traffic_fast() {
        let net = Network::build(Topology::ConcentratedRing, 64);
        // Endpoints 0..4 share a router: same-router traffic takes 1 cycle.
        assert_eq!(net.attach[0], net.attach[3]);
        let r = simulate(&net, &SimConfig { injection_rate: 0.02, ..SimConfig::default() });
        assert!(r.avg_latency < 10.0, "latency {}", r.avg_latency);
    }
}
