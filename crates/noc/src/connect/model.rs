//! ASIC cost model of CONNECT-style 64-endpoint NoCs.
//!
//! The paper's Figure 2 characterizes "a large collection of different
//! network configurations (router design + network topology) targeting a
//! commercial 65nm technology", plotting power and area against peak
//! bisection bandwidth with 2–3 orders of magnitude of spread. This model
//! reproduces that characterization: a network is a topology family plus
//! router parameters; area comes from router logic, buffer SRAM and channel
//! wiring; power from switching plus leakage; and peak bisection bandwidth
//! from the topology's bisection cut.

use nautilus_ga::{GeneRows, Genome, ParamId, ParamSpace, ParamValue};
use nautilus_synth::noise::noise_factor_genes;
use nautilus_synth::{CostModel, MetricCatalog, MetricSet};

use super::topology::Topology;

const SALT_AREA: u64 = 0xA4EA;
const SALT_POWER: u64 = 0xF0_11E4;
const SALT_FCLK: u64 = 0xFC1C;

/// 65nm technology constants (derived from public 65nm library data).
mod tech {
    /// Logic area per gate, mm² (NAND2-equivalent with routing overhead).
    pub const GATE_AREA_MM2: f64 = 1.7e-6;
    /// Buffer SRAM area per bit, mm² (cell plus array overhead).
    pub const SRAM_BIT_MM2: f64 = 1.5e-6;
    /// Channel wire area per bit·mm of length, mm².
    pub const WIRE_BIT_MM2_PER_MM: f64 = 2.0e-4 / 1000.0 * 5.0;
    /// Dynamic power per mm² of switching logic at 1 GHz, mW.
    pub const DYN_MW_PER_MM2_GHZ: f64 = 80.0;
    /// Channel dynamic power per bit at 1 GHz, mW.
    pub const CHAN_MW_PER_BIT_GHZ: f64 = 0.012;
    /// Leakage per mm², mW.
    pub const LEAK_MW_PER_MM2: f64 = 15.0;
}

/// The CONNECT-style NoC generator's characterization backend.
///
/// Parameters: topology family, virtual channels, flit width, buffer depth
/// and allocator style, at a fixed endpoint count (64 in the paper).
///
/// ```
/// use nautilus_noc::connect::NocModel;
/// use nautilus_synth::CostModel;
/// let model = NocModel::new(64);
/// assert_eq!(model.space().cardinality(), 8 * 3 * 5 * 3 * 2);
/// ```
#[derive(Debug)]
pub struct NocModel {
    space: ParamSpace,
    catalog: MetricCatalog,
    endpoints: usize,
    topo: ParamId,
    vcs: ParamId,
    width: ParamId,
    depth: ParamId,
    alloc: ParamId,
}

impl NocModel {
    /// Creates the model for `endpoints` terminals (64 matches Figure 2).
    ///
    /// # Panics
    ///
    /// Panics unless `endpoints` is an even power of two of at least 16
    /// (see [`Topology::structure`]).
    #[must_use]
    pub fn new(endpoints: usize) -> Self {
        // Validate endpoint count eagerly via any topology.
        let _ = Topology::Mesh.structure(endpoints);
        let space = ParamSpace::builder()
            .choices("topology", Topology::ALL.iter().map(|t| t.label()))
            .int_list("num_vcs", [2, 4, 8])
            .pow2("flit_width", 4, 8) // 16..256 bits
            .int_list("buffer_depth", [4, 8, 16])
            .choices("allocator", ["separable", "wavefront"])
            .build()
            .expect("static space");
        let id = |n: &str| space.id(n).expect("space defines parameter");
        NocModel {
            topo: id("topology"),
            vcs: id("num_vcs"),
            width: id("flit_width"),
            depth: id("buffer_depth"),
            alloc: id("allocator"),
            catalog: MetricCatalog::new([
                ("area_mm2", "mm^2"),
                ("power_mw", "mW"),
                ("bisection_gbps", "Gbps"),
                ("fclk_mhz", "MHz"),
                ("avg_hops", "hops"),
            ])
            .expect("static catalog"),
            space,
            endpoints,
        }
    }

    /// The endpoint count the model was built for.
    #[must_use]
    pub fn endpoints(&self) -> usize {
        self.endpoints
    }

    /// The topology of a design point.
    ///
    /// # Panics
    ///
    /// Panics if the genome does not belong to this space.
    #[must_use]
    pub fn topology_of(&self, g: &Genome) -> Topology {
        Topology::ALL[g.gene(self.topo) as usize]
    }

    fn int(&self, genes: &[u32], id: ParamId) -> f64 {
        match self.space.param(id).domain().value(genes[id.index()] as usize) {
            ParamValue::Int(v) => v as f64,
            other => panic!("expected integer parameter, got {other}"),
        }
    }

    /// Slice-native characterization kernel over one gene row.
    fn eval_genes(&self, g: &[u32]) -> Option<MetricSet> {
        let topo = Topology::ALL[g[self.topo.index()] as usize];
        let s = topo.structure(self.endpoints);
        let vcs = self.int(g, self.vcs);
        let width = self.int(g, self.width);
        let depth = self.int(g, self.depth);
        let wavefront = g[self.alloc.index()] == 1;
        let radix = s.router_radix as f64;

        // ---- Clock frequency (GHz) at 65nm ---------------------------------
        let mut fclk = 1.35
            / (1.0
                + 0.05 * (width / 32.0).log2().max(0.0)
                + 0.012 * (radix - 3.0)
                + 0.04 * (vcs / 2.0).log2()
                + if wavefront { 0.08 } else { 0.0 });
        fclk *= noise_factor_genes(g, SALT_FCLK, 0.04);

        // ---- Area (mm²) -----------------------------------------------------
        // Per-router logic gates: crossbar + allocators + control.
        let xbar_gates = radix * radix * width * 2.5;
        let alloc_gates = radix * vcs * vcs * (if wavefront { 55.0 } else { 30.0 }) + 400.0;
        let ctrl_gates = radix * vcs * width * 0.6 + 900.0;
        let logic_mm2_per_router = (xbar_gates + alloc_gates + ctrl_gates) * tech::GATE_AREA_MM2;
        // Buffer SRAM bits per router.
        let buffer_bits = radix * vcs * depth * width;
        let sram_mm2_per_router = buffer_bits * tech::SRAM_BIT_MM2;
        // Channel wiring: per-topology average physical link length (mm).
        let link_mm = match topo {
            Topology::Ring | Topology::Mesh => 1.0,
            Topology::DoubleRing => 1.2,
            Topology::ConcentratedRing | Topology::ConcentratedDoubleRing => 2.0,
            Topology::Torus => 1.5, // folded wraparound
            Topology::FatTree | Topology::Butterfly => 3.0,
        };
        let wire_mm2 = s.channels as f64 * width * link_mm * tech::WIRE_BIT_MM2_PER_MM;
        let logic_mm2 = s.routers as f64 * logic_mm2_per_router;
        let sram_mm2 = s.routers as f64 * sram_mm2_per_router;
        let area = (logic_mm2 + sram_mm2 + wire_mm2) * noise_factor_genes(g, SALT_AREA, 0.05);

        // ---- Power (mW) -------------------------------------------------------
        let dyn_logic = logic_mm2 * fclk * tech::DYN_MW_PER_MM2_GHZ;
        let dyn_sram = sram_mm2 * fclk * tech::DYN_MW_PER_MM2_GHZ * 0.55;
        let dyn_chan = s.channels as f64 * width * fclk * tech::CHAN_MW_PER_BIT_GHZ;
        let leakage = area * tech::LEAK_MW_PER_MM2;
        let power =
            (dyn_logic + dyn_sram + dyn_chan + leakage) * noise_factor_genes(g, SALT_POWER, 0.05);

        // ---- Peak bisection bandwidth (Gbps) ---------------------------------
        let bisection = s.bisection_channels as f64 * width * fclk;

        Some(
            self.catalog
                .set(vec![area, power, bisection, fclk * 1000.0, s.avg_hops])
                .expect("arity matches catalog"),
        )
    }
}

impl CostModel for NocModel {
    fn name(&self) -> &str {
        "connect-noc"
    }

    fn space(&self) -> &ParamSpace {
        &self.space
    }

    fn catalog(&self) -> &MetricCatalog {
        &self.catalog
    }

    fn evaluate(&self, g: &Genome) -> Option<MetricSet> {
        self.eval_genes(g.genes())
    }

    fn evaluate_rows(&self, rows: GeneRows<'_>, out: &mut Vec<Option<MetricSet>>) {
        // Slice-native batch kernel: no scratch genome, no per-point
        // dispatch.
        for row in rows.iter() {
            out.push(self.eval_genes(row));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nautilus_ga::Direction;
    use nautilus_synth::{Dataset, MetricExpr};

    fn dataset() -> Dataset {
        Dataset::characterize(&NocModel::new(64), 8).unwrap()
    }

    #[test]
    fn every_configuration_is_feasible() {
        let d = dataset();
        assert_eq!(d.len() as u128, NocModel::new(64).space().cardinality());
    }

    #[test]
    fn metric_spread_spans_orders_of_magnitude_like_figure_2() {
        let d = dataset();
        let bw = MetricExpr::metric(d.catalog().require("bisection_gbps").unwrap());
        let area = MetricExpr::metric(d.catalog().require("area_mm2").unwrap());
        let power = MetricExpr::metric(d.catalog().require("power_mw").unwrap());
        let (_, bw_lo) = d.best(&bw, Direction::Minimize);
        let (_, bw_hi) = d.best(&bw, Direction::Maximize);
        assert!(bw_hi / bw_lo > 100.0, "bandwidth spread {bw_lo}..{bw_hi}");
        let (_, a_lo) = d.best(&area, Direction::Minimize);
        let (_, a_hi) = d.best(&area, Direction::Maximize);
        assert!(a_hi / a_lo > 30.0, "area spread {a_lo}..{a_hi}");
        let (_, p_lo) = d.best(&power, Direction::Minimize);
        let (_, p_hi) = d.best(&power, Direction::Maximize);
        assert!(p_hi / p_lo > 30.0, "power spread {p_lo}..{p_hi}");
    }

    #[test]
    fn batch_kernel_is_bit_identical_to_per_point_path() {
        let m = NocModel::new(64);
        let genomes: Vec<_> =
            (0..40u128).map(|i| m.space().genome_at(i * 17 % m.space().cardinality())).collect();
        let flat: Vec<u32> = genomes.iter().flat_map(|g| g.genes().iter().copied()).collect();
        let mut batch = Vec::new();
        m.evaluate_rows(GeneRows::new(&flat, m.space().num_params()), &mut batch);
        for (g, got) in genomes.iter().zip(&batch) {
            assert_eq!(*got, m.evaluate(g), "batch row diverged for {g:?}");
        }
    }

    #[test]
    fn fat_tree_out_bandwidths_ring_at_matched_router_config() {
        let m = NocModel::new(64);
        let space = m.space();
        let bw_id = m.catalog().require("bisection_gbps").unwrap();
        let mk = |topo: &str| {
            space
                .genome_from_values([
                    ("topology", ParamValue::Sym(topo.into())),
                    ("num_vcs", ParamValue::Int(4)),
                    ("flit_width", ParamValue::Int(128)),
                    ("buffer_depth", ParamValue::Int(8)),
                    ("allocator", ParamValue::Sym("separable".into())),
                ])
                .unwrap()
        };
        let ring = m.evaluate(&mk("Ring")).unwrap().get(bw_id);
        let mesh = m.evaluate(&mk("Mesh")).unwrap().get(bw_id);
        let ft = m.evaluate(&mk("Fat Tree")).unwrap().get(bw_id);
        assert!(mesh > 2.0 * ring, "mesh {mesh} vs ring {ring}");
        assert!(ft > 2.0 * mesh, "fat tree {ft} vs mesh {mesh}");
    }

    #[test]
    fn concentration_saves_area() {
        let m = NocModel::new(64);
        let space = m.space();
        let area_id = m.catalog().require("area_mm2").unwrap();
        let mk = |topo: &str| {
            space
                .genome_from_values([
                    ("topology", ParamValue::Sym(topo.into())),
                    ("num_vcs", ParamValue::Int(2)),
                    ("flit_width", ParamValue::Int(64)),
                    ("buffer_depth", ParamValue::Int(4)),
                    ("allocator", ParamValue::Sym("separable".into())),
                ])
                .unwrap()
        };
        let ring = m.evaluate(&mk("Ring")).unwrap().get(area_id);
        let conc = m.evaluate(&mk("Concentrated Ring")).unwrap().get(area_id);
        assert!(conc < ring, "concentrated {conc} vs plain {ring}");
    }

    #[test]
    fn bandwidth_per_area_varies_by_family() {
        // Figure 2's point: families form distinct efficiency clusters.
        let d = dataset();
        let m = NocModel::new(64);
        let bw = d.catalog().require("bisection_gbps").unwrap();
        let area = d.catalog().require("area_mm2").unwrap();
        let mut per_family: std::collections::HashMap<&str, Vec<f64>> = Default::default();
        for (g, ms) in d.iter() {
            per_family.entry(m.topology_of(g).label()).or_default().push(ms.get(bw) / ms.get(area));
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let ring = mean(&per_family["Ring"]);
        let torus = mean(&per_family["Torus"]);
        assert!(torus > ring, "torus {torus} vs ring {ring} Gbps/mm^2");
    }

    #[test]
    fn evaluation_is_deterministic() {
        let m = NocModel::new(64);
        let g = m.space().genome_at(123);
        assert_eq!(m.evaluate(&g), m.evaluate(&g));
    }

    #[test]
    #[should_panic(expected = "even power of two")]
    fn one_node_network_model_is_rejected_eagerly() {
        // Validation happens in the constructor, not at first evaluate.
        let _ = NocModel::new(1);
    }

    #[test]
    #[should_panic(expected = "even power of two")]
    fn eight_endpoint_network_model_is_rejected_eagerly() {
        let _ = NocModel::new(8);
    }

    #[test]
    fn smallest_valid_network_model_evaluates_its_whole_space() {
        let m = NocModel::new(16);
        assert_eq!(m.endpoints(), 16);
        let area_id = m.catalog().require("area_mm2").unwrap();
        for i in 0..m.space().cardinality() {
            let g = m.space().genome_at(i);
            let ms = m.evaluate(&g).expect("every 16-endpoint config is feasible");
            assert!(ms.get(area_id) > 0.0);
        }
    }

    #[test]
    fn zero_vc_routers_are_unrepresentable() {
        // A router with zero virtual channels has no buffering at all; the
        // space's num_vcs domain starts at 2, so no genome can encode one.
        let m = NocModel::new(64);
        let err = m.space().genome_from_values([
            ("topology", ParamValue::Sym("Mesh".into())),
            ("num_vcs", ParamValue::Int(0)),
            ("flit_width", ParamValue::Int(64)),
            ("buffer_depth", ParamValue::Int(4)),
            ("allocator", ParamValue::Sym("separable".into())),
        ]);
        assert!(err.is_err(), "num_vcs=0 must not resolve to a genome");
    }

    #[test]
    fn larger_networks_cost_more() {
        let small = NocModel::new(64);
        let big = NocModel::new(256);
        let area_id = small.catalog().require("area_mm2").unwrap();
        let g = small.space().genome_at(42);
        let a64 = small.evaluate(&g).unwrap().get(area_id);
        let a256 = big.evaluate(&g).unwrap().get(area_id);
        assert!(a256 > 3.0 * a64);
    }
}
