//! Parameter spaces of the virtual-channel router IP.
//!
//! The paper's router is the Stanford open-source NoC router [Becker 2012],
//! "a highly-parameterized state-of-the-art router IP block, which exposes
//! 42 parameters"; its evaluation sweeps a 9-parameter sub-space of about
//! 30,000 comparable design instances. [`swept_space`] reproduces that
//! sub-space (27,648 points) and [`full_space`] the full 42-parameter
//! surface (billions of points).

use nautilus_ga::{ParamSpace, ParamSpaceBuilder};

/// Names of the nine swept router parameters, in space order.
pub const SWEPT_PARAMS: [&str; 9] = [
    "num_vcs",
    "buffer_depth",
    "flit_width",
    "pipeline_stages",
    "sa_alloc",
    "va_alloc",
    "crossbar",
    "speculation",
    "buffer_type",
];

fn swept_params(b: ParamSpaceBuilder) -> ParamSpaceBuilder {
    b.int_list("num_vcs", [1, 2, 4, 8])
        .int_list("buffer_depth", [1, 2, 3, 4, 6, 8, 12, 16])
        .pow2("flit_width", 4, 7) // 16..128 bits
        .int("pipeline_stages", 1, 3, 1)
        .choices("sa_alloc", ["round_robin", "matrix", "wavefront"])
        .choices("va_alloc", ["round_robin", "matrix", "wavefront"])
        .choices("crossbar", ["mux", "tristate"])
        .flag("speculation")
        .choices("buffer_type", ["lutram", "bram"])
}

/// The 9-parameter swept sub-space used for the characterized dataset
/// (27,648 design points, matching the paper's "approximately 30,000").
///
/// ```
/// let space = nautilus_noc::router::swept_space();
/// assert_eq!(space.num_params(), 9);
/// assert_eq!(space.cardinality(), 27_648);
/// ```
#[must_use]
pub fn swept_space() -> ParamSpace {
    swept_params(ParamSpace::builder()).build().expect("static space is valid")
}

/// The full 42-parameter router surface.
///
/// The nine swept parameters come first (so swept genomes prefix-embed),
/// followed by 33 secondary micro-architecture knobs. The resulting design
/// space has billions of points — the scale the paper's introduction
/// motivates ("the design space of a single router already spans multiple
/// billions of possible design points").
///
/// ```
/// let space = nautilus_noc::router::full_space();
/// assert_eq!(space.num_params(), 42);
/// assert!(space.cardinality() > 1_000_000_000);
/// ```
#[must_use]
pub fn full_space() -> ParamSpace {
    swept_params(ParamSpace::builder())
        // Datapath / topology-facing knobs.
        .int("num_ports", 3, 8, 1)
        .choices("routing_fn", ["dor_xy", "dor_yx", "west_first", "adaptive"])
        .int("num_resource_classes", 1, 2, 1)
        .int("num_message_classes", 1, 4, 1)
        // Flow control.
        .choices("flow_ctrl", ["credit", "on_off"])
        .int("credit_delay", 0, 3, 1)
        .flag("wait_for_tail_credit")
        .int("max_payload_flits", 1, 8, 1)
        // Input-queue management.
        .choices("fb_mgmt", ["static", "dynamic"])
        .flag("explicit_pipeline_register")
        .flag("gate_buffer_write")
        .flag("atomic_vc_allocation")
        // Allocator micro-architecture details.
        .choices("sw_arbiter", ["round_robin", "matrix"])
        .choices("vc_arbiter", ["round_robin", "matrix"])
        .int("sw_alloc_iterations", 1, 3, 1)
        .flag("spec_mask_by_requests")
        .choices("spec_type", ["conservative", "aggressive"])
        // Crossbar / output path.
        .flag("output_register")
        .flag("dual_path_alloc")
        .int("xbar_pipeline", 0, 1, 1)
        // Error handling / reliability.
        .flag("error_checking")
        .choices("reset_type", ["async", "sync"])
        .flag("ecc_links")
        // Clocking and misc implementation knobs.
        .flag("clock_gating")
        .int("lookahead_depth", 0, 2, 1)
        .flag("precompute_routing")
        .flag("precompute_lar")
        .choices("arbiter_encoding", ["onehot", "binary"])
        .flag("elig_mask")
        .int("packet_id_width", 0, 8, 4)
        .flag("track_flits")
        .flag("track_credits")
        .flag("perf_counters")
        .build()
        .expect("static space is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn swept_space_matches_paper_scale() {
        let s = swept_space();
        assert_eq!(s.num_params(), 9);
        assert_eq!(s.cardinality(), 27_648);
        for name in SWEPT_PARAMS {
            assert!(s.id(name).is_some(), "missing parameter {name}");
        }
    }

    #[test]
    fn full_space_has_42_params_and_billions_of_points() {
        let s = full_space();
        assert_eq!(s.num_params(), 42);
        assert!(s.cardinality() > 1_000_000_000, "only {} points", s.cardinality());
    }

    #[test]
    fn swept_params_prefix_embed_into_full_space() {
        let swept = swept_space();
        let full = full_space();
        for (i, name) in SWEPT_PARAMS.iter().enumerate() {
            assert_eq!(swept.id(name).map(|p| p.index()), Some(i));
            assert_eq!(full.id(name).map(|p| p.index()), Some(i));
            assert_eq!(
                swept.param(swept.id(name).unwrap()).domain(),
                full.param(full.id(name).unwrap()).domain(),
                "domain mismatch for {name}"
            );
        }
    }
}
