//! Surrogate FPGA-synthesis model of the virtual-channel router.
//!
//! Replaces the paper's Xilinx XST 14.7 / Virtex-6 LX760T synthesis runs
//! with an analytic model whose structure mirrors router implementation
//! reality: buffers dominate LUT cost, separable/matrix/wavefront
//! allocators trade area against delay, pipelining buys frequency at
//! register cost, and deterministic hash noise reproduces the rugged
//! scatter of Figure 1. Absolute values are calibrated to the figure's
//! ranges (hundreds to ~25k LUTs, ~60–260 MHz).

use nautilus_ga::rng::{hash_genes, mix_to_signed_unit};
use nautilus_ga::{GeneRows, Genome, ParamId, ParamSpace, ParamValue};
use nautilus_synth::noise::noise_factor_genes;
use nautilus_synth::{CostModel, MetricCatalog, MetricSet};

use super::space::{full_space, swept_space};

/// Salts decorrelating the model's noise channels.
const SALT_LUTS: u64 = 0x4C55_5453;
const SALT_FMAX: u64 = 0x464D_4158;
const SALT_FULL: u64 = 0x4655_4C4C;

/// Resolved parameter handles.
#[derive(Debug, Clone)]
struct Ids {
    vcs: ParamId,
    depth: ParamId,
    width: ParamId,
    stages: ParamId,
    sa: ParamId,
    va: ParamId,
    xbar: ParamId,
    spec: ParamId,
    buf: ParamId,
    // Full-space extras.
    ports: Option<ParamId>,
    routing: Option<ParamId>,
    out_reg: Option<ParamId>,
    err_chk: Option<ParamId>,
    sw_iter: Option<ParamId>,
}

/// The router IP generator's synthesis backend.
///
/// Create with [`RouterModel::swept`] (the paper's 9-parameter dataset
/// sub-space) or [`RouterModel::full`] (all 42 parameters).
///
/// ```
/// use nautilus_noc::router::RouterModel;
/// use nautilus_synth::CostModel;
/// let model = RouterModel::swept();
/// assert_eq!(model.space().num_params(), 9);
/// assert_eq!(model.catalog().len(), 3); // luts, fmax, latency
/// ```
#[derive(Debug)]
pub struct RouterModel {
    space: ParamSpace,
    catalog: MetricCatalog,
    ids: Ids,
}

impl RouterModel {
    /// Model over the 9-parameter swept sub-space (27,648 points).
    #[must_use]
    pub fn swept() -> Self {
        Self::over(swept_space())
    }

    /// Model over the full 42-parameter space (billions of points).
    #[must_use]
    pub fn full() -> Self {
        Self::over(full_space())
    }

    fn over(space: ParamSpace) -> Self {
        let id = |name: &str| space.id(name).expect("router space defines core parameters");
        let ids = Ids {
            vcs: id("num_vcs"),
            depth: id("buffer_depth"),
            width: id("flit_width"),
            stages: id("pipeline_stages"),
            sa: id("sa_alloc"),
            va: id("va_alloc"),
            xbar: id("crossbar"),
            spec: id("speculation"),
            buf: id("buffer_type"),
            ports: space.id("num_ports"),
            routing: space.id("routing_fn"),
            out_reg: space.id("output_register"),
            err_chk: space.id("error_checking"),
            sw_iter: space.id("sw_alloc_iterations"),
        };
        RouterModel {
            space,
            catalog: MetricCatalog::new([("luts", "LUTs"), ("fmax", "MHz"), ("latency", "cycles")])
                .expect("static catalog"),
            ids,
        }
    }

    fn int(&self, genes: &[u32], id: ParamId) -> f64 {
        match self.space.param(id).domain().value(genes[id.index()] as usize) {
            ParamValue::Int(v) => v as f64,
            other => panic!("expected integer parameter, got {other}"),
        }
    }

    fn sym_index(&self, genes: &[u32], id: ParamId) -> usize {
        genes[id.index()] as usize
    }

    fn flag(&self, genes: &[u32], id: ParamId) -> bool {
        genes[id.index()] == 1
    }

    /// Slice-native synthesis kernel: the whole model evaluates directly
    /// over one structure-of-arrays gene row, so the batch entry point
    /// never rehydrates a [`Genome`] or allocates per point.
    fn eval_genes(&self, g: &[u32]) -> Option<MetricSet> {
        let vcs = self.int(g, self.ids.vcs);
        let depth = self.int(g, self.ids.depth);
        let width = self.int(g, self.ids.width);
        let stages = self.int(g, self.ids.stages);
        let sa = self.sym_index(g, self.ids.sa); // 0 rr, 1 matrix, 2 wavefront
        let va = self.sym_index(g, self.ids.va);
        let tristate = self.sym_index(g, self.ids.xbar) == 1;
        let spec = self.flag(g, self.ids.spec);
        let bram = self.sym_index(g, self.ids.buf) == 1;
        let ports = self.ids.ports.map_or(5.0, |id| self.int(g, id));

        // ---- LUT cost -----------------------------------------------------
        let buffers = if bram {
            // Storage lives in block RAM; LUTs only hold FIFO control.
            ports * (vcs * 48.0 + depth.sqrt() * 8.0 + width * 0.18)
        } else {
            // Distributed LUTRAM storage dominates.
            ports * vcs * depth * width * 0.20 + ports * vcs * 22.0
        };
        let vc_state = ports * vcs * (width * 0.12 + 14.0);
        let sa_luts = match sa {
            0 => ports * (vcs * 6.0 + 14.0),
            1 => ports * (vcs * vcs * 4.0 + 24.0),
            _ => ports * vcs * 16.0 + 120.0,
        };
        let va_luts = match va {
            0 => ports * (vcs * 8.0 + 14.0),
            1 => ports * (vcs * vcs * 6.0 + 30.0),
            _ => ports * vcs * 16.0 + 120.0,
        };
        let xbar_luts = if tristate {
            ports * ports * width * 0.35 + 60.0
        } else {
            ports * ports * width * 0.50
        };
        let spec_luts = if spec { ports * (vcs * 14.0 + 36.0) } else { 0.0 };
        let pipe_luts = stages * ports * width * 0.16;
        let mut luts =
            320.0 + buffers + vc_state + sa_luts + va_luts + xbar_luts + spec_luts + pipe_luts;

        // ---- Critical path ------------------------------------------------
        let mut d_logic = 5.0
            + 0.30 * (width / 16.0).log2()
            + match sa {
                0 => 0.30 + 0.055 * vcs,
                1 => 0.22 + 0.035 * vcs,
                _ => 0.70 + 0.012 * vcs,
            }
            + match va {
                0 => 0.38 + 0.070 * vcs,
                1 => 0.28 + 0.045 * vcs,
                _ => 0.85 + 0.015 * vcs,
            }
            + if tristate { 0.75 + 0.02 * ports } else { 0.45 + 0.02 * ports }
            + 0.05 * (depth + 1.0).ln()
            + if bram { 0.55 } else { 0.0 }
            + if spec { 0.40 } else { 0.0 };
        let mut reg_overhead = 1.2;
        let mut latency = stages + 2.0 - if spec { 1.0 } else { 0.0 };

        // ---- Full-space secondary parameters -------------------------------
        if let Some(routing) = self.ids.routing {
            if self.sym_index(g, routing) == 3 {
                // Adaptive routing: extra route computation logic.
                luts += ports * 60.0;
                d_logic += 0.25;
            }
        }
        if let Some(out_reg) = self.ids.out_reg {
            if self.flag(g, out_reg) {
                luts += ports * width * 0.11;
                reg_overhead -= 0.15;
                latency += 1.0;
            }
        }
        if let Some(err) = self.ids.err_chk {
            if self.flag(g, err) {
                luts *= 1.03;
            }
        }
        if let Some(it) = self.ids.sw_iter {
            let iterations = self.int(g, it);
            d_logic += 0.15 * (iterations - 1.0);
            luts += ports * 18.0 * (iterations - 1.0);
        }
        if self.ids.ports.is_some() {
            // Remaining secondary knobs perturb results a few percent, the
            // way minor RTL parameters do.
            let h = hash_genes(&g[9..], SALT_FULL);
            luts *= 1.0 + 0.05 * mix_to_signed_unit(h);
            d_logic *= 1.0 + 0.03 * mix_to_signed_unit(h.rotate_left(13));
        }

        let d_stage = d_logic / stages.powf(0.8) + reg_overhead;

        // ---- Synthesis noise ------------------------------------------------
        luts *= noise_factor_genes(g, SALT_LUTS, 0.06);
        let fmax = (1000.0 / d_stage * noise_factor_genes(g, SALT_FMAX, 0.05)).max(55.0);

        Some(self.catalog.set(vec![luts.round(), fmax, latency]).expect("arity matches catalog"))
    }
}

impl CostModel for RouterModel {
    fn name(&self) -> &str {
        "vc-router"
    }

    fn space(&self) -> &ParamSpace {
        &self.space
    }

    fn catalog(&self) -> &MetricCatalog {
        &self.catalog
    }

    fn evaluate(&self, g: &Genome) -> Option<MetricSet> {
        self.eval_genes(g.genes())
    }

    fn evaluate_rows(&self, rows: GeneRows<'_>, out: &mut Vec<Option<MetricSet>>) {
        // Slice-native batch kernel: one tight loop over the contiguous
        // row buffer, no scratch genome, no per-point dispatch.
        for row in rows.iter() {
            out.push(self.eval_genes(row));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nautilus_ga::Direction;
    use nautilus_synth::{Dataset, MetricExpr};

    fn dataset() -> Dataset {
        Dataset::characterize(&RouterModel::swept(), 8).unwrap()
    }

    #[test]
    fn all_swept_points_are_feasible() {
        let d = dataset();
        assert_eq!(d.len(), 27_648);
    }

    #[test]
    fn metric_ranges_match_figure_1() {
        let d = dataset();
        let luts = MetricExpr::metric(d.catalog().require("luts").unwrap());
        let fmax = MetricExpr::metric(d.catalog().require("fmax").unwrap());
        let (_, min_luts) = d.best(&luts, Direction::Minimize);
        let (_, max_luts) = d.best(&luts, Direction::Maximize);
        assert!((200.0..1500.0).contains(&min_luts), "min LUTs {min_luts} outside Figure 1 range");
        assert!(
            (15_000.0..40_000.0).contains(&max_luts),
            "max LUTs {max_luts} outside Figure 1 range"
        );
        let (_, min_f) = d.best(&fmax, Direction::Minimize);
        let (_, max_f) = d.best(&fmax, Direction::Maximize);
        assert!((55.0..100.0).contains(&min_f), "min fmax {min_f}");
        assert!((230.0..=360.0).contains(&max_f), "max fmax {max_f}");
    }

    #[test]
    fn evaluation_is_deterministic() {
        let m = RouterModel::swept();
        let g = m.space().genome_at(12_345);
        assert_eq!(m.evaluate(&g), m.evaluate(&g));
    }

    #[test]
    fn batch_kernel_is_bit_identical_to_per_point_path() {
        // Both spaces, including the full space's gene-tail hash noise.
        for m in [RouterModel::swept(), RouterModel::full()] {
            let genomes: Vec<_> = (0..40u128)
                .map(|i| m.space().genome_at(i * 197 % m.space().cardinality()))
                .collect();
            let flat: Vec<u32> = genomes.iter().flat_map(|g| g.genes().iter().copied()).collect();
            let mut batch = Vec::new();
            m.evaluate_rows(GeneRows::new(&flat, m.space().num_params()), &mut batch);
            for (g, got) in genomes.iter().zip(&batch) {
                assert_eq!(*got, m.evaluate(g), "batch row diverged for {g:?}");
            }
        }
    }

    #[test]
    fn most_degenerate_router_config_still_synthesizes() {
        // The smallest representable router: a single VC with a one-flit
        // buffer, narrowest datapath, no pipelining, no speculation. The
        // model must treat it as a valid (cheap, slow-ish) design, not an
        // edge-case crash.
        let m = RouterModel::swept();
        let g = m
            .space()
            .genome_from_values([
                ("num_vcs", ParamValue::Int(1)),
                ("buffer_depth", ParamValue::Int(1)),
                ("flit_width", ParamValue::Int(16)),
                ("pipeline_stages", ParamValue::Int(1)),
                ("sa_alloc", ParamValue::Sym("round_robin".into())),
                ("va_alloc", ParamValue::Sym("round_robin".into())),
                ("crossbar", ParamValue::Sym("mux".into())),
                ("speculation", ParamValue::Bool(false)),
                ("buffer_type", ParamValue::Sym("lutram".into())),
            ])
            .unwrap();
        let ms = m.evaluate(&g).expect("minimal router is feasible");
        let luts = ms.get(m.catalog().require("luts").unwrap());
        let fmax = ms.get(m.catalog().require("fmax").unwrap());
        assert!(luts > 0.0 && luts.is_finite(), "degenerate router LUTs: {luts}");
        assert!(fmax > 0.0 && fmax.is_finite(), "degenerate router fmax: {fmax}");
        // It should sit at the cheap end of Figure 1's LUT range.
        assert!(luts < 2_000.0, "minimal router should be cheap, got {luts} LUTs");
    }

    #[test]
    fn zero_vc_routers_are_unrepresentable() {
        // num_vcs starts at 1: a bufferless zero-VC "router" cannot be
        // encoded, so the model never has to define its cost.
        let m = RouterModel::swept();
        let space = m.space();
        let vcs = space.id("num_vcs").unwrap();
        assert!(space.param(vcs).domain().index_of(&ParamValue::Int(0)).is_none());
        for g in [space.genome_at(0), space.genome_at(27_647)] {
            if let ParamValue::Int(v) = space.value_of(&g, vcs) {
                assert!(v >= 1, "encoded VC count must be positive, got {v}");
            } else {
                panic!("num_vcs must be an integer parameter");
            }
        }
    }

    #[test]
    fn more_vcs_and_depth_cost_more_luts_on_average() {
        let m = RouterModel::swept();
        let space = m.space();
        let luts_id = m.catalog().require("luts").unwrap();
        let mean_luts = |name: &str, value: i64| -> f64 {
            let id = space.id(name).unwrap();
            let idx = space.param(id).domain().index_of(&ParamValue::Int(value)).unwrap();
            let mut sum = 0.0;
            let mut n = 0usize;
            for (k, g) in space.iter_genomes().enumerate() {
                if k % 23 != 0 {
                    continue; // sparse deterministic sample
                }
                let mut g = g;
                g.set_gene(id, idx as u32);
                sum += m.evaluate(&g).unwrap().get(luts_id);
                n += 1;
            }
            sum / n as f64
        };
        assert!(mean_luts("num_vcs", 8) > 2.0 * mean_luts("num_vcs", 1));
        assert!(mean_luts("buffer_depth", 16) > 1.5 * mean_luts("buffer_depth", 1));
        assert!(mean_luts("flit_width", 128) > 2.0 * mean_luts("flit_width", 16));
    }

    #[test]
    fn pipelining_raises_fmax_on_average() {
        let m = RouterModel::swept();
        let space = m.space();
        let fmax_id = m.catalog().require("fmax").unwrap();
        let stages = space.id("pipeline_stages").unwrap();
        let mut sum = [0.0f64; 2];
        let mut n = 0usize;
        for (k, g) in space.iter_genomes().enumerate() {
            if k % 31 != 0 {
                continue;
            }
            let mut lo = g.clone();
            lo.set_gene(stages, 0); // 1 stage
            let mut hi = g;
            hi.set_gene(stages, 2); // 3 stages
            sum[0] += m.evaluate(&lo).unwrap().get(fmax_id);
            sum[1] += m.evaluate(&hi).unwrap().get(fmax_id);
            n += 1;
        }
        assert!(
            sum[1] / n as f64 > 1.3 * (sum[0] / n as f64),
            "3-stage {} vs 1-stage {}",
            sum[1] / n as f64,
            sum[0] / n as f64
        );
    }

    #[test]
    fn speculation_cuts_latency() {
        let m = RouterModel::swept();
        let space = m.space();
        let lat_id = m.catalog().require("latency").unwrap();
        let spec = space.id("speculation").unwrap();
        let g0 = space.genome_at(100);
        let mut with = g0.clone();
        with.set_gene(spec, 1);
        let mut without = g0;
        without.set_gene(spec, 0);
        let lw = m.evaluate(&with).unwrap().get(lat_id);
        let lo = m.evaluate(&without).unwrap().get(lat_id);
        assert_eq!(lo - lw, 1.0);
    }

    #[test]
    fn full_space_model_evaluates_and_ports_matter() {
        let m = RouterModel::full();
        let space = m.space();
        let luts_id = m.catalog().require("luts").unwrap();
        let ports = space.id("num_ports").unwrap();
        let mut small = space.genome_at(777_777);
        small.set_gene(ports, 0); // 3 ports
        let mut big = small.clone();
        big.set_gene(ports, 5); // 8 ports
        let l_small = m.evaluate(&small).unwrap().get(luts_id);
        let l_big = m.evaluate(&big).unwrap().get(luts_id);
        assert!(l_big > 1.5 * l_small, "ports scaling: {l_small} -> {l_big}");
    }

    #[test]
    fn noise_makes_neighbors_scatter() {
        // Two designs differing only in one secondary gene should differ in
        // LUTs by a few percent (the Figure 1 scatter), not be identical.
        let m = RouterModel::swept();
        let space = m.space();
        let a = space.genome_at(5_000);
        let mut b = a.clone();
        let sa = space.id("sa_alloc").unwrap();
        b.set_gene(sa, (a.gene(sa) + 1) % 3);
        let luts_id = m.catalog().require("luts").unwrap();
        let la = m.evaluate(&a).unwrap().get(luts_id);
        let lb = m.evaluate(&b).unwrap().get(luts_id);
        assert_ne!(la, lb);
    }
}
