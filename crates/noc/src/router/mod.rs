//! The virtual-channel router IP: parameter spaces and synthesis surrogate.

mod model;
mod space;

pub use model::RouterModel;
pub use space::{full_space, swept_space, SWEPT_PARAMS};
