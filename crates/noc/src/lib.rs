//! # nautilus-noc — the Network-on-Chip IP substrate
//!
//! The paper evaluates Nautilus on two NoC artifacts, both rebuilt here:
//!
//! * [`router`] — the Stanford-style virtual-channel router IP: the full
//!   42-parameter space ("multiple billions of possible design points"),
//!   the 9-parameter swept sub-space of ~28k points behind the paper's
//!   characterized dataset, and a surrogate FPGA-synthesis model producing
//!   LUTs / Fmax / latency with Figure 1's ranges and scatter.
//! * [`connect`] — a CONNECT-style network generator: eight topology
//!   families at 64 endpoints with a 65nm ASIC area/power/bisection-
//!   bandwidth model, regenerating Figure 2's clusters.
//! * [`hints`] — the non-expert hint books used for the paper's NoC
//!   queries (maximize Fmax, minimize area-delay product).
//!
//! ## Example
//!
//! ```
//! use nautilus_ga::Direction;
//! use nautilus_noc::router::RouterModel;
//! use nautilus_synth::{CostModel, MetricExpr, SynthJobRunner};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let model = RouterModel::swept();
//! let runner = SynthJobRunner::new(&model);
//! let genome = model.space().genome_at(12_345);
//! let metrics = runner.evaluate(&genome).expect("router points are feasible");
//! let fmax = model.catalog().require("fmax")?;
//! assert!(metrics.get(fmax) > 50.0);
//! # Ok(()) }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod connect;
pub mod hints;
pub mod router;

#[cfg(test)]
mod tests {
    #[test]
    fn models_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<super::router::RouterModel>();
        assert_send_sync::<super::connect::NocModel>();
    }
}
