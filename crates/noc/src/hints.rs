//! Non-expert hint books for the router IP.
//!
//! For the NoC experiments the paper did *not* use expert hints: they were
//! "estimated ... by synthesizing 80 designs and observing trends",
//! equivalent to a knowledgeable user's gut intuition. These canned hint
//! sets encode exactly that level of knowledge — coarse signs and rough
//! importance, nothing the surrogate's fine structure would reveal. The
//! automatic path ([`nautilus::estimate_hints`]) reproduces the estimation
//! procedure itself; see the `hint_estimation` example.

use nautilus::{Confidence, HintSet};
use nautilus_ga::ParamValue;

/// Non-expert hints for the *maximize Fmax* query (paper Figure 4).
///
/// Pipelining dominates frequency; wide datapaths, deep buffers and many
/// VCs slow the clock; matrix allocators are the fastest of the three.
///
/// # Panics
///
/// Never panics; all hint values are statically in range.
#[must_use]
pub fn fmax_hints() -> HintSet {
    HintSet::for_metric("fmax")
        .importance("pipeline_stages", 90)
        .expect("static hint in range")
        .bias("pipeline_stages", 0.9)
        .expect("static hint in range")
        .importance("num_vcs", 70)
        .expect("static hint in range")
        .bias("num_vcs", -0.6)
        .expect("static hint in range")
        .importance("buffer_depth", 45)
        .expect("static hint in range")
        .bias("buffer_depth", -0.3)
        .expect("static hint in range")
        .importance("flit_width", 50)
        .expect("static hint in range")
        .bias("flit_width", -0.4)
        .expect("static hint in range")
        // A user who synthesized a handful of designs notices the allocator
        // families order as wavefront < round-robin < matrix on frequency;
        // the ordering is metric-ascending, so the bias along it is
        // positive.
        .importance("sa_alloc", 55)
        .expect("static hint in range")
        .ordering("sa_alloc", [2, 0, 1])
        .bias("sa_alloc", 0.7)
        .expect("static hint in range")
        .importance("va_alloc", 60)
        .expect("static hint in range")
        .ordering("va_alloc", [2, 0, 1])
        .bias("va_alloc", 0.7)
        .expect("static hint in range")
        .importance("speculation", 35)
        .expect("static hint in range")
        .target("speculation", ParamValue::Bool(false))
        .expect("static hint in range")
        .importance("buffer_type", 40)
        .expect("static hint in range")
        .target("buffer_type", ParamValue::Sym("lutram".into()))
        .expect("static hint in range")
        .confidence(Confidence::WEAK)
        .build()
}

/// Non-expert hints for the *minimize LUTs* (area) query.
///
/// Buffer storage dominates: VCs × depth × width in LUTRAM mode. BRAM
/// buffers move storage off the LUT budget.
#[must_use]
pub fn area_hints() -> HintSet {
    HintSet::for_metric("luts")
        .importance("num_vcs", 90)
        .expect("static hint in range")
        .bias("num_vcs", 0.8)
        .expect("static hint in range")
        .importance("buffer_depth", 85)
        .expect("static hint in range")
        .bias("buffer_depth", 0.7)
        .expect("static hint in range")
        .importance("flit_width", 80)
        .expect("static hint in range")
        .bias("flit_width", 0.7)
        .expect("static hint in range")
        .importance("buffer_type", 75)
        .expect("static hint in range")
        .target("buffer_type", ParamValue::Sym("bram".into()))
        .expect("static hint in range")
        .importance("pipeline_stages", 30)
        .expect("static hint in range")
        .bias("pipeline_stages", 0.3)
        .expect("static hint in range")
        .importance("speculation", 25)
        .expect("static hint in range")
        .target("speculation", ParamValue::Bool(false))
        .expect("static hint in range")
        .confidence(Confidence::WEAK)
        .build()
}

/// Non-expert hints for the *minimize area-delay product* query (Figure 5).
///
/// The paper notes this query "also incorporates hints related to the
/// importance and bias of IP parameters that affect area, such as
/// virtual-channel buffer depth", on top of the frequency hints. ADP grows
/// with LUTs and shrinks with Fmax, so the merge enters area hints with
/// sign `+1` and frequency hints with sign `-1`.
#[must_use]
pub fn area_delay_hints() -> HintSet {
    // The buffer_type targets conflict (area says BRAM, frequency says
    // LUTRAM) and are rightly dropped by the merge: which storage wins the
    // product depends on the rest of the configuration. The user only
    // re-emphasizes buffer depth, which the paper calls out explicitly.
    HintSet::merge("area_delay", &[(&area_hints(), 1.0), (&fmax_hints(), -1.0)])
        .into_builder()
        .importance("buffer_depth", 85)
        .expect("static hint in range")
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::swept_space;
    use nautilus::ValueHint;

    #[test]
    fn hint_books_validate_against_the_swept_space() {
        let space = swept_space();
        assert!(fmax_hints().validate(&space).is_ok());
        assert!(area_hints().validate(&space).is_ok());
        assert!(area_delay_hints().validate(&space).is_ok());
    }

    #[test]
    fn fmax_hints_prioritize_pipelining() {
        let h = fmax_hints();
        let stages = h.get("pipeline_stages").unwrap();
        assert_eq!(stages.importance.unwrap().get(), 90);
        match stages.value.as_ref().unwrap() {
            ValueHint::Bias(b) => assert!(b.get() > 0.5),
            other => panic!("expected bias, got {other:?}"),
        }
    }

    #[test]
    fn area_delay_merge_resolves_conflicting_biases() {
        let h = area_delay_hints();
        // num_vcs: area bias +0.8 (sign +1), fmax bias -0.6 (sign -1)
        // -> merged (0.8 + 0.6) / 2 = 0.7: more VCs hurt ADP.
        match h.get("num_vcs").unwrap().value.as_ref().unwrap() {
            ValueHint::Bias(b) => assert!((b.get() - 0.7).abs() < 1e-12),
            other => panic!("expected bias, got {other:?}"),
        }
        // pipeline_stages: area +0.3, fmax +0.9 with sign -1 -> (0.3 - 0.9)/2
        // = -0.3: more stages mildly help ADP.
        match h.get("pipeline_stages").unwrap().value.as_ref().unwrap() {
            ValueHint::Bias(b) => assert!((b.get() + 0.3).abs() < 1e-12),
            other => panic!("expected bias, got {other:?}"),
        }
        // Identical targets survive the merge.
        assert!(matches!(h.get("speculation").unwrap().value, Some(ValueHint::Target(_))));
    }
}
